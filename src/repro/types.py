"""Fundamental shared types for the reproduction.

The paper ("Scheduling Tightly-Coupled Applications on Heterogeneous Desktop
Grids", Casanova et al., HCW 2013) models each processor as being, at every
discrete time-slot, in one of three states:

``UP``
    The processor is available and can communicate with the master and
    compute.

``RECLAIMED``
    The processor has been temporarily reclaimed by its owner (cycle-stealing
    scenario).  It keeps its memory and disk state: communications and
    computations are *suspended*, not lost, and may resume when the processor
    becomes ``UP`` again.

``DOWN``
    The processor has crashed.  It loses the application program, all task
    data, and any partially executed computation.

This module defines the :class:`ProcessorState` enumeration used throughout
the code base, together with a handful of light-weight type aliases.
"""

from __future__ import annotations

import enum
from typing import Union

__all__ = [
    "ProcessorState",
    "UP",
    "RECLAIMED",
    "DOWN",
    "STATE_INDEX",
    "STATE_FROM_INDEX",
    "STATE_FROM_CHAR",
    "TimeSlot",
    "WorkerId",
]

#: Discrete time-slot index (the paper discretises time into slots of
#: arbitrary, fixed duration).
TimeSlot = int

#: Index of a worker / processor in a platform (0-based).
WorkerId = int


class ProcessorState(enum.IntEnum):
    """The 3-state availability model of Section III-B of the paper.

    The integer values are chosen so that availability *matrices* (one row
    per processor, one column per time-slot) can be stored compactly as
    ``numpy`` integer arrays: ``UP == 0``, ``RECLAIMED == 1``, ``DOWN == 2``.
    """

    UP = 0
    RECLAIMED = 1
    DOWN = 2

    @property
    def char(self) -> str:
        """Single-character code used in traces and Gantt renderings.

        ``"u"`` for UP, ``"r"`` for RECLAIMED, ``"d"`` for DOWN — the same
        letters the paper uses for the Markov transition probabilities
        :math:`P^{(q)}_{i,j},\\ i, j \\in \\{u, r, d\\}`.
        """
        return _STATE_CHARS[self]

    @classmethod
    def from_char(cls, char: str) -> "ProcessorState":
        """Parse a single-character state code (case-insensitive)."""
        try:
            return STATE_FROM_CHAR[char.lower()]
        except KeyError:
            raise ValueError(
                f"unknown processor state character {char!r}; "
                "expected one of 'u', 'r', 'd'"
            ) from None

    @classmethod
    def coerce(cls, value: "StateLike") -> "ProcessorState":
        """Coerce an int, str or :class:`ProcessorState` into a state."""
        if isinstance(value, ProcessorState):
            return value
        if isinstance(value, str):
            return cls.from_char(value)
        return cls(value)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: Something that can be coerced into a :class:`ProcessorState`.
StateLike = Union[ProcessorState, int, str]

_STATE_CHARS = {
    ProcessorState.UP: "u",
    ProcessorState.RECLAIMED: "r",
    ProcessorState.DOWN: "d",
}

#: Convenience module-level aliases, so client code can write ``types.UP``.
UP = ProcessorState.UP
RECLAIMED = ProcessorState.RECLAIMED
DOWN = ProcessorState.DOWN

#: Mapping state -> row/column index in 3x3 transition matrices.
STATE_INDEX = {UP: 0, RECLAIMED: 1, DOWN: 2}

#: Inverse of :data:`STATE_INDEX`.
STATE_FROM_INDEX = {index: state for state, index in STATE_INDEX.items()}

#: Mapping single-character code -> state.
STATE_FROM_CHAR = {"u": UP, "r": RECLAIMED, "d": DOWN}
