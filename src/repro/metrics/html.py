"""Self-contained HTML dashboard over a campaign's result store.

``render_html_report`` turns a list of :class:`InstanceResult` (plus the
campaign's spec) into one standalone HTML document — inline CSS, hand-rolled
inline SVG, no external assets or scripts — suitable for a CI artifact:

* a per-slice summary table (the Table-I metrics of ``format_spec_report``);
* Monte Carlo band plots of every sampled metric series, one chart per
  (grid cell, series) with all heuristics of the cell overlaid
  (median line + shaded inter-quantile band across repetitions);
* a Gantt drill-down: a handful of stored runs re-simulated
  deterministically from their seeds with activity recording on, rendered
  through :func:`repro.simulation.gantt.render_gantt`.

Only results that carry a ``metrics`` payload contribute band plots; a
store recorded without the collector still gets the summary tables and the
Gantt section.
"""

from __future__ import annotations

import html as html_escape
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ExperimentError, ReproError
from repro.experiments.metrics import (
    DEFAULT_BAND_QUANTILES,
    MetricBands,
    aggregate_metric_bands,
)
from repro.experiments.runner import InstanceResult
from repro.experiments.spec import CampaignSpec
from repro.experiments.tables import format_spec_report

__all__ = ["render_html_report"]

#: Charts are thinned to at most this many points per curve.
_MAX_POINTS = 400

#: Gantt drill-down re-simulates a run with full per-slot recording, whose
#: memory grows with the slot cap; skip the section beyond this cap.
_GANTT_CAP = 250_000

#: Slots rendered per Gantt chart.
_GANTT_WINDOW = 120

#: Qualitative palette (colorblind-safe Okabe-Ito order).
_PALETTE = (
    "#0072B2",
    "#D55E00",
    "#009E73",
    "#CC79A7",
    "#E69F00",
    "#56B4E9",
    "#F0E442",
    "#000000",
)

_CSS = """
body { font-family: -apple-system, "Segoe UI", Roboto, sans-serif;
       margin: 2rem auto; max-width: 1100px; color: #1a1a2e; }
h1 { border-bottom: 2px solid #0072B2; padding-bottom: .3rem; }
h2 { margin-top: 2.2rem; border-bottom: 1px solid #ccc; }
h3 { margin-bottom: .4rem; }
pre { background: #f6f8fa; padding: .8rem; overflow-x: auto;
      font-size: 12px; line-height: 1.25; border-radius: 6px; }
.meta { color: #555; font-size: .9rem; }
.charts { display: flex; flex-wrap: wrap; gap: 14px; }
.chart { border: 1px solid #e0e0e0; border-radius: 6px; padding: 6px; }
.chart .title { font-size: .8rem; font-weight: 600; margin: 0 0 2px 4px; }
.legend { font-size: .75rem; margin: 2px 0 8px 4px; }
.legend span { margin-right: 10px; }
.swatch { display: inline-block; width: 10px; height: 10px;
          border-radius: 2px; margin-right: 3px; }
.note { color: #777; font-style: italic; }
"""


def _esc(text: object) -> str:
    return html_escape.escape(str(text))


def _thin(values: Sequence[float], limit: int = _MAX_POINTS) -> List[float]:
    if len(values) <= limit:
        return list(values)
    step = -(-len(values) // limit)
    thinned = list(values[::step])
    if (len(values) - 1) % step:
        thinned.append(values[-1])
    return thinned


def _svg_chart(
    curves: Sequence[Tuple[str, str, List[float], List[float], List[float]]],
    *,
    stride: int,
    width: int = 420,
    height: int = 150,
) -> str:
    """One SVG line chart: per-curve shaded lo→hi band plus median line.

    *curves* holds ``(label, color, lo, median, hi)`` per heuristic; the x
    axis is the slot index (grid point × stride).
    """
    pad_left, pad_right, pad_top, pad_bottom = 44, 8, 6, 18
    plot_w = width - pad_left - pad_right
    plot_h = height - pad_top - pad_bottom
    max_len = max(len(median) for _, _, _, median, _ in curves)
    x_max = max(1, (max_len - 1) * stride)
    y_values = [v for _, _, lo, med, hi in curves for v in (*lo, *med, *hi)]
    y_min = min(y_values + [0.0])
    y_max = max(y_values + [1.0])
    y_span = (y_max - y_min) or 1.0

    def x_at(index: int, count: int) -> float:
        slot = index * (x_max / max(1, count - 1)) if count > 1 else 0
        return pad_left + plot_w * (slot / x_max)

    def y_at(value: float) -> float:
        return pad_top + plot_h * (1.0 - (value - y_min) / y_span)

    def points(values: Sequence[float]) -> str:
        count = len(values)
        return " ".join(
            f"{x_at(i, count):.1f},{y_at(v):.1f}" for i, v in enumerate(values)
        )

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}" '
        'xmlns="http://www.w3.org/2000/svg">'
    ]
    axis = "#999"
    parts.append(
        f'<line x1="{pad_left}" y1="{pad_top}" x2="{pad_left}" '
        f'y2="{height - pad_bottom}" stroke="{axis}"/>'
        f'<line x1="{pad_left}" y1="{height - pad_bottom}" x2="{width - pad_right}" '
        f'y2="{height - pad_bottom}" stroke="{axis}"/>'
    )
    label_style = f'font-size="9" fill="{axis}"'
    parts.append(
        f'<text x="{pad_left - 4}" y="{pad_top + 8}" text-anchor="end" '
        f"{label_style}>{y_max:g}</text>"
        f'<text x="{pad_left - 4}" y="{height - pad_bottom}" text-anchor="end" '
        f"{label_style}>{y_min:g}</text>"
        f'<text x="{pad_left}" y="{height - 4}" {label_style}>0</text>'
        f'<text x="{width - pad_right}" y="{height - 4}" text-anchor="end" '
        f"{label_style}>{x_max} slots</text>"
    )
    for _, color, lo, median, hi in curves:
        if lo and hi and any(a != b for a, b in zip(lo, hi)):
            band = points(lo) + " " + " ".join(
                f"{x_at(i, len(hi)):.1f},{y_at(v):.1f}"
                for i, v in reversed(list(enumerate(hi)))
            )
            parts.append(f'<polygon points="{band}" fill="{color}" fill-opacity="0.15"/>')
        parts.append(
            f'<polyline points="{points(median)}" fill="none" '
            f'stroke="{color}" stroke-width="1.4"/>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _legend(labels_colors: Sequence[Tuple[str, str]]) -> str:
    spans = "".join(
        f'<span><i class="swatch" style="background:{color}"></i>{_esc(label)}</span>'
        for label, color in labels_colors
    )
    return f'<div class="legend">{spans}</div>'


def _band_sections(bands: List[MetricBands]) -> List[str]:
    if not bands:
        return [
            '<p class="note">No stored runs carry metric series — re-run the '
            "campaign with <code>--collect-metrics</code> (or set "
            "<code>collect_metrics = true</code> in the spec) to populate "
            "band plots.</p>"
        ]
    by_cell: Dict[Tuple, List[MetricBands]] = {}
    for band in bands:
        by_cell.setdefault((band.m, band.ncom, band.wmin, band.num_processors), []).append(band)
    sections: List[str] = []
    for cell_key in sorted(by_cell):
        cell_bands = by_cell[cell_key]
        colors = {
            band.heuristic: _PALETTE[i % len(_PALETTE)]
            for i, band in enumerate(cell_bands)
        }
        reps = ", ".join(
            f"{band.heuristic}: {band.num_runs} runs" for band in cell_bands
        )
        quantiles = cell_bands[0].quantiles
        lo_q, mid_q, hi_q = quantiles[0], quantiles[len(quantiles) // 2], quantiles[-1]
        sections.append(
            f"<h3>{_esc(cell_bands[0].cell_label())}</h3>"
            f'<p class="meta">band: q{lo_q:g}–q{hi_q:g} around the q{mid_q:g} '
            f"median across repetitions ({_esc(reps)})</p>"
            + _legend([(h, c) for h, c in colors.items()])
        )
        charts = []
        for name in cell_bands[0].series:
            curves = []
            for band in cell_bands:
                levels = band.series[name]
                curves.append(
                    (
                        band.heuristic,
                        colors[band.heuristic],
                        _thin(levels[lo_q]),
                        _thin(levels[mid_q]),
                        _thin(levels[hi_q]),
                    )
                )
            chart = _svg_chart(curves, stride=cell_bands[0].stride)
            charts.append(
                f'<div class="chart"><p class="title">{_esc(name)}</p>{chart}</div>'
            )
        sections.append('<div class="charts">' + "".join(charts) + "</div>")
    return sections


def _gantt_sections(
    results: Sequence[InstanceResult],
    spec: Optional[CampaignSpec],
    gantt_runs: int,
) -> List[str]:
    if gantt_runs <= 0:
        return []
    if spec is None:
        return ['<p class="note">No spec available — Gantt drill-down skipped.</p>']
    if spec.makespan_cap > _GANTT_CAP:
        return [
            f'<p class="note">Gantt drill-down skipped: the spec\'s slot cap '
            f"({spec.makespan_cap}) exceeds the re-simulation limit "
            f"({_GANTT_CAP}).</p>"
        ]
    # Deterministic pick: the first successful run of each heuristic, in
    # store order, up to the requested count.
    chosen: List[InstanceResult] = []
    seen_heuristics = set()
    for result in results:
        if result.success and result.heuristic not in seen_heuristics:
            chosen.append(result)
            seen_heuristics.add(result.heuristic)
            if len(chosen) >= gantt_runs:
                break
    if not chosen:
        return ['<p class="note">No successful runs to drill into yet.</p>']

    from repro.analysis.cache import AnalysisContext
    from repro.analysis.group import ExpectationMode
    from repro.scheduling.registry import create_scheduler
    from repro.simulation.engine import SimulationEngine
    from repro.simulation.gantt import render_gantt

    scenario_index = {
        (
            scenario.params.m,
            scenario.params.ncom,
            scenario.params.wmin,
            scenario.params.num_processors,
            scenario.scenario_index,
        ): scenario
        for scenario in spec.scenarios()
    }
    sections: List[str] = []
    for result in chosen:
        key = (result.m, result.ncom, result.wmin, result.num_processors, result.scenario_index)
        scenario = scenario_index.get(key)
        if scenario is None:
            continue
        try:
            # Mirror runner.run_instance exactly (platform, analysis mode,
            # seed, cap) so the re-simulated run IS the stored one.
            platform = scenario.build_platform()
            engine = SimulationEngine(
                platform,
                scenario.build_application(iterations=spec.iterations),
                create_scheduler(result.heuristic),
                seed=scenario.trial_seed(result.trial_index),
                max_slots=spec.makespan_cap,
                analysis=AnalysisContext(platform, mode=ExpectationMode(spec.estimator)),
                record_activity=True,
            )
            simulation = engine.run()
            window = min(_GANTT_WINDOW, simulation.makespan or _GANTT_WINDOW)
            text = render_gantt(
                engine.activity_matrix, engine.state_matrix, end=window
            )
        except ReproError as error:
            sections.append(
                f'<p class="note">Could not re-simulate {_esc(result.heuristic)} '
                f"on {_esc(scenario.label())}: {_esc(error)}</p>"
            )
            continue
        sections.append(
            f"<h3>{_esc(result.heuristic)} — {_esc(scenario.label())}, trial "
            f"{result.trial_index} (makespan {simulation.makespan}, first "
            f"{window} slots)</h3>"
            f"<pre>{_esc(text)}</pre>"
        )
    return sections


def render_html_report(
    results: Sequence[InstanceResult],
    spec: Optional[CampaignSpec] = None,
    *,
    title: Optional[str] = None,
    quantiles: Sequence[float] = DEFAULT_BAND_QUANTILES,
    gantt_runs: int = 2,
) -> str:
    """Render a campaign's results as one self-contained HTML document."""
    name = title or (spec.name if spec is not None else "campaign")
    header = [f"<h1>Campaign report — {_esc(name)}</h1>"]
    meta = [f"{len(results)} completed cells"]
    if spec is not None:
        meta.append(f"spec hash {spec.spec_hash()[:12]}")
        meta.append(f"{spec.num_cells()} cells total")
        meta.append(f"heuristics: {', '.join(spec.heuristics)}")
    with_series = sum(1 for result in results if result.metrics)
    meta.append(f"{with_series} cells with metric series")
    header.append(f'<p class="meta">{_esc(" · ".join(meta))}</p>')

    summary: List[str] = ["<h2>Summary tables</h2>"]
    if spec is not None:
        try:
            summary.append(f"<pre>{_esc(format_spec_report(list(results), spec))}</pre>")
        except ExperimentError as error:
            summary.append(
                f'<p class="note">Summary tables unavailable: {_esc(error)}</p>'
            )
    else:
        summary.append('<p class="note">No spec available — tables skipped.</p>')

    bands = aggregate_metric_bands(list(results), quantiles=quantiles)
    body = (
        header
        + summary
        + ["<h2>Monte Carlo bands</h2>"]
        + _band_sections(bands)
        + ["<h2>Gantt drill-down</h2>"]
        + _gantt_sections(results, spec, gantt_runs)
    )
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">"
        f"<title>{_esc(name)} — campaign report</title>"
        f"<style>{_CSS}</style></head>\n<body>\n"
        + "\n".join(body)
        + "\n</body></html>\n"
    )
