"""Sampled per-slot metric time series for :class:`~repro.simulation.engine.SimulationEngine`.

The engine reports end-of-run scalars (makespan, success, slot counters).
This module adds the *trajectory*: a :class:`MetricsCollector` attached to an
engine samples a small set of per-slot series on a fixed stride grid
(slots ``0, stride, 2*stride, ...``) while the run executes:

``pool_up`` / ``pool_down``
    Number of processors in the ``UP`` / ``DOWN`` state at the sampled slot.
    Exact: computed vectorised from the prefetched availability blocks.

``active_workers``
    Size of the enrolled active set (the master's current configuration).

``enrollment_churn``
    Cumulative count of enrollment changes — every worker that joins or
    leaves the active set adds one.  Exact: the engine only replaces the
    enrolled-id array on failures and configuration changes, so churn is
    detected by object identity at no per-slot cost.

``iterations_completed``
    Completed application iterations at the sampled slot.

``work_completed``
    Cumulative computation slots executed across all enrolled workers.

``comm_backlog``
    Outstanding communication slots (program + pending task data) summed
    over the enrolled workers.

The collector piggybacks on the engine's existing traversal: fast-forward
paths that jump many slots at once stay enabled, and grid points inside a
jumped span are filled by interpolation — step interpolation for the exact
integer series (the composition provably cannot change inside a span the
engine fast-forwards over) and linear interpolation for ``work_completed``
and ``comm_backlog`` between two captured breakpoints.  Sampled values at
slots the engine actually visits are exact; in consequence the five exact
series are identical across all engine samplers, while the two interpolated
series may differ inside fast-forwarded spans between samplers (each
sampler visits a different subset of slots).

The contract with the engine is four hooks, all cheap and all read-only —
a collector never mutates engine state, so attaching one cannot change a
simulation's result:

``begin(...)``            once per run, after scheduler binding;
``on_block(start, block)`` after each availability block prefetch;
``on_step(...)``          once per visited slot, before the slot advance;
``finish(...)``           once per run, after the drive loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SimulationError

__all__ = [
    "DEFAULT_STRIDE",
    "MetricsCollector",
    "RunMetrics",
    "SERIES_NAMES",
]

#: Default sampling stride in slots.  At the paper's 10-second slots this is
#: roughly one sample every ten minutes of simulated time; a 1M-slot run
#: yields ~15.6k samples per series.
DEFAULT_STRIDE = 64

#: Names of the sampled series, in serialisation order.
SERIES_NAMES = (
    "pool_up",
    "pool_down",
    "active_workers",
    "enrollment_churn",
    "iterations_completed",
    "work_completed",
    "comm_backlog",
)

_UP_CODE = 0
_DOWN_CODE = 2

#: Serialised floats are rounded to this many decimals; the interpolated
#: series do not carry more genuine precision and compact storage matters.
_ROUND = 3


@dataclass(frozen=True)
class RunMetrics:
    """The sampled time series of one simulation run.

    ``series[name][i]`` is the value of ``name`` at slot ``i * stride``;
    every series has the same length, covering slots ``0 .. end_slot - 1``
    (``end_slot`` is the makespan for successful runs, the slot budget
    otherwise).
    """

    stride: int
    end_slot: int
    scheduler: str
    series: Dict[str, List[float]]

    @property
    def num_samples(self) -> int:
        """Number of grid points per series."""
        return (self.end_slot - 1) // self.stride + 1 if self.end_slot > 0 else 0

    def slots(self) -> List[int]:
        """The sampled slot indices (x axis shared by every series)."""
        return [index * self.stride for index in range(self.num_samples)]

    def as_dict(self) -> dict:
        """JSON-ready payload (plain lists, floats rounded)."""
        return {
            "stride": self.stride,
            "end_slot": self.end_slot,
            "scheduler": self.scheduler,
            "series": {
                name: [round(float(value), _ROUND) for value in values]
                for name, values in self.series.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunMetrics":
        """Inverse of :meth:`as_dict`."""
        return cls(
            stride=int(payload["stride"]),
            end_slot=int(payload["end_slot"]),
            scheduler=str(payload.get("scheduler", "")),
            series={name: list(values) for name, values in payload["series"].items()},
        )


class MetricsCollector:
    """Samples per-slot series from a running engine at a fixed stride.

    One collector serves one engine at a time; :meth:`begin` re-arms it, so
    the same instance may be reused across sequential runs (the benchmark
    harness does).  Attach with ``SimulationEngine(..., metrics=collector)``
    and read :meth:`result` after the run.
    """

    def __init__(self, stride: int = DEFAULT_STRIDE):
        if stride < 1:
            raise SimulationError(f"metrics stride must be >= 1, got {stride}")
        self.stride = int(stride)
        self._armed = False
        self._result: Optional[RunMetrics] = None

    # -- engine hooks ----------------------------------------------------

    def begin(self, tprog: int, tdata: int, max_slots: int, scheduler: str) -> None:
        """Arm the collector for a run of at most ``max_slots`` slots."""
        self._tprog = tprog
        self._tdata = tdata
        self._max_slots = max_slots
        self._scheduler = scheduler
        capacity = (max_slots - 1) // self.stride + 1
        self._capacity = capacity
        self._pool_up = np.zeros(capacity, dtype=np.int32)
        self._pool_down = np.zeros(capacity, dtype=np.int32)
        self._active = np.zeros(capacity, dtype=np.int32)
        self._churn = np.zeros(capacity, dtype=np.int64)
        self._iterations = np.zeros(capacity, dtype=np.int64)
        self._work = np.zeros(capacity, dtype=np.float64)
        self._backlog = np.zeros(capacity, dtype=np.float64)
        #: Highest grid index whose values are final.
        self._filled = -1
        self._churn_total = 0
        self._last_ids: Optional[np.ndarray] = None
        self._last_members: frozenset = frozenset()
        #: Last captured breakpoint for the interpolated series.
        self._prev_slot = -1
        self._prev_work = 0.0
        self._prev_backlog = 0.0
        self._armed = True
        self._result = None

    def on_block(self, start: int, block: np.ndarray) -> None:
        """Record exact pool availability at the grid points a block covers."""
        if not self._armed:
            return
        stride = self.stride
        first = -(-start // stride)
        last = min((start + block.shape[1] - 1) // stride, self._capacity - 1)
        if first > last:
            return
        offsets = np.arange(first, last + 1) * stride - start
        columns = block[:, offsets]
        self._pool_up[first : last + 1] = (columns == _UP_CODE).sum(axis=0)
        self._pool_down[first : last + 1] = (columns == _DOWN_CODE).sum(axis=0)

    def on_step(
        self,
        slot: int,
        enrolled_runtimes: Sequence,
        enrolled_ids: np.ndarray,
        compute_slots: int,
        iterations: int,
    ) -> None:
        """Observe the engine state at ``slot`` (the last slot a loop pass covered)."""
        if enrolled_ids is not self._last_ids:
            members = frozenset(int(worker) for worker in enrolled_ids)
            self._churn_total += len(members ^ self._last_members)
            self._last_members = members
            self._last_ids = enrolled_ids
        index = slot // self.stride
        if index <= self._filled:
            return
        tprog, tdata = self._tprog, self._tdata
        backlog = 0.0
        for runtime in enrolled_runtimes:
            backlog += runtime.comm_slots_remaining(tprog, tdata)
        self._capture(slot, index, len(enrolled_runtimes), compute_slots, iterations, backlog)

    def finish(
        self,
        end_slot: int,
        enrolled_runtimes: Sequence,
        enrolled_ids: np.ndarray,
        compute_slots: int,
        iterations: int,
    ) -> RunMetrics:
        """Seal the run: capture the closing state and truncate to ``end_slot``."""
        if not self._armed:
            raise SimulationError("MetricsCollector.finish() before begin()")
        end_slot = max(1, min(int(end_slot), self._max_slots))
        # The drive loop breaks out on completion *before* its per-slot hook,
        # so the closing state may not have been captured yet.
        self.on_step(end_slot - 1, enrolled_runtimes, enrolled_ids, compute_slots, iterations)
        count = (end_slot - 1) // self.stride + 1
        series: Dict[str, List[float]] = {
            "pool_up": self._pool_up[:count].tolist(),
            "pool_down": self._pool_down[:count].tolist(),
            "active_workers": self._active[:count].tolist(),
            "enrollment_churn": self._churn[:count].tolist(),
            "iterations_completed": self._iterations[:count].tolist(),
            "work_completed": self._work[:count].tolist(),
            "comm_backlog": self._backlog[:count].tolist(),
        }
        self._result = RunMetrics(
            stride=self.stride,
            end_slot=end_slot,
            scheduler=self._scheduler,
            series=series,
        )
        self._armed = False
        return self._result

    # -- internals -------------------------------------------------------

    def _capture(
        self,
        slot: int,
        index: int,
        active: int,
        work: float,
        iterations: int,
        backlog: float,
    ) -> None:
        index = min(index, self._capacity - 1)
        lo, hi = self._filled + 1, index + 1
        # Step interpolation: grid points between the previous capture and
        # this one lie inside a span the engine fast-forwarded over, where
        # the composition cannot change.
        self._active[lo:hi] = active
        self._churn[lo:hi] = self._churn_total
        self._iterations[lo:hi] = iterations
        grid_slots = np.arange(lo, hi, dtype=np.float64) * self.stride
        prev_slot = self._prev_slot
        if slot > prev_slot:
            fraction = (grid_slots - prev_slot) / (slot - prev_slot)
        else:
            fraction = np.ones_like(grid_slots)
        self._work[lo:hi] = self._prev_work + fraction * (work - self._prev_work)
        self._backlog[lo:hi] = self._prev_backlog + fraction * (backlog - self._prev_backlog)
        self._filled = index
        self._prev_slot = slot
        self._prev_work = float(work)
        self._prev_backlog = float(backlog)

    # -- results ---------------------------------------------------------

    def result(self) -> RunMetrics:
        """The series of the last finished run."""
        if self._result is None:
            raise SimulationError("no finished run: attach the collector and simulate first")
        return self._result
