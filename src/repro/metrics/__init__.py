"""Observability layer: sampled per-slot series and campaign dashboards.

:mod:`repro.metrics.collector` holds the engine-facing
:class:`MetricsCollector` / :class:`RunMetrics` pair;
:mod:`repro.metrics.html` renders a store as a self-contained HTML
dashboard.  The dashboard renderer is imported lazily — it depends on the
experiments layer, which itself imports the collector, and an eager import
here would be circular.
"""

from __future__ import annotations

from repro.metrics.collector import (
    DEFAULT_STRIDE,
    SERIES_NAMES,
    MetricsCollector,
    RunMetrics,
)

__all__ = [
    "DEFAULT_STRIDE",
    "MetricsCollector",
    "RunMetrics",
    "SERIES_NAMES",
    "render_html_report",
]


def __getattr__(name: str):
    if name == "render_html_report":
        from repro.metrics.html import render_html_report

        return render_html_report
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
