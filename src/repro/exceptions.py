"""Exception hierarchy for the ``repro`` package.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library errors with a single ``except`` clause while still
letting programming errors (``TypeError`` on wrong argument types, etc.)
propagate normally.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidModelError",
    "InvalidPlatformError",
    "InvalidApplicationError",
    "InvalidConfigurationError",
    "InfeasibleProblemError",
    "SimulationError",
    "SchedulingError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class InvalidModelError(ReproError):
    """An availability model is malformed (e.g. non-stochastic matrix)."""


class InvalidPlatformError(ReproError):
    """A platform description violates the model of Section III-B."""


class InvalidApplicationError(ReproError):
    """An application description violates the model of Section III-A."""


class InvalidConfigurationError(ReproError):
    """A worker configuration violates the execution model of Section III-C.

    Examples: task counts that do not sum to ``m``, a worker assigned more
    tasks than its memory bound ``µ_q`` permits, or an empty configuration.
    """


class InfeasibleProblemError(ReproError):
    """An (off-line) problem instance admits no feasible schedule."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class SchedulingError(ReproError):
    """A scheduler produced an invalid decision or could not be built."""


class ExperimentError(ReproError):
    """The experiment harness was misconfigured or a campaign failed."""
