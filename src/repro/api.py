"""``repro.api`` — the one stable, documented entry point to the library.

The engine, the experiment runner and the campaign subsystem are all
reachable through three verbs, so callers never need deep imports:

* :func:`run` — simulate one heuristic on one platform, returning a typed
  :class:`RunResult`;
* :func:`sweep` — execute (or resume) a whole declarative campaign — a
  :class:`~repro.experiments.spec.CampaignSpec`, a spec file path, a
  built-in name or a plain mapping — optionally against a persistent result
  store, returning a :class:`SweepResult`;
* :func:`compare` — head-to-head evaluation of several heuristics on a
  common scenario grid with the paper's paired-trial metrics, returning a
  :class:`ComparisonResult`.

Component discovery goes through the same facade: :func:`heuristics` and
:func:`availability_models` list the registered components (the CLI's
``repro heuristics`` / ``repro models`` render exactly these), and every
heuristic argument accepts the parameterized expression grammar
(``"THRESHOLD-IE(tau=0.5)"``, ``"STICKY(patience=3)"``).  Availability
arguments accept the same grammar over substrate names
(``"correlated(domains=4, rate=0.002)"``, ``"degradation(wear_rate=0.05)"``).

Quickstart
----------
>>> from repro import api
>>> api.run("Y-IE", m=5, ncom=10, wmin=1, seed=42).makespan  # doctest: +SKIP
153
>>> comparison = api.compare(["IE", "RANDOM"], m=4, scenarios=1, trials=2)
>>> comparison.best()  # doctest: +SKIP
'IE'
>>> result = api.sweep("smoke", store="runs/smoke")  # doctest: +SKIP
>>> print(result.table())  # doctest: +SKIP

The public names of this module are pinned by the API-surface snapshot test
(``tests/test_api_surface.py``); additions are deliberate, removals break CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.cache import AnalysisContext
from repro.analysis.group import ExpectationMode
from repro.application.application import Application
from repro.availability.registry import AVAILABILITY_MODELS
from repro.components import ComponentInfo
from repro.exceptions import ExperimentError
from repro.experiments.metrics import HeuristicSummary, filter_results, summarize_results
from repro.experiments.runner import CellProgress, InstanceResult, run_campaign_spec
from repro.experiments.scenarios import (
    AvailabilitySpec,
    ScenarioParameters,
    _build_availability_platform,
)
from repro.experiments.spec import (
    BUILTIN_SPEC_NAMES,
    CampaignSpec,
    builtin_spec,
    load_spec,
)
from repro.experiments.store import ResultStore
from repro.experiments.tables import format_spec_report, format_summaries
from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.platform.builders import PlatformSpec, paper_platform
from repro.platform.platform import Platform
from repro.scheduling.registry import (
    HEURISTICS,
    available_heuristics,
    canonical_heuristic,
    create_scheduler,
    heuristic_info,
)
from repro.simulation.engine import SimulationEngine
from repro.simulation.results import SimulationResult

__all__ = [
    "run",
    "sweep",
    "compare",
    "heuristics",
    "availability_models",
    "RunResult",
    "SweepResult",
    "ComparisonResult",
    "CampaignSpec",
    "create_scheduler",
    "canonical_heuristic",
    "available_heuristics",
    "heuristic_info",
    "builtin_spec",
    "load_spec",
]

AvailabilityLike = Union[None, AvailabilitySpec, Mapping, str]
SpecLike = Union[CampaignSpec, Mapping, str, Path]


# ----------------------------------------------------------------------
# Typed result objects
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunResult:
    """Outcome of one :func:`run` call.

    Thin, stable view over the engine's
    :class:`~repro.simulation.results.SimulationResult` (kept in
    ``simulation`` for everything else: per-iteration timings, restart
    counts per worker, ...).
    """

    heuristic: str
    seed: int
    success: bool
    makespan: Optional[int]
    completed_iterations: int
    total_restarts: int
    total_configuration_changes: int
    simulation: SimulationResult
    platform: Platform
    #: Sampled per-slot series (:class:`~repro.metrics.collector.RunMetrics`)
    #: when the run was invoked with ``collect_metrics=True``, else ``None``.
    metrics: Optional[RunMetrics] = None

    def as_dict(self) -> dict:
        """JSON-ready mapping of the scalar result fields (plus metrics)."""
        payload = {
            "heuristic": self.heuristic,
            "seed": self.seed,
            "success": self.success,
            "makespan": self.makespan,
            "completed_iterations": self.completed_iterations,
            "total_restarts": self.total_restarts,
            "total_configuration_changes": self.total_configuration_changes,
        }
        if self.metrics is not None:
            payload["metrics"] = self.metrics.as_dict()
        return payload


@dataclass
class SweepResult:
    """Results of one :func:`sweep` call (one shard's worth of a campaign)."""

    spec: CampaignSpec
    results: List[InstanceResult]
    shard: Tuple[int, int] = (1, 1)

    def __len__(self) -> int:
        return len(self.results)

    def summaries(
        self,
        *,
        m: Optional[int] = None,
        ncom: Optional[int] = None,
        wmin: Optional[int] = None,
        num_processors: Optional[int] = None,
    ) -> List[HeuristicSummary]:
        """Table-I-style rows for one grid slice (all results by default)."""
        selected = filter_results(
            self.results, m=m, ncom=ncom, wmin=wmin, num_processors=num_processors
        )
        return summarize_results(selected)

    def table(self) -> str:
        """The full, per-slice report (same rendering as ``repro campaign``)."""
        return format_spec_report(self.results, self.spec)


@dataclass
class ComparisonResult:
    """Head-to-head metrics of one :func:`compare` call."""

    spec: CampaignSpec
    results: List[InstanceResult]
    summaries: List[HeuristicSummary]
    reference: str = "IE"

    def ranking(self) -> List[Tuple[str, Optional[float]]]:
        """Heuristics best-first with their %diff vs the reference."""
        return [(summary.heuristic, summary.pct_diff) for summary in self.summaries]

    def best(self) -> str:
        """The best-ranked heuristic (lowest %diff)."""
        return self.summaries[0].heuristic

    def table(self) -> str:
        """Formatted paper-style summary table of the comparison."""
        title = f"compare — m={self.spec.m_values[0]}, {len(self.results)} instances"
        return format_summaries(self.summaries, title=title)


# ----------------------------------------------------------------------
# Internal coercion helpers
# ----------------------------------------------------------------------
def _as_availability(availability: AvailabilityLike) -> Optional[AvailabilitySpec]:
    if availability is None or isinstance(availability, AvailabilitySpec):
        return availability
    if isinstance(availability, str):
        # The registry expression grammar: "correlated(domains=4, rate=0.002)",
        # "semi-markov", "degradation(wear_rate=0.05)", ...
        resolved = AVAILABILITY_MODELS.resolve(availability)
        return AvailabilitySpec(kind=resolved.name, parameters=tuple(resolved.arguments))
    if isinstance(availability, Mapping):
        return AvailabilitySpec.from_mapping(availability)
    raise ExperimentError(
        f"availability must be None, an AvailabilitySpec, a mapping or an "
        f"expression string, got {type(availability).__name__}"
    )


def _as_spec(spec: SpecLike) -> CampaignSpec:
    if isinstance(spec, CampaignSpec):
        return spec
    if isinstance(spec, Mapping):
        return CampaignSpec.from_dict(spec)
    if isinstance(spec, (str, Path)):
        text = str(spec)
        if text in BUILTIN_SPEC_NAMES:
            return builtin_spec(text)
        if Path(text).exists() or text.lower().endswith((".toml", ".json")):
            return load_spec(text)
        raise ExperimentError(
            f"unknown campaign spec {text!r}: not a built-in "
            f"({list(BUILTIN_SPEC_NAMES)}) and no such file"
        )
    raise ExperimentError(
        f"spec must be a CampaignSpec, mapping, file path or built-in name, "
        f"got {type(spec).__name__}"
    )


def _build_platform(
    *,
    m: int,
    ncom: int,
    wmin: int,
    num_processors: int,
    availability: Optional[AvailabilitySpec],
    seed,
) -> Platform:
    if availability is None or availability.is_default_markov():
        spec = PlatformSpec(num_processors=num_processors, ncom=ncom, wmin=wmin)
        return paper_platform(spec, num_tasks=m, seed=seed)
    params = ScenarioParameters(m=m, ncom=ncom, wmin=wmin, num_processors=num_processors)
    return _build_availability_platform(params, availability, num_tasks=m, seed=seed)


# ----------------------------------------------------------------------
# The three verbs
# ----------------------------------------------------------------------
def run(
    heuristic: str = "IE",
    *,
    platform: Optional[Platform] = None,
    m: int = 5,
    ncom: int = 10,
    wmin: int = 1,
    num_processors: int = 20,
    availability: AvailabilityLike = None,
    iterations: int = 10,
    seed: int = 0,
    platform_seed: Optional[int] = None,
    max_slots: int = 200_000,
    estimator: str = "paper",
    sampler: str = "kernel",
    collect_metrics: bool = False,
    metrics_stride: int = 64,
) -> RunResult:
    """Simulate one heuristic on one platform and return a :class:`RunResult`.

    *heuristic* is any registered name or parameterized expression.  Pass a
    prebuilt *platform*, or let the facade draw a paper-methodology platform
    from ``(m, ncom, wmin, num_processors)`` — optionally on a non-Markov
    substrate via *availability* (a mapping like ``{"kind": "semi-markov"}``
    or an :class:`~repro.experiments.scenarios.AvailabilitySpec`).

    *seed* drives the simulation; *platform_seed* (default: *seed*) drives
    the platform draw, so the same platform can be re-simulated under many
    seeds.  Results are deterministic in ``(platform, heuristic, seed)`` —
    *sampler* picks the engine's availability driver
    (``block``/``kernel``/``perslot``) without affecting any of them.

    With ``collect_metrics=True`` the run additionally samples per-slot
    series (pool availability, active set, work, communication backlog)
    every *metrics_stride* slots into ``RunResult.metrics`` — a
    :class:`~repro.metrics.collector.RunMetrics` — without changing any
    other field of the result.

    Example:
        >>> from repro import api
        >>> result = api.run("IE", m=4, ncom=5, wmin=1, seed=1)
        >>> result.success, result.makespan, result.total_restarts
        (True, 327, 8)
    """
    availability_spec = _as_availability(availability)
    if platform is None:
        platform = _build_platform(
            m=m,
            ncom=ncom,
            wmin=wmin,
            num_processors=num_processors,
            availability=availability_spec,
            seed=seed if platform_seed is None else platform_seed,
        )
    elif availability_spec is not None:
        raise ExperimentError("pass either platform or availability, not both")
    scheduler = create_scheduler(heuristic)
    application = Application(tasks_per_iteration=m, iterations=iterations)
    analysis = AnalysisContext(platform, mode=ExpectationMode(estimator))
    collector = MetricsCollector(metrics_stride) if collect_metrics else None
    engine = SimulationEngine(
        platform,
        application,
        scheduler,
        seed=seed,
        max_slots=max_slots,
        analysis=analysis,
        sampler=sampler,
        metrics=collector,
    )
    result = engine.run()
    return RunResult(
        metrics=collector.result() if collector is not None else None,
        heuristic=scheduler.name,
        seed=seed,
        success=result.success,
        makespan=result.makespan,
        completed_iterations=result.completed_iterations,
        total_restarts=result.total_restarts,
        total_configuration_changes=result.total_configuration_changes,
        simulation=result,
        platform=platform,
    )


def sweep(
    spec: SpecLike,
    *,
    store: Union[None, str, Path, ResultStore] = None,
    backend: Optional[str] = None,
    shard: Tuple[int, int] = (1, 1),
    jobs: int = 1,
    max_cells: Optional[int] = None,
    sampler: str = "kernel",
    collect_metrics: Optional[bool] = None,
    metrics_stride: Optional[int] = None,
    progress: Optional[Callable[[CellProgress], None]] = None,
) -> SweepResult:
    """Run (or resume) a declarative campaign and return a :class:`SweepResult`.

    *spec* may be a :class:`~repro.experiments.spec.CampaignSpec`, a mapping,
    a spec-file path (TOML/JSON) or a built-in name (``"paper"``,
    ``"smoke"``, ...).  *store* — a directory path or an open
    :class:`~repro.experiments.store.ResultStore` — makes the sweep durable:
    completed cells are skipped on re-invocation and appended as they
    finish.  *shard* ``(i, N)`` runs one deterministic partition for
    multi-machine campaigns.  *sampler* is a runtime engine option (not part
    of the spec identity); trials whose cells cover two or more
    passive-contract heuristics are advanced in one multi-heuristic pass.
    *collect_metrics* / *metrics_stride* attach a per-run metrics collector
    (``InstanceResult.metrics``); ``None`` defers to the spec's own
    settings.  Like the sampler these are runtime options: metric series
    are volatile store fields, outside the spec identity.

    Example:
        >>> from repro import api
        >>> result = api.sweep("smoke")
        >>> result.spec.name, len(result.results)
        ('smoke', 4)
    """
    campaign_spec = _as_spec(spec)
    owned_store: Optional[ResultStore] = None
    result_store: Optional[ResultStore] = None
    if isinstance(store, ResultStore):
        result_store = store
    elif store is not None:
        owned_store = ResultStore.create(store, campaign_spec, backend=backend)
        result_store = owned_store
    try:
        results = run_campaign_spec(
            campaign_spec,
            store=result_store,
            shard=shard,
            n_jobs=jobs,
            max_cells=max_cells,
            sampler=sampler,
            collect_metrics=collect_metrics,
            metrics_stride=metrics_stride,
            cell_progress=progress,
        )
    finally:
        if owned_store is not None:
            owned_store.close()
    return SweepResult(spec=campaign_spec, results=list(results), shard=shard)


def compare(
    heuristics: Sequence[str],
    *,
    m: int = 5,
    ncom: int = 10,
    wmin: int = 1,
    num_processors: int = 20,
    availability: AvailabilityLike = None,
    scenarios: int = 2,
    trials: int = 2,
    iterations: int = 10,
    makespan_cap: int = 150_000,
    label: str = "compare",
    estimator: str = "paper",
    jobs: int = 1,
    reference: Optional[str] = None,
    sampler: str = "kernel",
) -> ComparisonResult:
    """Evaluate several heuristics head-to-head on a common scenario grid.

    Every heuristic sees exactly the same availability realisations (the
    paper's paired-trial methodology), so the returned
    :class:`ComparisonResult` ranks them by %diff against *reference* —
    the paper's ``IE`` when it is among the compared heuristics, otherwise
    the first heuristic listed — with sharply reduced variance.
    *heuristics* accepts parameterized expressions, e.g.
    ``api.compare(["IE", "THRESHOLD-IE(tau=0.7)"])``.  *sampler* selects
    the engine driver (runtime only — results are bit-identical across
    samplers).

    Example:
        >>> from repro import api
        >>> comparison = api.compare(["IE", "RANDOM"], m=4, ncom=5, wmin=1)
        >>> comparison.best()
        'IE'
    """
    availability_spec = _as_availability(availability)
    spec = CampaignSpec(
        name=label,
        m_values=(m,),
        ncom_values=(ncom,),
        wmin_values=(wmin,),
        num_processors_values=(num_processors,),
        heuristics=tuple(heuristics),
        scenarios_per_cell=scenarios,
        trials_per_scenario=trials,
        iterations=iterations,
        makespan_cap=makespan_cap,
        availability=availability_spec if availability_spec is not None else AvailabilitySpec(),
        estimator=estimator,
    )
    if reference is None:
        reference = "IE" if "IE" in spec.heuristics else spec.heuristics[0]
    else:
        reference = canonical_heuristic(reference)
        if reference not in spec.heuristics:
            raise ExperimentError(
                f"reference heuristic {reference!r} is not among the compared "
                f"heuristics {list(spec.heuristics)}"
            )
    results = run_campaign_spec(spec, n_jobs=jobs, sampler=sampler)
    summaries = summarize_results(results, reference=reference)
    return ComparisonResult(
        spec=spec, results=list(results), summaries=summaries, reference=reference
    )


# ----------------------------------------------------------------------
# Component discovery
# ----------------------------------------------------------------------
def heuristics(family: Optional[str] = None) -> List[ComponentInfo]:
    """Metadata for every registered heuristic (optionally one family).

    Example:
        >>> from repro import api
        >>> [info.name for info in api.heuristics(family="baseline")]
        ['RANDOM']
    """
    return [HEURISTICS.get(name) for name in available_heuristics(family=family)]


def availability_models() -> List[ComponentInfo]:
    """Metadata for every registered availability-model substrate.

    Example:
        >>> from repro import api
        >>> names = [info.name for info in api.availability_models()]
        >>> "markov" in names and "correlated" in names
        True
    """
    return list(AVAILABILITY_MODELS.infos())
