"""repro — reproduction of *Scheduling Tightly-Coupled Applications on Heterogeneous Desktop Grids*.

Casanova, Dufossé, Robert, Vivien — HCW 2013 (hal-00788606).

The library models tightly-coupled iterative master–worker applications
running on volatile, heterogeneous processors (desktop grids), and provides:

* the 3-state (UP / RECLAIMED / DOWN) availability substrate, including the
  Markov model of Section V and non-Markovian extensions;
* the platform / application models of Section III (bounded multi-port
  master, per-worker speeds and memory bounds);
* the analytical approximations of Theorem 5.1 (probability of success and
  conditional expected duration of a tightly-coupled computation) and the
  communication estimates of Section V-B;
* the off-line complexity artefacts of Section IV (ENCD reductions and exact
  solvers);
* the seventeen on-line heuristics of Section VI (RANDOM, the passive IP /
  IE / IY / IAY and the twelve proactive C-H heuristics);
* a faithful time-slot discrete-event simulator of the execution model;
* the experiment harness reproducing Tables I–II and Figure 2.

Quickstart
----------
The :mod:`repro.api` facade is the stable entry point:

>>> from repro import api
>>> result = api.run("Y-IE", m=5, ncom=10, wmin=1, seed=42)
>>> result.success, result.makespan  # doctest: +SKIP
(True, 153)

The building blocks remain importable directly:

>>> from repro import (Application, PlatformSpec, paper_platform,
...                    create_scheduler, simulate)
>>> platform = paper_platform(PlatformSpec(ncom=10, wmin=1), num_tasks=5, seed=1)
>>> app = Application(tasks_per_iteration=5, iterations=10)
>>> result = simulate(platform, app, create_scheduler("Y-IE"), seed=42)
>>> result.success, result.makespan  # doctest: +SKIP
(True, 153)
"""

from repro.analysis import (
    AnalysisContext,
    ConfigurationEstimate,
    ExpectationMode,
    GroupAnalysis,
    WorkerAnalysis,
    evaluate_configuration,
    get_criterion,
)
from repro.application import Application, Configuration
from repro.availability import (
    AvailabilityModel,
    AvailabilityTrace,
    MarkovAvailabilityModel,
    SemiMarkovAvailabilityModel,
    TraceAvailabilityModel,
    random_markov_model,
    random_markov_models,
)
from repro.hazards import (
    ChurnProcess,
    DegradationAvailabilityModel,
    DomainOutageProcess,
    GroupHazardProcess,
)
from repro.exceptions import (
    InfeasibleProblemError,
    InvalidApplicationError,
    InvalidConfigurationError,
    InvalidModelError,
    InvalidPlatformError,
    ReproError,
    SchedulingError,
    SimulationError,
)
from repro.experiments import (
    CampaignScale,
    ExperimentScenario,
    ScenarioParameters,
    figure2_series,
    generate_scenarios,
    run_campaign,
    run_instance,
    run_scenario,
    summarize_results,
)
from repro.offline import (
    ENCDInstance,
    OfflineProblem,
    encd_to_offline_mu1,
    encd_to_offline_mu_inf,
    solve_offline_mu1,
    solve_offline_mu_inf,
)
from repro.platform import Platform, PlatformSpec, Processor, paper_platform, uniform_platform
from repro.scheduling import (
    ALL_HEURISTICS,
    EXTENSION_HEURISTIC_NAMES,
    PASSIVE_HEURISTICS,
    PROACTIVE_HEURISTICS,
    Scheduler,
    available_heuristics,
    canonical_heuristic,
    create_scheduler,
    register_heuristic,
)
from repro.simulation import (
    SimulationEngine,
    SimulationResult,
    render_gantt,
    simulate,
)
from repro.types import DOWN, RECLAIMED, UP, ProcessorState

# The stable facade (repro.api.run / sweep / compare); imported last so the
# submodule can build on everything above.
from repro import api

__version__ = "1.0.0"

__all__ = [
    # availability
    "AvailabilityModel",
    "MarkovAvailabilityModel",
    "SemiMarkovAvailabilityModel",
    "TraceAvailabilityModel",
    "AvailabilityTrace",
    "random_markov_model",
    "random_markov_models",
    # hazards
    "GroupHazardProcess",
    "DomainOutageProcess",
    "ChurnProcess",
    "DegradationAvailabilityModel",
    # platform / application
    "Processor",
    "Platform",
    "PlatformSpec",
    "paper_platform",
    "uniform_platform",
    "Application",
    "Configuration",
    # analysis
    "AnalysisContext",
    "GroupAnalysis",
    "WorkerAnalysis",
    "ExpectationMode",
    "ConfigurationEstimate",
    "evaluate_configuration",
    "get_criterion",
    # offline
    "OfflineProblem",
    "ENCDInstance",
    "encd_to_offline_mu1",
    "encd_to_offline_mu_inf",
    "solve_offline_mu1",
    "solve_offline_mu_inf",
    # facade
    "api",
    # scheduling
    "Scheduler",
    "create_scheduler",
    "register_heuristic",
    "available_heuristics",
    "canonical_heuristic",
    "ALL_HEURISTICS",
    "PASSIVE_HEURISTICS",
    "PROACTIVE_HEURISTICS",
    "EXTENSION_HEURISTIC_NAMES",
    # simulation
    "SimulationEngine",
    "SimulationResult",
    "simulate",
    "render_gantt",
    # experiments
    "CampaignScale",
    "ScenarioParameters",
    "ExperimentScenario",
    "generate_scenarios",
    "run_instance",
    "run_scenario",
    "run_campaign",
    "summarize_results",
    "figure2_series",
    # types / errors
    "ProcessorState",
    "UP",
    "RECLAIMED",
    "DOWN",
    "ReproError",
    "InvalidModelError",
    "InvalidPlatformError",
    "InvalidApplicationError",
    "InvalidConfigurationError",
    "InfeasibleProblemError",
    "SimulationError",
    "SchedulingError",
    "__version__",
]
