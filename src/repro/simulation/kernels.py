"""Accelerated scan primitives for the block simulation core.

The simulation engine consumes availability in ``(m, block_size)`` ``int8``
blocks (see :mod:`repro.simulation.engine`).  This module hosts the numeric
primitives of that consumption — the per-block companion masks, the
per-worker next-change table, and the span searches used by the
``sampler="kernel"`` fast paths:

``block_companions``
    The DOWN / column-identical masks the per-slot loop reads at O(1).

``next_change_table``
    ``nc[q, j]`` = first slot after ``j`` at which worker ``q`` changes
    state (``L`` when it never does inside the block).  Turns the engine's
    uneventful-span search into an O(#enrolled) gather + min.

``frozen_span``
    Slots after ``j`` during which every *enrolled* worker provably holds
    its current state (the exact condition of the engine's fast-forward).

``compute_span``
    Computation-phase window search: how many slots after ``j`` can be
    consumed before the first enrolled DOWN transition or the iteration's
    completing slot, and how many of them are all-UP compute slots.  Unlike
    ``frozen_span`` it jumps straight over UP/RECLAIMED flicker.

``comm_phase_span``
    Whole-communication-phase jump for the capacity-surplus case
    (``ncom >= #enrolled``): with a channel for everybody, the sticky
    policy degenerates to "every needing UP worker is served every slot",
    so worker ``q``'s transfer completes on its ``N_q``-th UP slot and the
    phase collapses to per-worker cumulative-UP searches.

Every primitive has a pure-NumPy implementation; the hot loop variants are
additionally compiled with :mod:`numba` when it is importable.  Compilation
is eager (explicit signatures) inside a ``try``/``except`` so that *any*
numba problem — missing package, unsupported version, typing error — falls
back to the NumPy implementations silently.  Set ``REPRO_NO_NUMBA=1`` to
force the fallback even when numba is installed.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

from repro.types import DOWN, UP

__all__ = [
    "HAVE_NUMBA",
    "NUMBA_DISABLED_BY_ENV",
    "kernel_backend",
    "BlockData",
    "block_companions",
    "next_change_table",
    "frozen_span",
    "compute_span",
    "comm_phase_span",
]

_UP_CODE = int(UP)
_DOWN_CODE = int(DOWN)

#: Chunk width of the NumPy ``compute_span`` scan: bounds the temporaries
#: (and the overshoot past an in-window iteration completion) without giving
#: up the vectorised inner comparisons.
_SPAN_CHUNK = 512


def _detect_numba():
    if os.environ.get("REPRO_NO_NUMBA"):
        return None
    try:
        import numba  # noqa: F401  (optional accelerator)
    except Exception:
        return None
    return numba


_numba = _detect_numba()

#: Whether ``REPRO_NO_NUMBA`` suppressed an otherwise usable numba install
#: (kept distinct from "numba is simply not installed" for diagnostics).
NUMBA_DISABLED_BY_ENV = bool(os.environ.get("REPRO_NO_NUMBA"))


# ----------------------------------------------------------------------
# Pure-NumPy reference implementations
# ----------------------------------------------------------------------
def block_companions(
    block: np.ndarray, last_column: Optional[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-block masks read by the engine's slot loop.

    Returns ``(down, same, changes)`` where ``down[j]`` flags a DOWN worker
    in column ``j``, ``same[j]`` flags a column identical to its
    predecessor (``last_column`` supplies the predecessor of column 0), and
    ``changes`` lists the positions where ``same`` is False, sorted.
    """
    length = block.shape[1]
    down = (block == _DOWN_CODE).any(axis=0)
    same = np.empty(length, dtype=bool)
    same[0] = last_column is not None and bool(np.array_equal(block[:, 0], last_column))
    if length > 1:
        same[1:] = ~(block[:, 1:] != block[:, :-1]).any(axis=0)
    changes = np.flatnonzero(~same)
    return down, same, changes


def next_change_table(block: np.ndarray) -> np.ndarray:
    """``nc[q, j]`` = smallest ``k > j`` with ``block[q, k] != block[q, j]``, else ``L``.

    Built with one reversed ``minimum.accumulate`` suffix scan, so the cost
    is a handful of vectorised passes over the block regardless of how the
    change positions are distributed.
    """
    num_workers, length = block.shape
    table = np.full((num_workers, length), length, dtype=np.int32)
    if length > 1:
        positions = np.arange(1, length, dtype=np.int32)
        candidates = np.where(
            block[:, 1:] != block[:, :-1], positions, np.int32(length)
        )
        table[:, : length - 1] = np.minimum.accumulate(
            candidates[:, ::-1], axis=1
        )[:, ::-1]
    return table


def _frozen_span_numpy(table: np.ndarray, enrolled_ids: np.ndarray, rel: int) -> int:
    """Slots after *rel* during which no enrolled worker changes state."""
    if enrolled_ids.size == 0:
        return int(table.shape[1]) - rel - 1
    return int(table[enrolled_ids, rel].min()) - rel - 1


def _compute_span_numpy(
    block: np.ndarray,
    enrolled_ids: np.ndarray,
    rel: int,
    length: int,
    needed: int,
) -> Tuple[int, int]:
    """Computation-phase window after *rel*: ``(advance, progressed)``.

    Consumes columns ``rel+1, rel+2, ...`` while no enrolled worker is DOWN
    and the iteration cannot complete, stopping *before* the first enrolled
    DOWN column and *before* the all-UP column on which cumulative progress
    would reach *needed* (both are left to the engine's per-slot path), and
    at the block end.  ``progressed`` counts the all-UP columns among the
    ``advance`` consumed ones; the rest are idle (RECLAIMED flicker).

    Scanned in bounded chunks so the temporaries stay small and an early
    stop does not pay for the rest of the block.
    """
    needed_eff = needed if needed > 1 else 1
    advance = 0
    progressed = 0
    start = rel + 1
    while start < length:
        stop = start + _SPAN_CHUNK
        if stop > length:
            stop = length
        window = block[enrolled_ids, start:stop]
        down = (window == _DOWN_CODE).any(axis=0)
        limit = window.shape[1]
        if down.any():
            limit = int(np.argmax(down))
        all_up = (window[:, :limit] == _UP_CODE).all(axis=0)
        cumulative = np.cumsum(all_up)
        room = needed_eff - progressed
        if cumulative.size and cumulative[-1] >= room:
            # The column where progress would hit ``needed`` completes the
            # iteration: consume everything before it and stop.
            cut = int(np.searchsorted(cumulative, room))
            advance += cut
            progressed += int(cumulative[cut - 1]) if cut else 0
            return advance, progressed
        advance += limit
        if cumulative.size:
            progressed += int(cumulative[-1])
        if limit < window.shape[1]:  # stopped at an enrolled DOWN column
            return advance, progressed
        start = stop
    return advance, progressed


#: First chunk width of the ``comm_phase_span`` scan; typical phases are a
#: few tens of slots, so start small and grow geometrically for stalls.
_PHASE_CHUNK = 64


def _comm_phase_span_numpy(
    block: np.ndarray,
    enrolled_ids: np.ndarray,
    needs: np.ndarray,
    rel: int,
    length: int,
) -> Tuple[int, np.ndarray, np.ndarray]:
    """Jump a whole communication phase, starting *at* column *rel*.

    Valid only while every needing UP worker is guaranteed a channel
    (``ncom >= #enrolled``): then worker ``i`` receives exactly one unit on
    each of its UP columns until its ``needs[i]`` units are done, and the
    phase ends on the column where the last transfer completes.  The scan
    stops *before* the first column with an enrolled DOWN worker (the
    caller guarantees column *rel* has none) and at the block end.

    Returns ``(advance, units, holders)``: the number of columns consumed
    (all of them communication slots), the per-worker units served, and the
    per-worker "granted a channel on the last consumed column" mask — the
    sticky-holder set the slot-by-slot policy would have left behind.
    """
    count = enrolled_ids.shape[0]
    carry = np.zeros(count, dtype=np.int64)
    last_up = np.zeros(count, dtype=bool)
    advance = 0
    start = rel
    chunk = _PHASE_CHUNK
    while start < length:
        stop = start + chunk
        if stop > length:
            stop = length
        chunk *= 2
        window = block[enrolled_ids, start:stop]
        width = window.shape[1]
        down = (window == _DOWN_CODE).any(axis=0)
        limit = width
        if down.any():
            limit = int(np.argmax(down))
            if limit == 0:
                break
        up = window[:, :limit] == _UP_CODE
        cumulative = np.cumsum(up, axis=1) + carry[:, None]
        met = (cumulative >= needs[:, None]).all(axis=0)
        if met.any():
            done = int(np.argmax(met))  # the column completing the phase
            advance += done + 1
            carry = cumulative[:, done]
            holders = up[:, done] & (carry <= needs) & (needs > 0)
            return advance, np.minimum(needs, carry), holders
        advance += limit
        carry = cumulative[:, limit - 1]
        last_up = up[:, limit - 1]
        if limit < width:  # stopped at an enrolled DOWN column
            break
        start = stop
    holders = last_up & (carry <= needs) & (needs > 0)
    return advance, np.minimum(needs, carry), holders


# ----------------------------------------------------------------------
# numba-compilable loop variants (plain Python when numba is absent)
# ----------------------------------------------------------------------
def _frozen_span_loop(table, enrolled_ids, rel):  # pragma: no cover - numba twin
    length = table.shape[1]
    best = length
    for index in range(enrolled_ids.shape[0]):
        value = table[enrolled_ids[index], rel]
        if value < best:
            best = value
    return best - rel - 1


def _compute_span_loop(block, enrolled_ids, rel, length, needed):  # pragma: no cover
    needed_eff = needed if needed > 1 else 1
    advance = 0
    progressed = 0
    for column in range(rel + 1, length):
        all_up = True
        for index in range(enrolled_ids.shape[0]):
            state = block[enrolled_ids[index], column]
            if state == 2:  # DOWN stops the window at this column
                return advance, progressed
            if state != 0:
                all_up = False
        if all_up:
            if progressed + 1 >= needed_eff:
                return advance, progressed  # completing slot: leave it per-slot
            progressed += 1
        advance += 1
    return advance, progressed


def _comm_phase_span_loop(block, enrolled_ids, needs, rel, length):  # pragma: no cover
    count = enrolled_ids.shape[0]
    units = np.zeros(count, dtype=np.int64)
    holders = np.zeros(count, dtype=np.bool_)
    met = 0
    for index in range(count):
        if needs[index] <= 0:
            met += 1
    advance = 0
    for column in range(rel, length):
        down = False
        for index in range(count):
            if block[enrolled_ids[index], column] == 2:
                down = True
                break
        if down:
            break
        for index in range(count):
            holders[index] = False
            if block[enrolled_ids[index], column] == 0 and units[index] < needs[index]:
                units[index] += 1
                holders[index] = True
                if units[index] == needs[index]:
                    met += 1
        advance += 1
        if met == count:
            break
    return advance, units, holders


def _compile_kernels(numba):
    """Eagerly compile the loop variants; any failure falls back to NumPy."""
    frozen = numba.njit(
        "int64(int32[:, ::1], int64[::1], int64)", cache=False, nogil=True
    )(_frozen_span_loop)
    span = numba.njit(
        "UniTuple(int64, 2)(int8[:, ::1], int64[::1], int64, int64, int64)",
        cache=False,
        nogil=True,
    )(_compute_span_loop)
    phase = numba.njit(
        "Tuple((int64, int64[::1], b1[::1]))"
        "(int8[:, ::1], int64[::1], int64[::1], int64, int64)",
        cache=False,
        nogil=True,
    )(_comm_phase_span_loop)
    return frozen, span, phase


if _numba is not None:
    try:
        frozen_span, compute_span, comm_phase_span = _compile_kernels(_numba)
        HAVE_NUMBA = True
    except Exception:  # pragma: no cover - depends on the numba install
        frozen_span = _frozen_span_numpy
        compute_span = _compute_span_numpy
        comm_phase_span = _comm_phase_span_numpy
        HAVE_NUMBA = False
else:
    frozen_span = _frozen_span_numpy
    compute_span = _compute_span_numpy
    comm_phase_span = _comm_phase_span_numpy
    HAVE_NUMBA = False


def kernel_backend() -> str:
    """``"numba"`` when the compiled kernels are active, else ``"numpy"``."""
    return "numba" if HAVE_NUMBA else "numpy"


# ----------------------------------------------------------------------
# Shared per-block bundle
# ----------------------------------------------------------------------
class BlockData:
    """One prefetched availability block plus its derived structures.

    Bundles what the engine installs per prefetch so the multi-heuristic
    driver can compute everything once and hand the same bundle to every
    engine.  The next-change table is built lazily — only the kernel
    sampler reads it — and exactly once per block no matter how many
    engines ask.
    """

    __slots__ = ("block", "down", "same", "changes", "_next_change")

    def __init__(self, block: np.ndarray, last_column: Optional[np.ndarray]) -> None:
        self.block = block
        self.down, self.same, self.changes = block_companions(block, last_column)
        self._next_change: Optional[np.ndarray] = None

    @property
    def length(self) -> int:
        return self.block.shape[1]

    def ensure_next_change(self) -> np.ndarray:
        if self._next_change is None:
            self._next_change = next_change_table(self.block)
        return self._next_change
