"""Discrete-event (time-slot) simulator of the execution model of Section III.

The engine advances slot by slot:

1. realise the availability state of every processor for the slot;
2. handle failures (enrolled workers that went DOWN lose everything and the
   iteration's partial computation is lost);
3. ask the scheduler for the configuration of the slot;
4. apply configuration changes (newly enrolled workers must receive the
   program — unless they already hold it — and all their task data;
   un-enrolled workers lose their partially received data);
5. run the slot: a *communication* slot serves at most ``ncom`` enrolled UP
   workers that still need program/data; once every enrolled worker holds the
   program and all its data, *computation* slots accumulate whenever all
   enrolled workers are simultaneously UP;
6. when the accumulated computation reaches ``W = max_q x_q w_q`` the
   iteration completes; after the configured number of iterations the run is
   over and the makespan is reported.
"""

from repro.simulation.engine import (
    BLOCK_BOUNDARY,
    SAMPLERS,
    SimulationEngine,
    simulate,
)
from repro.simulation.events import EventKind, SimulationEvent
from repro.simulation.gantt import render_gantt
from repro.simulation.kernels import HAVE_NUMBA, kernel_backend
from repro.simulation.multirun import MultiHeuristicDriver, SharedBlockSource
from repro.simulation.results import IterationRecord, SimulationResult
from repro.simulation.state import WorkerRuntime

__all__ = [
    "SimulationEngine",
    "simulate",
    "SAMPLERS",
    "BLOCK_BOUNDARY",
    "MultiHeuristicDriver",
    "SharedBlockSource",
    "HAVE_NUMBA",
    "kernel_backend",
    "SimulationResult",
    "IterationRecord",
    "SimulationEvent",
    "EventKind",
    "WorkerRuntime",
    "render_gantt",
]
