"""Simulation results: per-iteration records and run-level summary.

The paper's quality metric is the *makespan*: the number of time-slots needed
to complete a fixed number of iterations (10 in the paper's campaign).  Runs
that exceed the makespan cap are declared failed, mirroring the paper's
treatment ("we limit the makespan to 1,000,000 seconds and declare that a
heuristic fails if it reaches this limit").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["IterationRecord", "SimulationResult"]


@dataclass
class IterationRecord:
    """Book-keeping for one completed (or attempted) application iteration."""

    index: int
    start_slot: int
    end_slot: Optional[int] = None
    restarts: int = 0
    configuration_changes: int = 0
    communication_slots: int = 0
    computation_slots: int = 0
    idle_slots: int = 0

    @property
    def completed(self) -> bool:
        return self.end_slot is not None

    @property
    def duration(self) -> Optional[int]:
        """Slots from iteration start to completion (inclusive), or ``None``."""
        if self.end_slot is None:
            return None
        return self.end_slot - self.start_slot + 1

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "start_slot": self.start_slot,
            "end_slot": self.end_slot,
            "restarts": self.restarts,
            "configuration_changes": self.configuration_changes,
            "communication_slots": self.communication_slots,
            "computation_slots": self.computation_slots,
            "idle_slots": self.idle_slots,
        }


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    #: Name of the scheduler that produced the run.
    scheduler: str
    #: Whether the requested number of iterations completed within the cap.
    success: bool
    #: Slots needed to complete all iterations (``None`` when ``success`` is False).
    makespan: Optional[int]
    #: Number of iterations completed before the run ended.
    completed_iterations: int
    #: Number of iterations requested.
    requested_iterations: int
    #: The makespan cap that was in force.
    max_slots: int
    #: Per-iteration records (includes the unfinished final iteration, if any).
    iterations: List[IterationRecord] = field(default_factory=list)
    #: Total iteration restarts caused by worker failures.
    total_restarts: int = 0
    #: Total configuration changes (including failure-triggered rebuilds).
    total_configuration_changes: int = 0
    #: Slot-level activity totals over the whole run.
    communication_slots: int = 0
    computation_slots: int = 0
    idle_slots: int = 0

    # ------------------------------------------------------------------
    @property
    def failed(self) -> bool:
        return not self.success

    def effective_makespan(self, penalty: Optional[int] = None) -> int:
        """Makespan, substituting *penalty* (default: the cap) for failed runs.

        The experiment metrics need a numeric value even for failed runs when
        aggregating; the paper simply discards failed runs for %diff but
        counts them in ``#fails``.
        """
        if self.success and self.makespan is not None:
            return self.makespan
        return int(penalty if penalty is not None else self.max_slots)

    def mean_iteration_duration(self) -> Optional[float]:
        durations = [record.duration for record in self.iterations if record.completed]
        if not durations:
            return None
        return float(sum(durations)) / len(durations)

    def as_dict(self) -> dict:
        return {
            "scheduler": self.scheduler,
            "success": self.success,
            "makespan": self.makespan,
            "completed_iterations": self.completed_iterations,
            "requested_iterations": self.requested_iterations,
            "max_slots": self.max_slots,
            "total_restarts": self.total_restarts,
            "total_configuration_changes": self.total_configuration_changes,
            "communication_slots": self.communication_slots,
            "computation_slots": self.computation_slots,
            "idle_slots": self.idle_slots,
            "iterations": [record.as_dict() for record in self.iterations],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SimulationResult":
        iterations = [
            IterationRecord(**record) for record in payload.get("iterations", [])
        ]
        return cls(
            scheduler=payload["scheduler"],
            success=payload["success"],
            makespan=payload.get("makespan"),
            completed_iterations=payload["completed_iterations"],
            requested_iterations=payload["requested_iterations"],
            max_slots=payload["max_slots"],
            iterations=iterations,
            total_restarts=payload.get("total_restarts", 0),
            total_configuration_changes=payload.get("total_configuration_changes", 0),
            communication_slots=payload.get("communication_slots", 0),
            computation_slots=payload.get("computation_slots", 0),
            idle_slots=payload.get("idle_slots", 0),
        )

    def describe(self) -> str:
        status = "ok" if self.success else "FAILED"
        return (
            f"{self.scheduler}: {status}, makespan={self.makespan}, "
            f"iterations={self.completed_iterations}/{self.requested_iterations}, "
            f"restarts={self.total_restarts}, reconfigs={self.total_configuration_changes}"
        )
