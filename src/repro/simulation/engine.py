"""The time-slot simulation engine.

Implements the execution model of Section III faithfully:

* 3-state workers; DOWN destroys program, data and the iteration's partial
  computation; RECLAIMED merely suspends;
* bounded multi-port master: at most ``ncom`` simultaneous transfers;
* an iteration is a communication phase (program once per enrolment + one
  data message per assigned task) followed by a computation phase needing
  ``W = max_q x_q w_q`` slots during which *all* enrolled workers are
  simultaneously UP;
* changing the configuration (for any reason) loses the iteration's partial
  computation; un-enrolled workers keep the program but lose received data;
* the run completes when the requested number of iterations is done, or is
  declared failed when the slot cap is hit.

The engine is deliberately scheduler-agnostic and availability-agnostic: the
scheduler is any :class:`~repro.scheduling.base.Scheduler`, and availability
either comes from the processors' stochastic models or from a fixed
:class:`AvailabilityTrace` (replay).

Performance model
-----------------
Availability is consumed in *blocks*: worker states are prefetched into an
``(m, block_size)`` ``int8`` matrix through the models'
:meth:`~repro.availability.model.AvailabilityModel.sample_block` vectorised
samplers (or by slicing the replay trace).  Because every worker owns an
independent generator stream, block sampling consumes exactly the same draws
as the historical slot-by-slot sampling, so fixed seeds reproduce the same
trajectories bit for bit; ``sampler="perslot"`` keeps the legacy
``next_state`` driver around for differential testing.

Two further optimisations exploit the declared behaviour of schedulers whose
:attr:`~repro.scheduling.base.Scheduler.passive_between_rebuilds` flag is
set (they return the carried-over configuration whenever
``Observation.needs_new_configuration()`` is false):

* the per-slot :class:`Observation`/``select`` round-trip is skipped on
  slots where the contract pins the decision;
* during the computation phase the engine scans the prefetched block for the
  first slot at which a *relevant* worker changes state and fast-forwards
  the intervening uneventful slots in one step.

Both short-cuts are exact: they change neither the trajectory nor any
counter of the run (golden-seed tests pin this down).

``sampler="kernel"`` layers the primitives of
:mod:`repro.simulation.kernels` on top of the block driver: a per-worker
next-change table turns the uneventful-span search into an O(#enrolled)
lookup, the computation phase jumps straight over UP/RECLAIMED flicker to
the first enrolled DOWN transition or the iteration's completing slot, and
only the enrolled workers' runtime states are synchronised per event.  The
primitives are numba-compiled when numba is importable (``REPRO_NO_NUMBA=1``
forces the pure-NumPy fallback); either way the trajectory is bit-identical
to the ``block`` and ``perslot`` drivers.

Decision points are exposed as an explicit step iterator: :meth:`run` is a
thin driver over :meth:`SimulationEngine.steps`, which yields an
:class:`~repro.scheduling.base.Observation` at every slot where the
scheduler is consulted and receives the chosen configuration back.  External
callers (an RL agent, the multi-heuristic driver) can therefore drive a run
decision by decision without subclassing the engine.
"""

from __future__ import annotations

import time
from typing import Generator, List, Optional, Sequence

import numpy as np

from repro.analysis.cache import AnalysisContext
from repro.application.application import Application
from repro.application.configuration import Configuration
from repro.availability.model import AvailabilityModel
from repro.availability.trace import AvailabilityTrace
from repro.exceptions import SchedulingError, SimulationError
from repro.platform.platform import Platform
from repro.scheduling.base import Observation, Scheduler
from repro.simulation.comm import CommunicationManager
from repro.simulation.events import EventKind, EventLog
from repro.simulation.kernels import (
    BlockData,
    comm_phase_span,
    compute_span,
    frozen_span,
)
from repro.simulation.results import IterationRecord, SimulationResult
from repro.simulation.state import WorkerRuntime
from repro.telemetry.tracer import active_tracer
from repro.types import DOWN, RECLAIMED, UP, ProcessorState
from repro.utils.rng import SeedLike, derive_run_streams

__all__ = ["SimulationEngine", "simulate", "SAMPLERS", "BLOCK_BOUNDARY"]

#: The availability drivers understood by :class:`SimulationEngine`.
SAMPLERS = ("block", "kernel", "perslot")

#: Sentinel yielded by cooperative :meth:`SimulationEngine.steps` iterations
#: right before a new availability block is fetched, so a multi-engine
#: driver can interleave engines block by block (see
#: :mod:`repro.simulation.multirun`).  Never yielded by :meth:`run`.
BLOCK_BOUNDARY = object()

#: Default makespan cap, matching the paper's 1,000,000-slot limit.
DEFAULT_MAX_SLOTS = 1_000_000

#: Default number of slots prefetched per availability block.
DEFAULT_BLOCK_SIZE = 4096

#: Activity codes recorded per worker per slot when ``record_activity`` is on.
ACTIVITY_NONE = " "
ACTIVITY_IDLE = "I"
ACTIVITY_PROGRAM = "P"
ACTIVITY_DATA = "D"
ACTIVITY_COMPUTE = "C"

#: Cheap int -> singleton lookup for the three processor states.
_STATE_OF_CODE = (UP, RECLAIMED, DOWN)
_DOWN_CODE = int(DOWN)

#: Idle (reclaimed) stretches are fast-forwarded at most this many slots per
#: scan so the column comparison stays O(scan limit), not O(block size²).
_IDLE_SCAN_LIMIT = 256


class SimulationEngine:
    """Simulate one application run under one scheduler.

    Parameters
    ----------
    platform, application:
        The models of Section III.
    scheduler:
        The on-line scheduler driving configuration choices.
    seed:
        Seed for all stochastic elements of the run (availability sampling
        and scheduler tie-breaking).  Ignored for availability when *trace*
        is given.
    max_slots:
        Makespan cap; the run is declared failed when it is reached.
    trace:
        Optional fixed availability source to replay instead of sampling
        from the processors' models: an :class:`AvailabilityTrace` or any
        object exposing ``num_processors``, ``horizon`` and
        ``block(start, stop)``.  Must cover at least ``max_slots`` slots or
        the run fails with :class:`SimulationError` when it runs off the
        end.
    analysis:
        Optional pre-built :class:`AnalysisContext`; sharing one across runs
        on the same platform (different schedulers / trials) avoids
        recomputing the Markov machinery.
    block_size:
        Number of slots of worker states prefetched per availability block.
    sampler:
        ``"block"`` (default) drives the models through their vectorised
        :meth:`sample_block`; ``"kernel"`` adds the accelerated span
        primitives of :mod:`repro.simulation.kernels` on top of the block
        driver (numba-compiled when available); ``"perslot"`` retains the
        legacy ``next_state``-per-slot driver.  All three produce identical
        trajectories for a given seed (the models' block samplers are
        stream-equivalent by contract and the kernel span jumps are exact);
        the switch exists for differential tests and benchmarks.
    shared_blocks:
        Optional :class:`~repro.simulation.multirun.SharedBlockSource`
        serving aligned availability windows (with their derived masks and
        tables) computed once and shared by several engines simulating the
        same realisation.  Internal to
        :class:`~repro.simulation.multirun.MultiHeuristicDriver`; mutually
        exclusive with *trace* (the source owns the availability).
    record_events:
        Keep a structured event log (off by default).
    record_activity:
        Keep per-worker per-slot activity and state matrices, enabling Gantt
        rendering (off by default; memory grows with the makespan).
    metrics:
        Optional :class:`~repro.metrics.collector.MetricsCollector` sampling
        per-slot series (pool availability, active set, work, backlog) at a
        fixed stride while the run executes.  The collector is strictly
        read-only — attaching one never changes the trajectory or the
        result — and when ``None`` (the default) the hooks cost a single
        predicted-not-taken branch per visited slot.
    tracer:
        Optional :class:`~repro.telemetry.tracer.Tracer` recording
        wall-clock spans of the run's phases (block fetch, communication
        phase, fast-forward jumps, whole run).  Like the collector it is
        strictly read-only; ``None`` (or a ``NullTracer``) takes the exact
        untraced code path.
    """

    def __init__(
        self,
        platform: Platform,
        application: Application,
        scheduler: Scheduler,
        *,
        seed: SeedLike = None,
        max_slots: int = DEFAULT_MAX_SLOTS,
        trace: Optional[AvailabilityTrace] = None,
        analysis: Optional[AnalysisContext] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        sampler: str = "block",
        shared_blocks=None,
        record_events: bool = False,
        record_activity: bool = False,
        metrics=None,
        tracer=None,
    ) -> None:
        if max_slots < 1:
            raise SimulationError(f"max_slots must be >= 1, got {max_slots}")
        if block_size < 1:
            raise SimulationError(f"block_size must be >= 1, got {block_size}")
        if sampler not in SAMPLERS:
            raise SimulationError(
                f"unknown sampler {sampler!r}; available samplers: "
                + ", ".join(SAMPLERS)
            )
        if shared_blocks is not None and trace is not None:
            raise SimulationError(
                "shared_blocks and trace are mutually exclusive; give the "
                "trace to the SharedBlockSource instead"
            )
        platform.validate_for_tasks(application.tasks_per_iteration)
        if trace is not None and trace.num_processors != platform.num_processors:
            raise SimulationError(
                f"trace has {trace.num_processors} processors but the platform has "
                f"{platform.num_processors}"
            )
        self.platform = platform
        self.application = application
        self.scheduler = scheduler
        self.max_slots = int(max_slots)
        self.trace = trace
        self.block_size = int(block_size)
        self.sampler = sampler
        self.analysis = analysis if analysis is not None else AnalysisContext(platform)
        self.events = EventLog(enabled=record_events)
        self.record_activity = bool(record_activity)
        self.metrics = metrics
        self.tracer = active_tracer(tracer)
        self._shared_blocks = shared_blocks
        self._kernel = sampler == "kernel"
        #: Result of the most recently completed run (also the
        #: ``StopIteration`` value of an exhausted :meth:`steps` iterator).
        self.last_result: Optional[SimulationResult] = None

        # Independent streams: one per worker for availability, one for the
        # scheduler.  The recipe lives in utils.rng so the experiment layer
        # can rebuild the exact availability realisation of a seed.  A
        # platform-level hazard overlay gets its own master stream — an
        # additional SeedSequence child, so the worker and scheduler streams
        # (and every hazard-free run) are unaffected.
        self._hazard = platform.hazard if trace is None and shared_blocks is None else None
        if self._hazard is not None:
            (
                self._availability_rngs,
                self._scheduler_rng,
                self._hazard_rng,
            ) = derive_run_streams(seed, platform.num_processors, hazard=True)
        else:
            self._availability_rngs, self._scheduler_rng = derive_run_streams(
                seed, platform.num_processors
            )
            self._hazard_rng = None

        self._comm = CommunicationManager(platform.ncom)
        self._runtimes: List[WorkerRuntime] = []
        self._block: Optional[np.ndarray] = None
        # Raw (pre-overlay) last column of the previous window: what the
        # base availability chains continue from when a hazard is active.
        self._base_last_column: Optional[np.ndarray] = None
        self._block_start = 0
        self._block_len = 0
        # Per-block companions, computed once per prefetch so the per-slot
        # loop does O(1) lookups instead of O(m) array scans:
        # _block_down[j]  — does column j contain a DOWN worker?
        # _block_same[j]  — is column j identical to column j - 1?
        # _block_changes  — sorted positions j with _block_same[j] False.
        # _block_data bundles all of it (plus the kernel sampler's lazy
        # next-change table) so block sources can share one copy.
        self._block_down: Optional[np.ndarray] = None
        self._block_same: Optional[np.ndarray] = None
        self._block_changes: Optional[np.ndarray] = None
        self._block_data: Optional[BlockData] = None
        self.activity_matrix: Optional[np.ndarray] = None
        self.state_matrix: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Availability driving (chunked prefetch)
    # ------------------------------------------------------------------
    def _states_at(self, slot: int) -> np.ndarray:
        """The state column of *slot*, prefetching the next block if needed."""
        offset = slot - self._block_start
        if self._block is None or offset >= self._block_len:
            self._fetch_block(slot)
            offset = slot - self._block_start
        return self._block[:, offset]

    def _fetch_block(self, start: int) -> None:
        """Materialise worker states for slots ``[start, start + block)``."""
        tracer = self.tracer
        if tracer is None:
            return self._fetch_block_impl(start)
        begin = time.perf_counter_ns()
        self._fetch_block_impl(start)
        tracer.accumulate(
            "engine.block_fetch",
            begin,
            counters={"slots": self._block_len},
            heuristic=self.scheduler.name,
        )

    def _fetch_block_impl(self, start: int) -> None:
        if self._shared_blocks is not None:
            # The source serves aligned windows shared by every engine of a
            # multi-heuristic pass; the window containing *start* may begin
            # earlier (the caller recomputes the block-relative offset).
            window_start, data = self._shared_blocks.window(start)
            self._install_block(window_start, data)
            return
        if self.trace is not None:
            horizon = self.trace.horizon
            if horizon < 1:
                raise SimulationError("availability trace is empty")
            if start >= horizon:
                raise SimulationError(
                    f"availability trace ends at slot {horizon} but the run "
                    f"reached slot {start}; provide a longer trace or lower max_slots"
                )
            length = min(self.block_size, horizon - start, self.max_slots - start)
            block = np.asarray(self.trace.block(start, start + length), dtype=np.int8)
            if block.shape != (self.platform.num_processors, length):
                raise SimulationError(
                    f"availability source returned a block of shape {block.shape}, "
                    f"expected {(self.platform.num_processors, length)}"
                )
        else:
            if self._block is not None and start != self._block_start + self._block_len:
                raise SimulationError(
                    "model-driven availability must be consumed sequentially "
                    f"(asked for slot {start}, expected "
                    f"{self._block_start + self._block_len})"
                )
            length = min(self.block_size, self.max_slots - start)
            block = np.empty((self.platform.num_processors, length), dtype=np.int8)
            if start == 0:
                for worker_id, processor in enumerate(self.platform.processors):
                    model = processor.availability
                    model.reset()
                    rng = self._availability_rngs[worker_id]
                    state = model.initial_state(rng)
                    block[worker_id, 0] = int(state)
                    if length > 1:
                        block[worker_id, 1:] = self._sample_worker(
                            model, 1, length - 1, rng, state
                        )
            else:
                # The base chains continue from the *raw* sampled states: a
                # hazard overlay is an exogenous forcing that does not alter
                # the workers' intrinsic processes.  This also keeps the
                # realisation independent of window boundaries (the bank
                # trace chunks differently), so every consumption path stays
                # bit-identical.
                previous = (
                    self._base_last_column
                    if self._hazard is not None
                    else self._block[:, -1]
                )
                for worker_id, processor in enumerate(self.platform.processors):
                    block[worker_id] = self._sample_worker(
                        processor.availability,
                        start,
                        length,
                        self._availability_rngs[worker_id],
                        ProcessorState(int(previous[worker_id])),
                    )
            if self._hazard is not None:
                # Platform-level overlay (correlated outages, churn): applied
                # once per freshly sampled window, before the per-column
                # companions are derived, so schedulers, kernels and metrics
                # all see the overlaid states.
                if start == 0:
                    self._hazard.reset(self._hazard_rng)
                self._base_last_column = block[:, -1].copy()
                self._hazard.overlay(start, block)
        last_column = None if self._block is None else self._block[:, -1]
        self._install_block(start, BlockData(block, last_column))

    def _install_block(self, start: int, data: BlockData) -> None:
        self._block = data.block
        self._block_start = start
        self._block_len = data.length
        self._block_down = data.down
        self._block_same = data.same
        self._block_changes = data.changes
        self._block_data = data
        if self.metrics is not None:
            # Every availability block of a run funnels through here (model
            # sampling, trace replay and shared windows alike), so this is
            # where the collector sees exact pool states.
            self.metrics.on_block(start, data.block)

    def _frozen_run(self, offset: int) -> int:
        """Slots after block-relative *offset* whose column equals column *offset*."""
        changes = self._block_changes
        index = int(np.searchsorted(changes, offset, side="right"))
        next_change = int(changes[index]) if index < changes.size else self._block_len
        return next_change - offset - 1

    def _sample_worker(self, model, start_slot, horizon, rng, current) -> np.ndarray:
        if self.sampler != "perslot":
            return model.sample_block(start_slot, horizon, rng, current=current)
        # Legacy driver: the base class's slot-by-slot next_state loop,
        # invoked unbound so model overrides cannot shadow the reference
        # semantics the "perslot" mode exists to compare against.
        return AvailabilityModel.sample_block(
            model, start_slot, horizon, rng, current=current
        )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute the run and return its :class:`SimulationResult`.

        Equivalent to driving :meth:`steps` with the engine's scheduler:
        every yielded observation is answered with ``scheduler.select``.
        """
        stepper = self._drive()
        select = self.scheduler.select
        configuration: Optional[Configuration] = None
        try:
            while True:
                configuration = select(stepper.send(configuration))
        except StopIteration as stop:
            return stop.value

    def steps(
        self,
    ) -> Generator[Observation, Optional[Configuration], SimulationResult]:
        """The run as an explicit decision-point iterator.

        Yields an :class:`~repro.scheduling.base.Observation` at every slot
        on which the scheduler would be consulted (for schedulers declaring
        the passive contract that means rebuild points only; for the rest,
        every slot) and expects a :class:`Configuration` — or ``None`` to
        keep the current one — to be sent back.  The sent configuration
        goes through the same validation as a scheduler's.  When the run
        finishes, the generator returns its :class:`SimulationResult` (the
        ``value`` of the final ``StopIteration``, also stored in
        :attr:`last_result`).

        The engine's scheduler still participates: it is bound and drives
        the carried-over configuration between decision points.  External
        steppers (an RL agent, a search procedure) simply override what
        happens at the decision points themselves.
        """
        return self._drive()

    def _drive(
        self, cooperative: bool = False
    ) -> Generator[Observation, Optional[Configuration], SimulationResult]:
        platform = self.platform
        application = self.application
        tprog, tdata = platform.tprog, platform.tdata
        ncom = platform.ncom
        num_tasks = application.tasks_per_iteration

        self.scheduler.bind(platform, application, self.analysis, self._scheduler_rng)
        self._comm.reset()
        self._runtimes = [WorkerRuntime(worker_id=q) for q in range(platform.num_processors)]
        runtimes = self._runtimes
        runtime_by_id = {runtime.worker_id: runtime for runtime in runtimes}
        self._block = None
        self._block_start = 0
        self._block_len = 0

        collector = self.metrics
        if collector is not None:
            collector.begin(tprog, tdata, self.max_slots, self.scheduler.name)

        # Hoisted like the collector: with tracing off every span site below
        # reduces to one predicted-not-taken branch.
        tracer = self.tracer
        heuristic_name = self.scheduler.name
        run_begin = time.perf_counter_ns() if tracer is not None else 0

        if self.record_activity:
            self.activity_matrix = np.full(
                (platform.num_processors, self.max_slots), ACTIVITY_NONE, dtype="<U1"
            )
            self.state_matrix = np.zeros(
                (platform.num_processors, self.max_slots), dtype=np.int8
            )

        # Schedulers that declare the passive contract let the engine pin
        # their decision on uneventful slots; fast-forwarding additionally
        # requires that no per-slot record (events/activity) is kept.
        contract = bool(getattr(self.scheduler, "passive_between_rebuilds", False))
        can_fast_forward = contract and not self.events.enabled and not self.record_activity
        # The kernel sampler synchronises only the *enrolled* workers'
        # runtime states per column: nothing in the engine reads the state
        # of a non-enrolled worker (observations and selection checks use
        # the raw state column; offline program-holder failures read the
        # block directly).  Newly enrolled workers are synchronised at the
        # configuration change that enrols them.
        kernel = self._kernel

        current_config = Configuration.empty()
        enrolled_runtimes: List[WorkerRuntime] = []
        enrolled_ids = np.empty(0, dtype=np.intp)
        iteration_index = 0
        iteration_start = 0
        progress = 0
        new_iteration = True

        records: List[IterationRecord] = [IterationRecord(index=0, start_slot=0)]
        total_restarts = 0
        total_config_changes = 0
        total_comm_slots = 0
        total_compute_slots = 0
        total_idle_slots = 0

        makespan: Optional[int] = None
        success = False
        # True whenever the previously *processed* slot's column is not the
        # one at ``rel - 1`` (start of run, or after an enrolled-only
        # fast-forward), so the per-column change shortcut must not be used.
        states_dirty = True

        slot = 0
        while slot < self.max_slots:
            rel = slot - self._block_start
            if self._block is None or rel >= self._block_len:
                if cooperative:
                    yield BLOCK_BOUNDARY  # type: ignore[misc]
                self._fetch_block(slot)
                rel = slot - self._block_start
            states = self._block[:, rel]
            if states_dirty or not self._block_same[rel]:
                for runtime in enrolled_runtimes if kernel else runtimes:
                    runtime.state = _STATE_OF_CODE[states[runtime.worker_id]]
                states_dirty = False
            if self.record_activity:
                self.state_matrix[:, slot] = states

            record = records[-1]

            # ---- 1. failures among enrolled workers --------------------
            failure = False
            if self._block_down[rel]:
                for worker_id in (states == _DOWN_CODE).nonzero()[0]:
                    runtime = runtimes[worker_id]
                    if (runtime.has_program or runtime.enrolled
                            or runtime.program_progress or runtime.data_received
                            or runtime.data_progress):
                        if runtime.enrolled:
                            failure = True
                            self.events.record(
                                slot, EventKind.WORKER_FAILED, worker=runtime.worker_id
                            )
                        runtime.on_down()
            if failure:
                if progress > 0 or not current_config.is_empty():
                    total_restarts += 1
                    record.restarts += 1
                    self.events.record(
                        slot, EventKind.ITERATION_RESTARTED, iteration=iteration_index
                    )
                progress = 0
                # Remove DOWN workers from the carried-over configuration.
                pruned = {
                    worker: tasks
                    for worker, tasks in current_config.items()
                    if not runtime_by_id[worker].is_down()
                }
                current_config = Configuration(pruned)
                enrolled_runtimes = [runtime_by_id[w] for w in current_config.workers]
                enrolled_ids = np.fromiter(
                    current_config.workers, dtype=np.intp, count=len(enrolled_runtimes)
                )

            # ---- 2. scheduler decision ---------------------------------
            # Contract schedulers return the carried-over configuration on
            # every slot where needs_new_configuration() is false; skip the
            # observation round-trip there.
            if contract and not (new_iteration or failure or current_config.is_empty()):
                new_config = current_config
            else:
                observation = Observation(
                    slot=slot,
                    states=states.copy(),
                    current_configuration=current_config,
                    iteration_index=iteration_index,
                    iteration_elapsed=slot - iteration_start,
                    progress=progress,
                    failure=failure,
                    new_iteration=new_iteration,
                    has_program=frozenset(
                        runtime.worker_id for runtime in runtimes if runtime.has_program
                    ),
                    data_received={
                        runtime.worker_id: runtime.data_received
                        for runtime in runtimes
                        if runtime.enrolled
                    },
                    comm_remaining={
                        runtime.worker_id: runtime.comm_slots_remaining(tprog, tdata)
                        for runtime in runtimes
                        if runtime.enrolled
                    },
                )
                new_config = yield observation
                if new_config is None:
                    new_config = current_config
                self._validate_selection(new_config, current_config, states, num_tasks)
            new_iteration = False

            # ---- 3. apply configuration change -------------------------
            if new_config != current_config:
                total_config_changes += 1
                record.configuration_changes += 1
                self.events.record(
                    slot,
                    EventKind.CONFIGURATION_CHANGED,
                    old=current_config.to_dict(),
                    new=new_config.to_dict(),
                )
                progress = 0  # tight coupling: any reconfiguration loses partial work
                old_workers = set(current_config.workers)
                new_workers = set(new_config.workers)
                for worker in old_workers - new_workers:
                    runtime_by_id[worker].on_unenroll()
                for worker in new_workers:
                    runtime = runtime_by_id[worker]
                    tasks = new_config.tasks_on(worker)
                    if worker in old_workers and runtime.enrolled:
                        runtime.on_reassign(tasks)
                    else:
                        runtime.on_enroll(tasks)
                    runtime.absorb_free_transfers(tprog, tdata)
                current_config = new_config
                enrolled_runtimes = [runtime_by_id[w] for w in current_config.workers]
                enrolled_ids = np.fromiter(
                    current_config.workers, dtype=np.intp, count=len(enrolled_runtimes)
                )
                if kernel:
                    # Newly enrolled workers may carry a stale state under
                    # the enrolled-only synchronisation; refresh the set.
                    for runtime in enrolled_runtimes:
                        runtime.state = _STATE_OF_CODE[states[runtime.worker_id]]

            # ---- 4. run the slot ---------------------------------------
            feasible = (
                not current_config.is_empty()
                and current_config.total_tasks() == num_tasks
            )
            if not feasible:
                total_idle_slots += 1
                record.idle_slots += 1
                self.events.record(slot, EventKind.IDLE, reason="no_feasible_configuration")
            else:
                comm_remaining = 0
                for runtime in enrolled_runtimes:
                    comm_remaining += runtime.comm_slots_remaining(tprog, tdata)
                if comm_remaining and (
                    kernel
                    and can_fast_forward
                    and len(enrolled_runtimes) <= ncom
                ):
                    # ---- whole-phase jump (capacity surplus) ------------
                    # With a channel for every enrolled worker the sticky
                    # policy serves each needing UP worker on every slot,
                    # so the complete communication phase collapses to
                    # per-worker cumulative-UP searches over the block.
                    # Valid on failure slots too: the failure scan already
                    # pruned DOWN workers from the configuration, so the
                    # current column is DOWN-free for the enrolled set.
                    begin = time.perf_counter_ns() if tracer is not None else 0
                    advance, units, holders = comm_phase_span(
                        self._block,
                        enrolled_ids,
                        np.fromiter(
                            (
                                runtime.comm_slots_remaining(tprog, tdata)
                                for runtime in enrolled_runtimes
                            ),
                            dtype=np.int64,
                            count=len(enrolled_runtimes),
                        ),
                        rel,
                        self._block_len,
                    )
                    for index, runtime in enumerate(enrolled_runtimes):
                        used = int(units[index])
                        if used:
                            runtime.advance_communication(used, tprog, tdata)
                    self._comm.set_holders(enrolled_ids[holders])
                    if advance > 1:
                        # Column ``rel`` itself was covered by this slot's
                        # failure scan; batch the rest of the window.
                        self._apply_offline_failures(rel, advance - 1, runtimes)
                    total_comm_slots += advance
                    record.communication_slots += advance
                    slot += advance - 1
                    states_dirty = True
                    if tracer is not None:
                        tracer.accumulate(
                            "engine.comm_phase",
                            begin,
                            counters={"advance": advance},
                            heuristic=heuristic_name,
                        )
                elif comm_remaining:
                    granted = self._comm.allocate(enrolled_runtimes, tprog=tprog, tdata=tdata)
                    served = self._comm.serve(
                        runtime_by_id, granted, tprog=tprog, tdata=tdata
                    )
                    total_comm_slots += 1
                    record.communication_slots += 1
                    if served:
                        self.events.record(slot, EventKind.COMMUNICATION, served=served)
                    if self.record_activity:
                        for runtime in enrolled_runtimes:
                            kind = served.get(runtime.worker_id)
                            if kind == "program":
                                self.activity_matrix[runtime.worker_id, slot] = ACTIVITY_PROGRAM
                            elif kind == "data":
                                self.activity_matrix[runtime.worker_id, slot] = ACTIVITY_DATA
                            else:
                                self.activity_matrix[runtime.worker_id, slot] = ACTIVITY_IDLE
                    if can_fast_forward and not failure:
                        # ---- fast-forward the communication phase -------
                        # While no *relevant* worker changes state the slot
                        # structure is fixed: every slot is a comm slot
                        # until the transfers complete, and the sticky
                        # channel allocation only changes when a transfer
                        # finishes.  Drain whole grant intervals event by
                        # event.  The scan window is bounded by the work
                        # actually left (plus one slot of slack for stalls).
                        begin = time.perf_counter_ns() if tracer is not None else 0
                        if kernel:
                            nc_span = frozen_span(
                                self._block_data.ensure_next_change(),
                                enrolled_ids,
                                rel,
                            )
                            span = min(
                                self._block_len - rel - 1, comm_remaining, nc_span
                            )
                        else:
                            span, _ = self._scan_uneventful(
                                rel, enrolled_ids,
                                min(comm_remaining + 1, _IDLE_SCAN_LIMIT),
                            )
                        consumed = self._comm.drain(
                            enrolled_runtimes, span, tprog=tprog, tdata=tdata
                        )
                        if consumed:
                            self._apply_offline_failures(rel, consumed, runtimes)
                            total_comm_slots += consumed
                            record.communication_slots += consumed
                            slot += consumed
                            states_dirty = True
                            if tracer is not None:
                                tracer.accumulate(
                                    "engine.comm_drain",
                                    begin,
                                    counters={"advance": consumed},
                                    heuristic=heuristic_name,
                                )
                else:
                    workload = current_config.workload(platform)
                    all_up = all(runtime.is_up() for runtime in enrolled_runtimes)
                    if all_up:
                        progress += 1
                        total_compute_slots += 1
                        record.computation_slots += 1
                        self.events.record(
                            slot,
                            EventKind.COMPUTATION,
                            progress=progress,
                            workload=workload,
                        )
                        if self.record_activity:
                            for runtime in enrolled_runtimes:
                                self.activity_matrix[runtime.worker_id, slot] = ACTIVITY_COMPUTE
                    else:
                        total_idle_slots += 1
                        record.idle_slots += 1
                        self.events.record(slot, EventKind.IDLE, reason="worker_reclaimed")
                        if self.record_activity:
                            for runtime in enrolled_runtimes:
                                self.activity_matrix[runtime.worker_id, slot] = ACTIVITY_IDLE

                    # ---- iteration completion ---------------------------
                    if progress >= workload and all_up:
                        record.end_slot = slot
                        self.events.record(
                            slot, EventKind.ITERATION_COMPLETED, iteration=iteration_index
                        )
                        iteration_index += 1
                        if iteration_index >= application.iterations:
                            makespan = slot + 1
                            success = True
                            self.events.record(slot, EventKind.RUN_COMPLETED, makespan=makespan)
                            break
                        # Start the next iteration at the next slot.
                        iteration_start = slot + 1
                        progress = 0
                        new_iteration = True
                        records.append(
                            IterationRecord(index=iteration_index, start_slot=slot + 1)
                        )
                        for runtime in enrolled_runtimes:
                            runtime.on_new_iteration()
                            runtime.absorb_free_transfers(tprog, tdata)
                    elif can_fast_forward and not failure:
                        # ---- fast-forward uneventful compute/idle slots --
                        begin = time.perf_counter_ns() if tracer is not None else 0
                        if kernel:
                            # Jump straight over UP/RECLAIMED flicker to the
                            # first enrolled DOWN transition, the iteration's
                            # completing slot, or the block end — whichever
                            # comes first — splitting the consumed span into
                            # compute (all-UP) and idle columns.
                            advance, progressed = compute_span(
                                self._block,
                                enrolled_ids,
                                rel,
                                self._block_len,
                                workload - progress,
                            )
                            if advance > 0:
                                self._apply_offline_failures(rel, advance, runtimes)
                                idled = advance - progressed
                                if progressed:
                                    progress += progressed
                                    total_compute_slots += progressed
                                    record.computation_slots += progressed
                                if idled:
                                    total_idle_slots += idled
                                    record.idle_slots += idled
                                slot += advance
                                states_dirty = True
                                if tracer is not None:
                                    tracer.accumulate(
                                        "engine.fast_forward",
                                        begin,
                                        counters={"advance": advance},
                                        heuristic=heuristic_name,
                                    )
                        else:
                            advance, clean = self._scan_uneventful(
                                rel,
                                enrolled_ids,
                                workload - progress if all_up else _IDLE_SCAN_LIMIT,
                            )
                            if advance > 0:
                                self._apply_offline_failures(rel, advance, runtimes)
                                if all_up:
                                    progress += advance
                                    total_compute_slots += advance
                                    record.computation_slots += advance
                                else:
                                    total_idle_slots += advance
                                    record.idle_slots += advance
                                slot += advance
                                states_dirty = not clean
                                if tracer is not None:
                                    tracer.accumulate(
                                        "engine.fast_forward",
                                        begin,
                                        counters={"advance": advance},
                                        heuristic=heuristic_name,
                                    )
            if collector is not None:
                # ``slot`` is now the last slot this loop pass covered
                # (fast-forward branches advance it past the entry slot).
                collector.on_step(
                    slot, enrolled_runtimes, enrolled_ids, total_compute_slots, iteration_index
                )
            slot += 1

        if not success:
            self.events.record(self.max_slots - 1, EventKind.RUN_ABORTED, reason="max_slots")

        if self.record_activity and makespan is not None:
            self.activity_matrix = self.activity_matrix[:, :makespan]
            self.state_matrix = self.state_matrix[:, :makespan]

        if collector is not None:
            collector.finish(
                makespan if success else self.max_slots,
                enrolled_runtimes,
                enrolled_ids,
                total_compute_slots,
                iteration_index,
            )

        if tracer is not None:
            # One aggregated record per in-loop phase (comm, drain,
            # fast-forward, block fetch) plus the allocator/analysis spans
            # accumulated on this thread during the run, then the container.
            tracer.flush_accumulated()
            tracer.record(
                "engine.run",
                run_begin,
                heuristic=heuristic_name,
                sampler=self.sampler,
                slots=makespan if success else self.max_slots,
                success=success,
            )

        self.last_result = SimulationResult(
            scheduler=self.scheduler.name,
            success=success,
            makespan=makespan,
            completed_iterations=iteration_index,
            requested_iterations=application.iterations,
            max_slots=self.max_slots,
            iterations=records,
            total_restarts=total_restarts,
            total_configuration_changes=total_config_changes,
            communication_slots=total_comm_slots,
            computation_slots=total_compute_slots,
            idle_slots=total_idle_slots,
        )
        return self.last_result

    # ------------------------------------------------------------------
    def _scan_uneventful(
        self,
        rel: int,
        enrolled_ids: np.ndarray,
        limit: int,
    ) -> tuple:
        """Slots after block-relative *rel* that provably replay this slot's outcome.

        A subsequent slot is uneventful as long as every *enrolled* worker
        holds exactly its current state: under the passive-scheduler
        contract nothing else in the engine can change on such a slot, so
        its bookkeeping is a pure repetition of the current slot's.
        (Non-enrolled program holders crashing inside the window are handled
        separately by :meth:`_apply_offline_failures` — they do not stop the
        fast-forward.)

        Returns ``(advance, clean)`` where *clean* says whether the skipped
        slots all carried a column identical to the current one (so the
        engine's column-change shortcut stays valid after the jump).

        The scan never crosses the prefetched block boundary and is capped
        at *limit* slots (the completing slot of an iteration, which has
        extra bookkeeping, is always left to the per-slot path; idle
        stretches are re-scanned every :data:`_IDLE_SCAN_LIMIT` slots).
        """
        span = min(self._block_len - rel - 1, limit - 1)
        if span <= 0:
            return 0, True
        # Fast path: the whole-platform column is frozen for long enough.
        frozen = self._frozen_run(rel)
        if frozen >= span:
            return span, True
        block = self._block
        column = block[:, rel]
        window = block[:, rel + 1: rel + 1 + span]
        uneventful = np.all(
            window[enrolled_ids] == column[enrolled_ids, None], axis=0
        )
        eventful = np.flatnonzero(~uneventful)
        advance = int(eventful[0]) if eventful.size else int(uneventful.size)
        return advance, advance <= frozen

    def _apply_offline_failures(
        self, rel: int, advance: int, runtimes: Sequence[WorkerRuntime]
    ) -> None:
        """Apply DOWN transitions of non-enrolled program holders in a batch.

        Fast-forwarded windows only pin the states of *enrolled* workers.  A
        non-enrolled worker can still carry runtime state — exactly when it
        holds the program (un-enrolment and DOWN both wipe partial transfers
        and received data) — and losing it to a DOWN transition inside the
        window must be reflected.  Since such a worker takes no part in the
        window's slots, applying its ``on_down`` after the jump is
        equivalent to applying it at the precise slot.
        """
        holders = [
            runtime
            for runtime in runtimes
            if runtime.has_program and not runtime.enrolled
        ]
        if not holders:
            return
        window = self._block[:, rel + 1: rel + 1 + advance]
        rows = window[[runtime.worker_id for runtime in holders]]
        went_down = (rows == _DOWN_CODE).any(axis=1)
        for runtime, down in zip(holders, went_down):
            if down:
                runtime.on_down()

    # ------------------------------------------------------------------
    def _validate_selection(
        self,
        new_config: Configuration,
        current_config: Configuration,
        states: np.ndarray,
        num_tasks: int,
    ) -> None:
        """Sanity checks on the scheduler's decision (model rules of Sec. III-C)."""
        if new_config.is_empty():
            return
        if new_config.total_tasks() != num_tasks:
            raise SchedulingError(
                f"scheduler {self.scheduler.name!r} returned a configuration with "
                f"{new_config.total_tasks()} tasks instead of {num_tasks}"
            )
        current_workers = set(current_config.workers)
        for worker, tasks in new_config.items():
            if worker < 0 or worker >= self.platform.num_processors:
                raise SchedulingError(
                    f"scheduler {self.scheduler.name!r} enrolled unknown worker {worker}"
                )
            if tasks > self.platform.processor(worker).capacity:
                raise SchedulingError(
                    f"scheduler {self.scheduler.name!r} assigned {tasks} tasks to worker "
                    f"{worker} whose capacity is {self.platform.processor(worker).capacity}"
                )
            state = int(states[worker])
            if state == int(DOWN):
                raise SchedulingError(
                    f"scheduler {self.scheduler.name!r} enrolled DOWN worker {worker}"
                )
            if worker not in current_workers and state != int(UP):
                raise SchedulingError(
                    f"scheduler {self.scheduler.name!r} newly enrolled worker {worker} "
                    "which is not UP"
                )


def simulate(
    platform: Platform,
    application: Application,
    scheduler: Scheduler,
    *,
    seed: SeedLike = None,
    max_slots: int = DEFAULT_MAX_SLOTS,
    trace: Optional[AvailabilityTrace] = None,
    analysis: Optional[AnalysisContext] = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    sampler: str = "block",
    record_events: bool = False,
    record_activity: bool = False,
    metrics=None,
    tracer=None,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`SimulationEngine`."""
    engine = SimulationEngine(
        platform,
        application,
        scheduler,
        seed=seed,
        max_slots=max_slots,
        trace=trace,
        analysis=analysis,
        block_size=block_size,
        sampler=sampler,
        record_events=record_events,
        record_activity=record_activity,
        metrics=metrics,
        tracer=tracer,
    )
    return engine.run()
