"""The time-slot simulation engine.

Implements the execution model of Section III faithfully:

* 3-state workers; DOWN destroys program, data and the iteration's partial
  computation; RECLAIMED merely suspends;
* bounded multi-port master: at most ``ncom`` simultaneous transfers;
* an iteration is a communication phase (program once per enrolment + one
  data message per assigned task) followed by a computation phase needing
  ``W = max_q x_q w_q`` slots during which *all* enrolled workers are
  simultaneously UP;
* changing the configuration (for any reason) loses the iteration's partial
  computation; un-enrolled workers keep the program but lose received data;
* the run completes when the requested number of iterations is done, or is
  declared failed when the slot cap is hit.

The engine is deliberately scheduler-agnostic and availability-agnostic: the
scheduler is any :class:`~repro.scheduling.base.Scheduler`, and availability
either comes from the processors' stochastic models (sampled on the fly with
a seeded generator) or from a fixed :class:`AvailabilityTrace` (replay).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.cache import AnalysisContext
from repro.application.application import Application
from repro.application.configuration import Configuration
from repro.availability.trace import AvailabilityTrace
from repro.exceptions import SchedulingError, SimulationError
from repro.platform.platform import Platform
from repro.scheduling.base import Observation, Scheduler
from repro.simulation.comm import CommunicationManager
from repro.simulation.events import EventKind, EventLog
from repro.simulation.results import IterationRecord, SimulationResult
from repro.simulation.state import WorkerRuntime
from repro.types import DOWN, UP, ProcessorState
from repro.utils.rng import SeedLike, as_generator, spawn_generators

__all__ = ["SimulationEngine", "simulate"]

#: Default makespan cap, matching the paper's 1,000,000-slot limit.
DEFAULT_MAX_SLOTS = 1_000_000

#: Activity codes recorded per worker per slot when ``record_activity`` is on.
ACTIVITY_NONE = " "
ACTIVITY_IDLE = "I"
ACTIVITY_PROGRAM = "P"
ACTIVITY_DATA = "D"
ACTIVITY_COMPUTE = "C"


class SimulationEngine:
    """Simulate one application run under one scheduler.

    Parameters
    ----------
    platform, application:
        The models of Section III.
    scheduler:
        The on-line scheduler driving configuration choices.
    seed:
        Seed for all stochastic elements of the run (availability sampling
        and scheduler tie-breaking).  Ignored for availability when *trace*
        is given.
    max_slots:
        Makespan cap; the run is declared failed when it is reached.
    trace:
        Optional fixed availability trace to replay instead of sampling from
        the processors' models.  Must cover at least ``max_slots`` slots or
        the run fails with :class:`SimulationError` when it runs off the end.
    analysis:
        Optional pre-built :class:`AnalysisContext`; sharing one across runs
        on the same platform (different schedulers / trials) avoids
        recomputing the Markov machinery.
    record_events:
        Keep a structured event log (off by default).
    record_activity:
        Keep per-worker per-slot activity and state matrices, enabling Gantt
        rendering (off by default; memory grows with the makespan).
    """

    def __init__(
        self,
        platform: Platform,
        application: Application,
        scheduler: Scheduler,
        *,
        seed: SeedLike = None,
        max_slots: int = DEFAULT_MAX_SLOTS,
        trace: Optional[AvailabilityTrace] = None,
        analysis: Optional[AnalysisContext] = None,
        record_events: bool = False,
        record_activity: bool = False,
    ) -> None:
        if max_slots < 1:
            raise SimulationError(f"max_slots must be >= 1, got {max_slots}")
        platform.validate_for_tasks(application.tasks_per_iteration)
        if trace is not None and trace.num_processors != platform.num_processors:
            raise SimulationError(
                f"trace has {trace.num_processors} processors but the platform has "
                f"{platform.num_processors}"
            )
        self.platform = platform
        self.application = application
        self.scheduler = scheduler
        self.max_slots = int(max_slots)
        self.trace = trace
        self.analysis = analysis if analysis is not None else AnalysisContext(platform)
        self.events = EventLog(enabled=record_events)
        self.record_activity = bool(record_activity)

        root = as_generator(seed)
        # Independent streams: one per worker for availability, one for the scheduler.
        streams = spawn_generators(int(root.integers(0, 2**62)), platform.num_processors + 1)
        self._availability_rngs = streams[:-1]
        self._scheduler_rng = streams[-1]

        self._comm = CommunicationManager(platform.ncom)
        self._runtimes: List[WorkerRuntime] = []
        self._states = np.zeros(platform.num_processors, dtype=np.int8)
        self.activity_matrix: Optional[np.ndarray] = None
        self.state_matrix: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Availability driving
    # ------------------------------------------------------------------
    def _initialise_states(self) -> None:
        if self.trace is not None:
            if self.trace.horizon < 1:
                raise SimulationError("availability trace is empty")
            self._states = self.trace.states[:, 0].astype(np.int8)
            return
        for worker_id, processor in enumerate(self.platform.processors):
            model = processor.availability
            model.reset()
            state = model.initial_state(self._availability_rngs[worker_id])
            self._states[worker_id] = int(state)

    def _advance_states(self, slot: int) -> None:
        if self.trace is not None:
            if slot >= self.trace.horizon:
                raise SimulationError(
                    f"availability trace ends at slot {self.trace.horizon} but the run "
                    f"reached slot {slot}; provide a longer trace or lower max_slots"
                )
            self._states = self.trace.states[:, slot].astype(np.int8)
            return
        for worker_id, processor in enumerate(self.platform.processors):
            current = ProcessorState(int(self._states[worker_id]))
            nxt = processor.availability.next_state(
                current, self._availability_rngs[worker_id]
            )
            self._states[worker_id] = int(nxt)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute the run and return its :class:`SimulationResult`."""
        platform = self.platform
        application = self.application
        tprog, tdata = platform.tprog, platform.tdata
        num_tasks = application.tasks_per_iteration

        self.scheduler.bind(platform, application, self.analysis, self._scheduler_rng)
        self._comm.reset()
        self._runtimes = [WorkerRuntime(worker_id=q) for q in range(platform.num_processors)]
        runtimes = self._runtimes
        runtime_by_id = {runtime.worker_id: runtime for runtime in runtimes}
        self._initialise_states()

        if self.record_activity:
            self.activity_matrix = np.full(
                (platform.num_processors, self.max_slots), ACTIVITY_NONE, dtype="<U1"
            )
            self.state_matrix = np.zeros(
                (platform.num_processors, self.max_slots), dtype=np.int8
            )

        current_config = Configuration.empty()
        iteration_index = 0
        iteration_start = 0
        progress = 0
        new_iteration = True

        records: List[IterationRecord] = [IterationRecord(index=0, start_slot=0)]
        total_restarts = 0
        total_config_changes = 0
        total_comm_slots = 0
        total_compute_slots = 0
        total_idle_slots = 0

        makespan: Optional[int] = None
        success = False

        for slot in range(self.max_slots):
            if slot > 0:
                self._advance_states(slot)
            states = self._states
            for runtime in runtimes:
                runtime.state = ProcessorState(int(states[runtime.worker_id]))
            if self.record_activity:
                self.state_matrix[:, slot] = states

            record = records[-1]

            # ---- 1. failures among enrolled workers --------------------
            failure = False
            for runtime in runtimes:
                if runtime.is_down() and (runtime.has_program or runtime.enrolled
                                          or runtime.program_progress or runtime.data_received
                                          or runtime.data_progress):
                    if runtime.enrolled:
                        failure = True
                        self.events.record(
                            slot, EventKind.WORKER_FAILED, worker=runtime.worker_id
                        )
                    runtime.on_down()
            if failure:
                if progress > 0 or not current_config.is_empty():
                    total_restarts += 1
                    record.restarts += 1
                    self.events.record(
                        slot, EventKind.ITERATION_RESTARTED, iteration=iteration_index
                    )
                progress = 0
                # Remove DOWN workers from the carried-over configuration.
                pruned = {
                    worker: tasks
                    for worker, tasks in current_config.items()
                    if not runtime_by_id[worker].is_down()
                }
                current_config = Configuration(pruned)

            # ---- 2. scheduler decision ---------------------------------
            observation = Observation(
                slot=slot,
                states=states.copy(),
                current_configuration=current_config,
                iteration_index=iteration_index,
                iteration_elapsed=slot - iteration_start,
                progress=progress,
                failure=failure,
                new_iteration=new_iteration,
                has_program=frozenset(
                    runtime.worker_id for runtime in runtimes if runtime.has_program
                ),
                data_received={
                    runtime.worker_id: runtime.data_received
                    for runtime in runtimes
                    if runtime.enrolled
                },
                comm_remaining={
                    runtime.worker_id: runtime.comm_slots_remaining(tprog, tdata)
                    for runtime in runtimes
                    if runtime.enrolled
                },
            )
            new_config = self.scheduler.select(observation)
            if new_config is None:
                new_config = current_config
            self._validate_selection(new_config, current_config, states, num_tasks)
            new_iteration = False

            # ---- 3. apply configuration change -------------------------
            if new_config != current_config:
                total_config_changes += 1
                record.configuration_changes += 1
                self.events.record(
                    slot,
                    EventKind.CONFIGURATION_CHANGED,
                    old=current_config.to_dict(),
                    new=new_config.to_dict(),
                )
                progress = 0  # tight coupling: any reconfiguration loses partial work
                old_workers = set(current_config.workers)
                new_workers = set(new_config.workers)
                for worker in old_workers - new_workers:
                    runtime_by_id[worker].on_unenroll()
                for worker in new_workers:
                    runtime = runtime_by_id[worker]
                    tasks = new_config.tasks_on(worker)
                    if worker in old_workers and runtime.enrolled:
                        runtime.on_reassign(tasks)
                    else:
                        runtime.on_enroll(tasks)
                    runtime.absorb_free_transfers(tprog, tdata)
                current_config = new_config

            # ---- 4. run the slot ---------------------------------------
            enrolled_runtimes = [runtime_by_id[w] for w in current_config.workers]
            feasible = (
                not current_config.is_empty()
                and current_config.total_tasks() == num_tasks
            )
            if not feasible:
                total_idle_slots += 1
                record.idle_slots += 1
                self.events.record(slot, EventKind.IDLE, reason="no_feasible_configuration")
            else:
                comm_needed = any(
                    runtime.comm_slots_remaining(tprog, tdata) > 0
                    for runtime in enrolled_runtimes
                )
                if comm_needed:
                    granted = self._comm.allocate(enrolled_runtimes, tprog=tprog, tdata=tdata)
                    served = self._comm.serve(
                        runtime_by_id, granted, tprog=tprog, tdata=tdata
                    )
                    total_comm_slots += 1
                    record.communication_slots += 1
                    if served:
                        self.events.record(slot, EventKind.COMMUNICATION, served=served)
                    if self.record_activity:
                        for runtime in enrolled_runtimes:
                            kind = served.get(runtime.worker_id)
                            if kind == "program":
                                self.activity_matrix[runtime.worker_id, slot] = ACTIVITY_PROGRAM
                            elif kind == "data":
                                self.activity_matrix[runtime.worker_id, slot] = ACTIVITY_DATA
                            else:
                                self.activity_matrix[runtime.worker_id, slot] = ACTIVITY_IDLE
                else:
                    all_up = all(runtime.is_up() for runtime in enrolled_runtimes)
                    if all_up:
                        progress += 1
                        total_compute_slots += 1
                        record.computation_slots += 1
                        self.events.record(
                            slot,
                            EventKind.COMPUTATION,
                            progress=progress,
                            workload=current_config.workload(self.platform),
                        )
                        if self.record_activity:
                            for runtime in enrolled_runtimes:
                                self.activity_matrix[runtime.worker_id, slot] = ACTIVITY_COMPUTE
                    else:
                        total_idle_slots += 1
                        record.idle_slots += 1
                        self.events.record(slot, EventKind.IDLE, reason="worker_reclaimed")
                        if self.record_activity:
                            for runtime in enrolled_runtimes:
                                self.activity_matrix[runtime.worker_id, slot] = ACTIVITY_IDLE

                    # ---- iteration completion ---------------------------
                    if progress >= current_config.workload(self.platform) and all_up:
                        record.end_slot = slot
                        self.events.record(
                            slot, EventKind.ITERATION_COMPLETED, iteration=iteration_index
                        )
                        iteration_index += 1
                        if iteration_index >= application.iterations:
                            makespan = slot + 1
                            success = True
                            self.events.record(slot, EventKind.RUN_COMPLETED, makespan=makespan)
                            break
                        # Start the next iteration at the next slot.
                        iteration_start = slot + 1
                        progress = 0
                        new_iteration = True
                        records.append(
                            IterationRecord(index=iteration_index, start_slot=slot + 1)
                        )
                        for runtime in enrolled_runtimes:
                            runtime.on_new_iteration()
                            runtime.absorb_free_transfers(tprog, tdata)

        if not success:
            self.events.record(self.max_slots - 1, EventKind.RUN_ABORTED, reason="max_slots")

        if self.record_activity and makespan is not None:
            self.activity_matrix = self.activity_matrix[:, :makespan]
            self.state_matrix = self.state_matrix[:, :makespan]

        return SimulationResult(
            scheduler=self.scheduler.name,
            success=success,
            makespan=makespan,
            completed_iterations=iteration_index,
            requested_iterations=application.iterations,
            max_slots=self.max_slots,
            iterations=records,
            total_restarts=total_restarts,
            total_configuration_changes=total_config_changes,
            communication_slots=total_comm_slots,
            computation_slots=total_compute_slots,
            idle_slots=total_idle_slots,
        )

    # ------------------------------------------------------------------
    def _validate_selection(
        self,
        new_config: Configuration,
        current_config: Configuration,
        states: np.ndarray,
        num_tasks: int,
    ) -> None:
        """Sanity checks on the scheduler's decision (model rules of Sec. III-C)."""
        if new_config.is_empty():
            return
        if new_config.total_tasks() != num_tasks:
            raise SchedulingError(
                f"scheduler {self.scheduler.name!r} returned a configuration with "
                f"{new_config.total_tasks()} tasks instead of {num_tasks}"
            )
        current_workers = set(current_config.workers)
        for worker, tasks in new_config.items():
            if worker < 0 or worker >= self.platform.num_processors:
                raise SchedulingError(
                    f"scheduler {self.scheduler.name!r} enrolled unknown worker {worker}"
                )
            if tasks > self.platform.processor(worker).capacity:
                raise SchedulingError(
                    f"scheduler {self.scheduler.name!r} assigned {tasks} tasks to worker "
                    f"{worker} whose capacity is {self.platform.processor(worker).capacity}"
                )
            state = int(states[worker])
            if state == int(DOWN):
                raise SchedulingError(
                    f"scheduler {self.scheduler.name!r} enrolled DOWN worker {worker}"
                )
            if worker not in current_workers and state != int(UP):
                raise SchedulingError(
                    f"scheduler {self.scheduler.name!r} newly enrolled worker {worker} "
                    "which is not UP"
                )


def simulate(
    platform: Platform,
    application: Application,
    scheduler: Scheduler,
    *,
    seed: SeedLike = None,
    max_slots: int = DEFAULT_MAX_SLOTS,
    trace: Optional[AvailabilityTrace] = None,
    analysis: Optional[AnalysisContext] = None,
    record_events: bool = False,
    record_activity: bool = False,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`SimulationEngine`."""
    engine = SimulationEngine(
        platform,
        application,
        scheduler,
        seed=seed,
        max_slots=max_slots,
        trace=trace,
        analysis=analysis,
        record_events=record_events,
        record_activity=record_activity,
    )
    return engine.run()
