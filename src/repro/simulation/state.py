"""Per-worker runtime state tracked by the simulation engine.

For every worker the engine keeps, besides the availability state of the
current slot, the information needed to apply the execution model of
Section III-C:

* whether the worker currently holds the application program (retained across
  iterations and un-enrolments, lost on DOWN);
* the progress of the in-flight program transfer (lost on DOWN and on
  un-enrolment: "any interrupted communication must be resumed from scratch");
* the number of complete task-data messages received for the current
  iteration and enrolment (lost on DOWN and on un-enrolment, reusable when the
  worker stays enrolled across a failure-triggered reallocation);
* the progress of the in-flight data-message transfer;
* the number of tasks currently assigned (``x_q``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.types import DOWN, RECLAIMED, UP, ProcessorState

__all__ = ["WorkerRuntime"]


@dataclass
class WorkerRuntime:
    """Mutable runtime record of one worker inside a simulation run."""

    worker_id: int
    state: ProcessorState = UP
    enrolled: bool = False
    assigned_tasks: int = 0
    has_program: bool = False
    program_progress: int = 0
    data_received: int = 0
    data_progress: int = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_up(self) -> bool:
        return self.state == UP

    def is_down(self) -> bool:
        return self.state == DOWN

    def is_reclaimed(self) -> bool:
        return self.state == RECLAIMED

    def program_slots_remaining(self, tprog: int) -> int:
        """Slots of program transfer still needed (0 if it holds the program)."""
        if self.has_program:
            return 0
        return max(tprog - self.program_progress, 0)

    def data_slots_remaining(self, tdata: int) -> int:
        """Slots of task-data transfer still needed for the assigned tasks."""
        missing_messages = max(self.assigned_tasks - self.data_received, 0)
        if missing_messages == 0:
            return 0
        return missing_messages * tdata - self.data_progress

    def comm_slots_remaining(self, tprog: int, tdata: int) -> int:
        """Total slots of master communication still needed by this worker.

        Flattened (rather than delegating to the two ``*_slots_remaining``
        helpers) because the simulation engine calls this on every
        communication slot for every enrolled worker.
        """
        if self.has_program:
            program = 0
        else:
            program = tprog - self.program_progress
            if program < 0:
                program = 0
        missing = self.assigned_tasks - self.data_received
        if missing <= 0:
            return program
        return program + missing * tdata - self.data_progress

    def ready_to_compute(self, tprog: int, tdata: int) -> bool:
        """Whether the worker holds the program and all data for its tasks."""
        return self.enrolled and self.comm_slots_remaining(tprog, tdata) == 0

    # ------------------------------------------------------------------
    # Transitions driven by the engine
    # ------------------------------------------------------------------
    def on_down(self) -> None:
        """Apply a DOWN transition: program, data and in-flight transfers are lost."""
        self.has_program = False
        self.program_progress = 0
        self.data_received = 0
        self.data_progress = 0
        self.enrolled = False
        self.assigned_tasks = 0

    def on_unenroll(self) -> None:
        """Remove the worker from the configuration.

        The program is kept (if complete), but partially received program
        slots, received data messages and partial data transfers are lost —
        they must be resent from scratch upon re-enrolment.
        """
        self.enrolled = False
        self.assigned_tasks = 0
        self.program_progress = 0
        self.data_received = 0
        self.data_progress = 0

    def on_enroll(self, tasks: int) -> None:
        """(Re-)enrol the worker with *tasks* assigned tasks.

        Any previously received data is discarded (a newly enrolled worker
        must receive all its task data), but a complete program copy is kept.
        """
        if tasks <= 0:
            raise ValueError(f"tasks must be >= 1 to enroll a worker, got {tasks}")
        self.enrolled = True
        self.assigned_tasks = int(tasks)
        self.data_received = 0
        self.data_progress = 0
        self.program_progress = 0

    def on_reassign(self, tasks: int) -> None:
        """Change the task count of a continuously-enrolled worker.

        Received data messages are reusable up to the new task count
        (Section VI: a worker that has not become DOWN "can reuse that data
        if the scheduler reassigns tasks to it").
        """
        if tasks <= 0:
            raise ValueError(f"tasks must be >= 1 to reassign a worker, got {tasks}")
        self.enrolled = True
        self.assigned_tasks = int(tasks)
        if self.data_received > tasks:
            self.data_received = int(tasks)
            self.data_progress = 0

    def on_new_iteration(self) -> None:
        """Reset per-iteration data state: every iteration needs fresh task data."""
        self.data_received = 0
        self.data_progress = 0

    # ------------------------------------------------------------------
    # Communication progress
    # ------------------------------------------------------------------
    def receive_communication_slot(self, tprog: int, tdata: int) -> str:
        """Advance this worker's transfer by one slot; return ``"program"`` or ``"data"``.

        The program is always transferred before task data (a worker cannot
        use data without the program anyway).  Degenerate zero-length
        transfers (``Tprog == 0`` or ``Tdata == 0``) are completed instantly
        by the engine before channel allocation and never reach this method.
        """
        if self.program_slots_remaining(tprog) > 0:
            self.program_progress += 1
            if self.program_progress >= tprog:
                self.has_program = True
                self.program_progress = 0
            return "program"
        if self.data_slots_remaining(tdata) > 0:
            self.data_progress += 1
            if self.data_progress >= tdata:
                self.data_received += 1
                self.data_progress = 0
            return "data"
        raise RuntimeError(
            f"worker {self.worker_id} was granted a communication slot but needs none"
        )

    def advance_communication(self, units: int, tprog: int, tdata: int) -> None:
        """Apply *units* consecutive communication slots to this worker at once.

        Exactly equivalent to *units* successive
        :meth:`receive_communication_slot` calls (program first, then data
        messages), collapsed into O(1) arithmetic so the engine's
        communication fast-forward can batch a whole grant interval.
        *units* must not exceed :meth:`comm_slots_remaining`.
        """
        if units <= 0:
            return
        program = self.program_slots_remaining(tprog)
        if program > 0:
            take = units if units < program else program
            self.program_progress += take
            units -= take
            if self.program_progress >= tprog:
                self.has_program = True
                self.program_progress = 0
        if units > 0:
            total = self.data_progress + units
            self.data_received += total // tdata
            self.data_progress = total % tdata

    def absorb_free_transfers(self, tprog: int, tdata: int) -> None:
        """Complete any zero-duration transfers (``Tprog == 0`` / ``Tdata == 0``).

        Called by the engine right after (re-)enrolment so that degenerate
        platforms (no communication cost) behave as if messages arrive
        instantly, matching the off-line model with ``Tprog = Tdata = 0``.
        """
        if not self.enrolled:
            return
        if tprog == 0:
            self.has_program = True
            self.program_progress = 0
        if tdata == 0:
            self.data_received = self.assigned_tasks
            self.data_progress = 0
