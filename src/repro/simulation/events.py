"""Structured event log of a simulation run.

Event recording is optional (``record_events=True`` on the engine): it is
useful for debugging, for the worked-example walkthrough, and for rendering
Figure-1 style Gantt charts, but it is disabled in the experiment campaigns
to keep memory usage flat.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["EventKind", "SimulationEvent", "EventLog"]


class EventKind(enum.Enum):
    """Kinds of events recorded by the engine."""

    CONFIGURATION_CHANGED = "configuration_changed"
    WORKER_FAILED = "worker_failed"
    ITERATION_RESTARTED = "iteration_restarted"
    ITERATION_COMPLETED = "iteration_completed"
    COMMUNICATION = "communication"
    COMPUTATION = "computation"
    IDLE = "idle"
    RUN_COMPLETED = "run_completed"
    RUN_ABORTED = "run_aborted"


@dataclass(frozen=True)
class SimulationEvent:
    """One recorded event: slot, kind and free-form details."""

    slot: int
    kind: EventKind
    details: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Event(t={self.slot}, {self.kind.value}, {self.details})"


class EventLog:
    """Append-only list of events with small query helpers."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: List[SimulationEvent] = []

    def record(self, slot: int, kind: EventKind, **details: Any) -> None:
        if not self.enabled:
            return
        self._events.append(SimulationEvent(slot=slot, kind=kind, details=details))

    # ------------------------------------------------------------------
    @property
    def events(self) -> List[SimulationEvent]:
        return list(self._events)

    def of_kind(self, kind: EventKind) -> List[SimulationEvent]:
        return [event for event in self._events if event.kind == kind]

    def count(self, kind: EventKind) -> int:
        return sum(1 for event in self._events if event.kind == kind)

    def last(self, kind: Optional[EventKind] = None) -> Optional[SimulationEvent]:
        if kind is None:
            return self._events[-1] if self._events else None
        for event in reversed(self._events):
            if event.kind == kind:
                return event
        return None

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)
