"""One-pass multi-heuristic simulation over a shared availability realisation.

The Section VII campaign evaluates many heuristics on the *same*
(scenario, trial) availability realisation.  Running them through separate
:class:`~repro.simulation.engine.SimulationEngine` instances repeats the
expensive, heuristic-independent work once per heuristic: sampling (or trace
decoding) the worker-state blocks and deriving their per-column companions
(DOWN mask, column-change mask, next-change table).

This module removes that duplication without changing a single result:

* :class:`SharedBlockSource` materialises availability in aligned windows —
  ``[k·B, (k+1)·B)`` for block size ``B`` — each wrapped in one
  :class:`~repro.simulation.kernels.BlockData` that every engine of the pass
  shares (masks and tables are computed once per window, not once per
  engine).  Windows come from a replay trace or are sampled from the
  platform's models with the engine's own RNG recipe, so the realisation is
  bit-identical to what a solo engine with the same seed would see.
* :class:`MultiHeuristicDriver` builds one engine per scheduler, all backed
  by the same source, and advances them in lockstep through the cooperative
  step iterator (:data:`~repro.simulation.engine.BLOCK_BOUNDARY`): each
  engine runs up to its next window boundary before the next engine is
  resumed, so the window working set stays small and already-consumed
  windows can be released.

Each engine still takes its own decisions (rebuilds, communication,
fast-forward spans diverge per heuristic), so the returned
:class:`~repro.simulation.results.SimulationResult` of every scheduler is
bit-identical to a sequential ``SimulationEngine.run()`` with the same seed
— pinned by ``tests/simulation/test_multirun.py``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.cache import AnalysisContext
from repro.application.application import Application
from repro.availability.trace import AvailabilityTrace
from repro.exceptions import SimulationError
from repro.platform.platform import Platform
from repro.scheduling.base import Scheduler
from repro.simulation.engine import (
    BLOCK_BOUNDARY,
    DEFAULT_BLOCK_SIZE,
    DEFAULT_MAX_SLOTS,
    SimulationEngine,
)
from repro.simulation.kernels import BlockData
from repro.simulation.results import SimulationResult
from repro.types import ProcessorState
from repro.utils.rng import SeedLike, derive_run_streams

__all__ = ["SharedBlockSource", "MultiHeuristicDriver"]


class SharedBlockSource:
    """Aligned availability windows, materialised once and shared by engines.

    Parameters
    ----------
    platform:
        The platform whose workers' states are served.
    trace:
        Optional replay trace (an :class:`AvailabilityTrace` or any object
        with ``num_processors``, ``horizon`` and ``block(start, stop)``).
        When absent, windows are sampled from the platform's availability
        models using the engine's per-worker stream recipe
        (:func:`~repro.utils.rng.derive_run_streams`), which makes the
        realisation bit-identical to a solo ``sampler="block"`` /
        ``sampler="kernel"`` engine run with the same *seed* — those
        samplers consume availability in exactly these aligned windows.
    seed:
        Seed of the sampled realisation (ignored when *trace* is given).
    block_size, max_slots:
        Must match the engines' parameters: window boundaries — and
        therefore the models' ``sample_block`` call sequence — depend on
        both.
    """

    def __init__(
        self,
        platform: Platform,
        *,
        trace: Optional[AvailabilityTrace] = None,
        seed: SeedLike = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        max_slots: int = DEFAULT_MAX_SLOTS,
    ) -> None:
        if block_size < 1:
            raise SimulationError(f"block_size must be >= 1, got {block_size}")
        if max_slots < 1:
            raise SimulationError(f"max_slots must be >= 1, got {max_slots}")
        if trace is not None and trace.num_processors != platform.num_processors:
            raise SimulationError(
                f"trace has {trace.num_processors} processors but the platform "
                f"has {platform.num_processors}"
            )
        self.platform = platform
        self.trace = trace
        self.block_size = int(block_size)
        self.max_slots = int(max_slots)
        self._windows: Dict[int, BlockData] = {}
        self._next_index = 0
        self._last_column: Optional[np.ndarray] = None
        self._base_last_column: Optional[np.ndarray] = None
        # Platform-level hazard overlay: materialised once per window and
        # shared by every engine of the pass (replay traces carry it baked
        # in).  Deriving the extra hazard stream leaves the worker streams
        # bit-identical, so hazard-free sources are unchanged.
        self._hazard = platform.hazard if trace is None else None
        if trace is None:
            if self._hazard is not None:
                self._rngs, _, self._hazard_rng = derive_run_streams(
                    seed, platform.num_processors, hazard=True
                )
            else:
                self._rngs, _ = derive_run_streams(seed, platform.num_processors)
                self._hazard_rng = None
        else:
            self._rngs = None
            self._hazard_rng = None

    # ------------------------------------------------------------------
    def window(self, slot: int) -> Tuple[int, BlockData]:
        """The aligned window containing *slot*: ``(window start, data)``.

        Windows are generated sequentially and cached, so any engine may ask
        for any already-reachable slot; engines that run ahead trigger
        generation, the rest hit the cache.
        """
        if slot < 0 or slot >= self.max_slots:
            raise SimulationError(
                f"slot {slot} outside the source's range [0, {self.max_slots})"
            )
        index = slot // self.block_size
        while self._next_index <= index:
            self._generate_next()
        data = self._windows.get(index)
        if data is None:
            raise SimulationError(
                f"window {index} was already released (lockstep violation: "
                "an engine asked for a window below the release watermark)"
            )
        start = index * self.block_size
        if slot - start >= data.length:
            # The window was clipped by the trace horizon; a solo engine
            # would have asked for this slot directly and hit the same wall.
            raise SimulationError(
                f"availability trace ends at slot {start + data.length} but "
                f"the run reached slot {slot}; provide a longer trace or "
                "lower max_slots"
            )
        return start, data

    def release_below(self, slot: int) -> None:
        """Drop cached windows that end at or before *slot* (memory hygiene)."""
        block_size = self.block_size
        for index in [k for k in self._windows if (k + 1) * block_size <= slot]:
            del self._windows[index]

    # ------------------------------------------------------------------
    def _generate_next(self) -> None:
        start = self._next_index * self.block_size
        if self.trace is not None:
            horizon = self.trace.horizon
            if horizon < 1:
                raise SimulationError("availability trace is empty")
            if start >= horizon:
                raise SimulationError(
                    f"availability trace ends at slot {horizon} but the run "
                    f"reached slot {start}; provide a longer trace or lower "
                    "max_slots"
                )
            length = min(self.block_size, horizon - start, self.max_slots - start)
            block = np.asarray(self.trace.block(start, start + length), dtype=np.int8)
            if block.shape != (self.platform.num_processors, length):
                raise SimulationError(
                    f"availability source returned a block of shape "
                    f"{block.shape}, expected "
                    f"{(self.platform.num_processors, length)}"
                )
        else:
            length = min(self.block_size, self.max_slots - start)
            block = np.empty((self.platform.num_processors, length), dtype=np.int8)
            if start == 0:
                for worker_id, processor in enumerate(self.platform.processors):
                    model = processor.availability
                    model.reset()
                    rng = self._rngs[worker_id]
                    state = model.initial_state(rng)
                    block[worker_id, 0] = int(state)
                    if length > 1:
                        block[worker_id, 1:] = model.sample_block(
                            1, length - 1, rng, current=state
                        )
            else:
                # With a hazard, the base chains continue from the raw
                # pre-overlay states — same discipline as the solo engine,
                # which keeps the realisation window-boundary independent.
                previous = (
                    self._base_last_column
                    if self._hazard is not None
                    else self._last_column
                )
                for worker_id, processor in enumerate(self.platform.processors):
                    block[worker_id] = processor.availability.sample_block(
                        start,
                        length,
                        self._rngs[worker_id],
                        current=ProcessorState(int(previous[worker_id])),
                    )
            if self._hazard is not None:
                if start == 0:
                    self._hazard.reset(self._hazard_rng)
                self._base_last_column = block[:, -1].copy()
                self._hazard.overlay(start, block)
        self._windows[self._next_index] = BlockData(block, self._last_column)
        self._last_column = block[:, -1]
        self._next_index += 1


class MultiHeuristicDriver:
    """Advance several schedulers over one availability realisation, one pass.

    Parameters
    ----------
    platform, application:
        Shared models; every scheduler simulates the same instance.
    schedulers:
        The scheduler instances to co-simulate (one engine each; an instance
        must not be shared between drivers or engines).  Any scheduler type
        works — the engines only share availability, never decisions — but
        the intended use (and what the experiment layer routes here) is a
        cell's worth of passive-contract heuristics.
    seed:
        Per-engine run seed.  All engines get the same seed, so each result
        is bit-identical to ``SimulationEngine(..., seed=seed).run()``.
    trace:
        Optional replay trace handed to the :class:`SharedBlockSource`.
    analysis:
        Optional shared :class:`AnalysisContext` (built once otherwise).
    sampler:
        ``"kernel"`` (default) or ``"block"`` — the per-engine driver.
        ``"perslot"`` is rejected: the legacy driver resamples per slot and
        cannot share blocks.
    metrics:
        Optional sequence of per-scheduler
        :class:`~repro.metrics.collector.MetricsCollector` instances (or
        ``None`` entries), one per scheduler, attached to the matching
        engine.  Collectors are read-only observers, so attaching them
        keeps every result bit-identical.
    tracer:
        Optional shared :class:`~repro.telemetry.tracer.Tracer` attached
        to every engine (engine spans carry the heuristic name, so one
        trace file disentangles the interleaved runs).  Read-only like the
        collectors; ``None`` is the exact untraced path.

    After :meth:`run`, :attr:`wall_seconds` holds the per-scheduler driving
    time (the shared window generation is attributed to the engine that
    first reached the window).
    """

    def __init__(
        self,
        platform: Platform,
        application: Application,
        schedulers: Sequence[Scheduler],
        *,
        seed: SeedLike = None,
        max_slots: int = DEFAULT_MAX_SLOTS,
        trace: Optional[AvailabilityTrace] = None,
        analysis: Optional[AnalysisContext] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        sampler: str = "kernel",
        metrics: Optional[Sequence] = None,
        tracer=None,
    ) -> None:
        if not schedulers:
            raise SimulationError("MultiHeuristicDriver needs at least one scheduler")
        if sampler not in ("block", "kernel"):
            raise SimulationError(
                f"unknown sampler {sampler!r} for a multi-heuristic pass; "
                "available samplers: block, kernel"
            )
        if metrics is not None and len(metrics) != len(schedulers):
            raise SimulationError(
                f"metrics must provide one collector per scheduler "
                f"({len(metrics)} given for {len(schedulers)} schedulers)"
            )
        self.source = SharedBlockSource(
            platform,
            trace=trace,
            seed=seed,
            block_size=block_size,
            max_slots=max_slots,
        )
        self.analysis = analysis if analysis is not None else AnalysisContext(platform)
        self.engines: List[SimulationEngine] = [
            SimulationEngine(
                platform,
                application,
                scheduler,
                seed=seed,
                max_slots=max_slots,
                analysis=self.analysis,
                block_size=block_size,
                sampler=sampler,
                shared_blocks=self.source,
                metrics=metrics[index] if metrics is not None else None,
                tracer=tracer,
            )
            for index, scheduler in enumerate(schedulers)
        ]
        #: Per-scheduler driving wall time of the last :meth:`run`.
        self.wall_seconds: List[float] = []

    # ------------------------------------------------------------------
    def run(self) -> List[SimulationResult]:
        """Run every engine to completion; results in scheduler order."""
        perf_counter = time.perf_counter
        results: List[Optional[SimulationResult]] = [None] * len(self.engines)
        walls = [0.0] * len(self.engines)
        # (engine index, cooperative stepper, scheduler.select) per live run.
        live: List[Tuple[int, object, object]] = [
            (index, engine._drive(cooperative=True), engine.scheduler.select)
            for index, engine in enumerate(self.engines)
        ]
        while live:
            next_round: List[Tuple[int, object, object]] = []
            for index, stepper, select in live:
                # Advance this engine up to its next window boundary: the
                # stepper yields observations (answered by its scheduler)
                # until it emits BLOCK_BOUNDARY or finishes.
                started = perf_counter()
                answer = None
                try:
                    while True:
                        emitted = stepper.send(answer)
                        if emitted is BLOCK_BOUNDARY:
                            next_round.append((index, stepper, select))
                            break
                        answer = select(emitted)
                except StopIteration as stop:
                    results[index] = stop.value
                walls[index] += perf_counter() - started
            live = next_round
            if live:
                # Everyone still running has fetched past the watermark.
                watermark = min(self.engines[index]._block_start for index, _, _ in live)
                self.source.release_below(watermark)
        self.wall_seconds = walls
        return results  # type: ignore[return-value]
