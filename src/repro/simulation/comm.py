"""Bounded multi-port communication manager.

The master can drive at most ``ncom`` simultaneous transfers per slot
(Section III-B).  Each granted channel moves one slot's worth of program or
task data to one enrolled, UP worker.

The paper does not prescribe how the master chooses which workers to serve
when more than ``ncom`` of them need data; any work-conserving policy is
compatible with the model.  We use a deterministic *sticky* policy that
matches the behaviour illustrated in Figure 1:

* a worker that held a channel in the previous slot keeps it as long as it is
  UP, enrolled and still needs communication (transfers are not needlessly
  preempted);
* remaining channels are granted to eligible workers by ascending worker id.

The policy is isolated here so alternative policies (e.g. shortest-remaining-
transfer-first) can be benchmarked without touching the engine.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set

from repro.simulation.state import WorkerRuntime

__all__ = ["CommunicationManager"]


class CommunicationManager:
    """Allocates the master's ``ncom`` channels slot by slot."""

    def __init__(self, ncom: int) -> None:
        if ncom < 1:
            raise ValueError(f"ncom must be >= 1, got {ncom}")
        self.ncom = int(ncom)
        self._previous_holders: Set[int] = set()

    def reset(self) -> None:
        """Forget channel stickiness (called at the start of every run)."""
        self._previous_holders.clear()

    def set_holders(self, worker_ids: Iterable[int]) -> None:
        """Overwrite the sticky-holder set.

        Used by the engine's whole-phase fast-forward
        (:func:`repro.simulation.kernels.comm_phase_span`) to leave the
        stickiness state exactly as the slot-by-slot :meth:`allocate` calls
        would have: the grant set of the last consumed communication slot.
        """
        self._previous_holders = {int(worker) for worker in worker_ids}

    # ------------------------------------------------------------------
    def allocate(
        self,
        runtimes: Sequence[WorkerRuntime],
        *,
        tprog: int,
        tdata: int,
    ) -> List[int]:
        """Pick the workers to serve this slot.

        Parameters
        ----------
        runtimes:
            The per-worker runtime records (all workers; eligibility is
            decided here).
        tprog, tdata:
            Transfer durations, used to decide who still needs communication.

        Returns
        -------
        list of worker ids granted a channel this slot (at most ``ncom``).
        """
        eligible = [
            runtime.worker_id
            for runtime in runtimes
            if runtime.enrolled
            and runtime.is_up()
            and runtime.comm_slots_remaining(tprog, tdata) > 0
        ]
        if not eligible:
            self._previous_holders.clear()
            return []

        eligible_set = set(eligible)
        # Sticky channels first (ascending id for determinism), then the rest.
        keep = sorted(self._previous_holders & eligible_set)
        rest = sorted(eligible_set - self._previous_holders)
        granted = (keep + rest)[: self.ncom]
        self._previous_holders = set(granted)
        return granted

    # ------------------------------------------------------------------
    def serve(
        self,
        runtimes: Dict[int, WorkerRuntime],
        granted: Iterable[int],
        *,
        tprog: int,
        tdata: int,
    ) -> Dict[int, str]:
        """Advance the transfers of the *granted* workers by one slot.

        Returns a mapping worker id -> ``"program"`` or ``"data"`` describing
        what was transferred (used by the event log / Gantt rendering).
        """
        served: Dict[int, str] = {}
        for worker_id in granted:
            runtime = runtimes[worker_id]
            served[worker_id] = runtime.receive_communication_slot(tprog, tdata)
        return served

    # ------------------------------------------------------------------
    def drain(
        self,
        enrolled_runtimes: Sequence[WorkerRuntime],
        span: int,
        *,
        tprog: int,
        tdata: int,
    ) -> int:
        """Fast-forward up to *span* communication slots with frozen states.

        Event-driven equivalent of calling :meth:`allocate` + :meth:`serve`
        once per slot while no worker changes availability state: under the
        sticky policy the granted set only changes when a transfer
        completes, so each grant interval is applied in one batch through
        :meth:`WorkerRuntime.advance_communication`.  Returns the number of
        slots consumed — stopping at the first slot that is no longer a
        communication slot (all transfers done) or at *span* — and leaves
        the sticky-holder set exactly as the slot-by-slot calls would have.

        This is the one other place besides :meth:`allocate` that encodes
        the channel-allocation policy; an alternative policy must replace
        both (or simply not offer a drain, at the cost of per-slot
        fast-forwarding in the engine).
        """
        if span <= 0:
            return 0
        active: Dict[int, int] = {}
        stalled_remaining = 0
        for runtime in enrolled_runtimes:
            remaining = runtime.comm_slots_remaining(tprog, tdata)
            if remaining > 0:
                if runtime.is_up():
                    active[runtime.worker_id] = remaining
                else:
                    stalled_remaining += remaining
        runtime_by_id = {r.worker_id: r for r in enrolled_runtimes}
        previous = self._previous_holders
        granted = sorted(w for w in active if w in previous)
        granted += sorted(w for w in active if w not in previous)
        granted = granted[: self.ncom]
        waiting = sorted(w for w in active if w not in granted)
        consumed = 0
        final_granted = None
        while consumed < span and active:
            step = min(active[w] for w in granted)
            if step > span - consumed:
                step = span - consumed
            for w in granted:
                runtime_by_id[w].advance_communication(step, tprog, tdata)
                active[w] -= step
            consumed += step
            # The sticky set after these slots is the grant set *they* used,
            # not the refilled one computed for the next interval.
            final_granted = granted
            finished = [w for w in granted if active[w] == 0]
            if finished:
                for w in finished:
                    del active[w]
                granted = [w for w in granted if w in active]
                while waiting and len(granted) < self.ncom:
                    granted.append(waiting.pop(0))
        if final_granted is not None:
            self._previous_holders = set(final_granted)
        if not active and stalled_remaining > 0 and consumed < span:
            # Only RECLAIMED workers still owe transfers: every remaining
            # frozen slot is a stalled comm slot with no eligible worker,
            # which the slot-by-slot policy answers with an empty grant
            # (and a cleared sticky set).
            self._previous_holders = set()
            consumed = span
        return consumed
