"""Bounded multi-port communication manager.

The master can drive at most ``ncom`` simultaneous transfers per slot
(Section III-B).  Each granted channel moves one slot's worth of program or
task data to one enrolled, UP worker.

The paper does not prescribe how the master chooses which workers to serve
when more than ``ncom`` of them need data; any work-conserving policy is
compatible with the model.  We use a deterministic *sticky* policy that
matches the behaviour illustrated in Figure 1:

* a worker that held a channel in the previous slot keeps it as long as it is
  UP, enrolled and still needs communication (transfers are not needlessly
  preempted);
* remaining channels are granted to eligible workers by ascending worker id.

The policy is isolated here so alternative policies (e.g. shortest-remaining-
transfer-first) can be benchmarked without touching the engine.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set

from repro.simulation.state import WorkerRuntime

__all__ = ["CommunicationManager"]


class CommunicationManager:
    """Allocates the master's ``ncom`` channels slot by slot."""

    def __init__(self, ncom: int) -> None:
        if ncom < 1:
            raise ValueError(f"ncom must be >= 1, got {ncom}")
        self.ncom = int(ncom)
        self._previous_holders: Set[int] = set()

    def reset(self) -> None:
        """Forget channel stickiness (called at the start of every run)."""
        self._previous_holders.clear()

    # ------------------------------------------------------------------
    def allocate(
        self,
        runtimes: Sequence[WorkerRuntime],
        *,
        tprog: int,
        tdata: int,
    ) -> List[int]:
        """Pick the workers to serve this slot.

        Parameters
        ----------
        runtimes:
            The per-worker runtime records (all workers; eligibility is
            decided here).
        tprog, tdata:
            Transfer durations, used to decide who still needs communication.

        Returns
        -------
        list of worker ids granted a channel this slot (at most ``ncom``).
        """
        eligible = [
            runtime.worker_id
            for runtime in runtimes
            if runtime.enrolled
            and runtime.is_up()
            and runtime.comm_slots_remaining(tprog, tdata) > 0
        ]
        if not eligible:
            self._previous_holders.clear()
            return []

        eligible_set = set(eligible)
        # Sticky channels first (ascending id for determinism), then the rest.
        keep = sorted(self._previous_holders & eligible_set)
        rest = sorted(eligible_set - self._previous_holders)
        granted = (keep + rest)[: self.ncom]
        self._previous_holders = set(granted)
        return granted

    # ------------------------------------------------------------------
    def serve(
        self,
        runtimes: Dict[int, WorkerRuntime],
        granted: Iterable[int],
        *,
        tprog: int,
        tdata: int,
    ) -> Dict[int, str]:
        """Advance the transfers of the *granted* workers by one slot.

        Returns a mapping worker id -> ``"program"`` or ``"data"`` describing
        what was transferred (used by the event log / Gantt rendering).
        """
        served: Dict[int, str] = {}
        for worker_id in granted:
            runtime = runtimes[worker_id]
            served[worker_id] = runtime.receive_communication_slot(tprog, tdata)
        return served
