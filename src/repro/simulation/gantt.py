"""ASCII Gantt rendering of a simulated execution, in the style of Figure 1.

The paper's Figure 1 shows, for every processor and time-slot, the
availability state (white = UP, gray = RECLAIMED, black = DOWN) and the
activity ("P" receiving the program, "D" receiving task data, "C" computing,
"I" idle).  When the engine is run with ``record_activity=True`` it keeps the
same two matrices, which this module renders as monospaced text:

* activity letters are shown for UP slots;
* RECLAIMED slots are shown as ``·`` and DOWN slots as ``#`` regardless of
  activity (nothing can happen there);
* slots at which the worker is not enrolled are left blank.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.types import DOWN, RECLAIMED

__all__ = ["render_gantt"]

_RECLAIMED_CHAR = "·"  # middle dot
_DOWN_CHAR = "#"


def render_gantt(
    activity: np.ndarray,
    states: np.ndarray,
    *,
    worker_names: Optional[Sequence[str]] = None,
    start: int = 0,
    end: Optional[int] = None,
    ruler_every: int = 5,
) -> str:
    """Render activity/state matrices as a text Gantt chart.

    Parameters
    ----------
    activity:
        ``(p, N)`` array of single-character activity codes (as produced by
        the engine with ``record_activity=True``).
    states:
        ``(p, N)`` int array of availability states.
    worker_names:
        Optional row labels; default ``P1..Pp``.
    start, end:
        Slot window to render (``end`` exclusive; defaults to the full width).
    ruler_every:
        Print a tick on the time ruler every that many slots.
    """
    activity = np.asarray(activity)
    states = np.asarray(states)
    if activity.shape != states.shape:
        raise ValueError(
            f"activity and states must have the same shape, got {activity.shape} vs {states.shape}"
        )
    num_workers, horizon = activity.shape
    end = horizon if end is None else min(end, horizon)
    if start < 0 or start > end:
        raise ValueError(f"invalid window [{start}, {end})")
    if worker_names is None:
        worker_names = [f"P{q + 1}" for q in range(num_workers)]
    label_width = max((len(name) for name in worker_names), default=2)

    lines: List[str] = []
    # Time ruler.
    ruler = [" "] * (end - start)
    for offset, slot in enumerate(range(start, end)):
        if slot % ruler_every == 0:
            tick = str(slot)
            for position, char in enumerate(tick):
                if offset + position < len(ruler) and ruler[offset + position] == " ":
                    ruler[offset + position] = char
    lines.append(" " * (label_width + 1) + "".join(ruler))

    for worker in range(num_workers):
        cells: List[str] = []
        for slot in range(start, end):
            state = int(states[worker, slot])
            act = str(activity[worker, slot]) if activity[worker, slot] else " "
            if state == int(DOWN):
                cells.append(_DOWN_CHAR)
            elif state == int(RECLAIMED):
                cells.append(_RECLAIMED_CHAR)
            else:
                cells.append(act if act.strip() else " ")
        lines.append(f"{worker_names[worker]:<{label_width}} " + "".join(cells))

    legend = (
        f"legend: P=program  D=data  C=compute  I=idle  "
        f"{_RECLAIMED_CHAR}=reclaimed  {_DOWN_CHAR}=down  (blank = not enrolled)"
    )
    lines.append(legend)
    return "\n".join(lines)
