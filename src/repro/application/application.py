"""The :class:`Application` description.

An application is characterised by

* ``tasks_per_iteration`` — ``m``, the number of identical tightly-coupled
  tasks of every iteration;
* ``iterations`` — how many iterations must be completed (the paper's
  experiments fix this to 10 and measure the makespan, which is equivalent to
  maximising the number of iterations before a deadline);
* the message sizes ``Vprog`` (application program, sent once per enrolment)
  and ``Vdata`` (input data of one task, sent for every task of every
  iteration).

Transfer *durations* (``Tprog``, ``Tdata``) live on the
:class:`~repro.platform.platform.Platform` because they depend on the
master-worker bandwidth; the sizes are kept here for the physical-units
constructor and for documentation purposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import InvalidApplicationError

__all__ = ["Application"]


@dataclass(frozen=True)
class Application:
    """Static description of a tightly-coupled iterative application.

    Attributes
    ----------
    tasks_per_iteration:
        ``m`` >= 1 — tasks executed (and synchronised) in every iteration.
    iterations:
        Number of iterations to complete; >= 1.
    program_size:
        ``Vprog`` in bytes (optional, informational).
    data_size:
        ``Vdata`` in bytes (optional, informational).
    name:
        Optional display name.
    """

    tasks_per_iteration: int
    iterations: int = 10
    program_size: Optional[float] = None
    data_size: Optional[float] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if (
            isinstance(self.tasks_per_iteration, bool)
            or int(self.tasks_per_iteration) != self.tasks_per_iteration
            or self.tasks_per_iteration < 1
        ):
            raise InvalidApplicationError(
                f"tasks_per_iteration (m) must be an integer >= 1, got {self.tasks_per_iteration!r}"
            )
        if (
            isinstance(self.iterations, bool)
            or int(self.iterations) != self.iterations
            or self.iterations < 1
        ):
            raise InvalidApplicationError(
                f"iterations must be an integer >= 1, got {self.iterations!r}"
            )
        for attribute in ("program_size", "data_size"):
            value = getattr(self, attribute)
            if value is not None and value < 0:
                raise InvalidApplicationError(f"{attribute} must be >= 0, got {value!r}")
        object.__setattr__(self, "tasks_per_iteration", int(self.tasks_per_iteration))
        object.__setattr__(self, "iterations", int(self.iterations))

    @property
    def m(self) -> int:
        """Alias matching the paper's notation."""
        return self.tasks_per_iteration

    def total_tasks(self) -> int:
        """Total number of task executions over the whole run (``m * iterations``)."""
        return self.tasks_per_iteration * self.iterations

    def describe(self) -> str:
        label = self.name or "application"
        return f"{label}(m={self.tasks_per_iteration}, iterations={self.iterations})"

    def to_dict(self) -> dict:
        return {
            "tasks_per_iteration": self.tasks_per_iteration,
            "iterations": self.iterations,
            "program_size": self.program_size,
            "data_size": self.data_size,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Application":
        return cls(
            tasks_per_iteration=payload["tasks_per_iteration"],
            iterations=payload.get("iterations", 10),
            program_size=payload.get("program_size"),
            data_size=payload.get("data_size"),
            name=payload.get("name"),
        )
