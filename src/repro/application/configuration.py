"""Worker configurations: which workers are enrolled and with how many tasks.

A *configuration* (``config(t)`` in the paper) maps a subset of workers to
positive task counts ``x_q`` with ``Σ x_q = m`` and ``x_q <= µ_q``.  The
iteration's computation phase then requires ``W = max_q x_q · w_q`` time
slots during which **all** enrolled workers are simultaneously UP (tasks are
tightly coupled, so everything advances at the pace of the slowest worker).

Configurations are immutable value objects: schedulers build new ones rather
than mutating, so they can be hashed, compared and used as cache keys by the
analysis layer.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.exceptions import InvalidConfigurationError
from repro.platform.platform import Platform
from repro.types import WorkerId

__all__ = ["Configuration"]


class Configuration:
    """Immutable mapping ``worker id -> number of tasks x_q`` (all counts >= 1)."""

    __slots__ = ("_allocation", "_hash")

    def __init__(self, allocation: Mapping[WorkerId, int]):
        cleaned: Dict[int, int] = {}
        for worker, tasks in allocation.items():
            if isinstance(tasks, bool) or int(tasks) != tasks:
                raise InvalidConfigurationError(
                    f"task count for worker {worker} must be an integer, got {tasks!r}"
                )
            tasks = int(tasks)
            if tasks < 0:
                raise InvalidConfigurationError(
                    f"task count for worker {worker} must be >= 0, got {tasks}"
                )
            if tasks == 0:
                continue  # zero-task entries are simply dropped
            worker = int(worker)
            if worker < 0:
                raise InvalidConfigurationError(f"worker id must be >= 0, got {worker}")
            cleaned[worker] = tasks
        self._allocation: Dict[int, int] = dict(sorted(cleaned.items()))
        self._hash = hash(tuple(self._allocation.items()))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "Configuration":
        """The empty configuration (no worker enrolled)."""
        return cls({})

    @classmethod
    def single(cls, worker: WorkerId, tasks: int = 1) -> "Configuration":
        return cls({worker: tasks})

    @classmethod
    def even_split(cls, workers: Iterable[WorkerId], num_tasks: int) -> "Configuration":
        """Distribute *num_tasks* as evenly as possible over *workers* (round-robin)."""
        workers = list(workers)
        if num_tasks < 0:
            raise InvalidConfigurationError(f"num_tasks must be >= 0, got {num_tasks}")
        if num_tasks > 0 and not workers:
            raise InvalidConfigurationError("cannot split tasks over an empty worker set")
        allocation: Dict[int, int] = {int(worker): 0 for worker in workers}
        for index in range(num_tasks):
            allocation[int(workers[index % len(workers)])] += 1
        return cls(allocation)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def workers(self) -> Tuple[int, ...]:
        """Enrolled worker ids, ascending."""
        return tuple(self._allocation.keys())

    @property
    def allocation(self) -> Dict[int, int]:
        """Copy of the worker -> task-count mapping."""
        return dict(self._allocation)

    def tasks_on(self, worker: WorkerId) -> int:
        """``x_q`` for *worker* (0 if not enrolled)."""
        return self._allocation.get(int(worker), 0)

    def total_tasks(self) -> int:
        """``Σ x_q``."""
        return sum(self._allocation.values())

    def num_workers(self) -> int:
        return len(self._allocation)

    def is_empty(self) -> bool:
        return not self._allocation

    def __contains__(self, worker: object) -> bool:
        return int(worker) in self._allocation  # type: ignore[arg-type]

    def __iter__(self) -> Iterator[int]:
        return iter(self._allocation)

    def items(self):
        return self._allocation.items()

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def workload(self, platform: Platform) -> int:
        """``W = max_q x_q · w_q`` — UP slots of simultaneous computation needed."""
        if not self._allocation:
            return 0
        return max(
            tasks * platform.processor(worker).speed
            for worker, tasks in self._allocation.items()
        )

    def per_worker_load(self, platform: Platform) -> Dict[int, int]:
        """Mapping worker -> ``x_q · w_q`` (each worker's own compute time)."""
        return {
            worker: tasks * platform.processor(worker).speed
            for worker, tasks in self._allocation.items()
        }

    def communication_slots(
        self,
        platform: Platform,
        *,
        has_program: Optional[Iterable[WorkerId]] = None,
        received_data: Optional[Mapping[WorkerId, int]] = None,
    ) -> Dict[int, int]:
        """Per-worker slots of master communication still needed (``n_q``).

        Parameters
        ----------
        platform:
            Supplies ``Tprog`` and ``Tdata``.
        has_program:
            Workers that already hold the program (and have not been DOWN
            since receiving it) — they do not need it re-sent.
        received_data:
            Data messages already received (and still usable) this iteration,
            per worker; capped at the assigned task count.
        """
        program_owners = set(int(w) for w in has_program) if has_program else set()
        received = {int(k): int(v) for k, v in received_data.items()} if received_data else {}
        slots: Dict[int, int] = {}
        for worker, tasks in self._allocation.items():
            already = min(received.get(worker, 0), tasks)
            needs_program = worker not in program_owners
            slots[worker] = platform.communication_slots(
                tasks - already, needs_program=needs_program
            )
        return slots

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, platform: Platform, num_tasks: int) -> None:
        """Check the configuration against the execution model of Section III-C.

        Raises :class:`InvalidConfigurationError` if any worker id is out of
        range, a capacity bound ``µ_q`` is exceeded, or ``Σ x_q != m``.
        """
        for worker, tasks in self._allocation.items():
            if worker >= platform.num_processors:
                raise InvalidConfigurationError(
                    f"worker {worker} does not exist on a platform with "
                    f"{platform.num_processors} processors"
                )
            capacity = platform.processor(worker).capacity
            if tasks > capacity:
                raise InvalidConfigurationError(
                    f"worker {worker} is assigned {tasks} tasks but its capacity µ is {capacity}"
                )
        total = self.total_tasks()
        if total != num_tasks:
            raise InvalidConfigurationError(
                f"configuration assigns {total} tasks but the iteration has {num_tasks}"
            )

    def is_valid(self, platform: Platform, num_tasks: int) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate(platform, num_tasks)
        except InvalidConfigurationError:
            return False
        return True

    # ------------------------------------------------------------------
    # Functional updates
    # ------------------------------------------------------------------
    def with_task_added(self, worker: WorkerId) -> "Configuration":
        """A new configuration with one extra task on *worker*."""
        allocation = dict(self._allocation)
        allocation[int(worker)] = allocation.get(int(worker), 0) + 1
        return Configuration(allocation)

    def without_worker(self, worker: WorkerId) -> "Configuration":
        """A new configuration with *worker* removed entirely."""
        allocation = dict(self._allocation)
        allocation.pop(int(worker), None)
        return Configuration(allocation)

    # ------------------------------------------------------------------
    # Value-object protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._allocation == other._allocation

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"P{worker}:{tasks}" for worker, tasks in self._allocation.items())
        return f"Configuration({{{inner}}})"

    def to_dict(self) -> dict:
        return {str(worker): tasks for worker, tasks in self._allocation.items()}

    @classmethod
    def from_dict(cls, payload: Mapping[str, int]) -> "Configuration":
        return cls({int(worker): tasks for worker, tasks in payload.items()})
