"""Application model: tightly-coupled iterative master–worker applications.

Implements the model of Section III-A: the application performs a sequence
of iterations; each iteration executes ``m`` identical tightly-coupled tasks
and ends with a global synchronisation.  Because tasks exchange data
throughout the iteration, all of them must progress in locked step — the
computation advances only during time-slots at which *every* enrolled worker
is UP, and the whole iteration is lost if any enrolled worker goes DOWN.
"""

from repro.application.application import Application
from repro.application.configuration import Configuration

__all__ = ["Application", "Configuration"]
