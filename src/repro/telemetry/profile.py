"""Aggregate JSONL span traces into per-phase/per-heuristic profiles.

``repro profile STORE|TRACE`` loads the span records written by
:class:`~repro.telemetry.tracer.Tracer` (a single ``spans-*.jsonl`` file,
a trace directory, or a campaign store containing a ``telemetry/``
subdirectory) and renders where wall-clock time went: one row per
(span name, heuristic/criterion) pair with call counts, total time and
share of profiled time, plus the allocator/analysis memo hit/miss
counters — the direct evidence for the "informed-heuristic cells are
allocator-bound" claim in the roadmap.

Container spans (``engine.run``, ``job.run``) wrap the instrumented
phases, so they are reported but excluded from the share denominator;
shares are computed over leaf spans only.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.exceptions import ReproError
from repro.telemetry.tracer import TRACE_FILE_PREFIX
from repro.utils.tables import format_table

__all__ = [
    "ProfileRow",
    "ProfileReport",
    "load_spans",
    "aggregate_spans",
    "profile_trace",
    "format_profile",
    "render_profile_html",
]

#: Spans that wrap other instrumented spans; excluded from the share
#: denominator so phase shares do not double-count.
CONTAINER_SPANS = frozenset({"engine.run", "job.run", "campaign.run"})


@dataclass
class ProfileRow:
    """Aggregated statistics for one (span name, group) pair."""

    name: str
    group: str
    count: int = 0
    total_us: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def total_ms(self) -> float:
        """Total time in milliseconds."""
        return self.total_us / 1000.0

    @property
    def mean_us(self) -> float:
        """Mean span duration in microseconds."""
        return self.total_us / self.count if self.count else 0.0


@dataclass
class ProfileReport:
    """A full profile: per-phase rows plus memo-counter totals."""

    source: str
    rows: List[ProfileRow]
    total_spans: int
    files: int
    wall_seconds: float
    counters: Dict[str, float]

    @property
    def leaf_total_us(self) -> float:
        """Total microseconds across non-container spans."""
        return sum(row.total_us for row in self.rows if row.name not in CONTAINER_SPANS)

    def share(self, row: ProfileRow) -> Optional[float]:
        """Fraction of profiled (leaf) time spent in *row*, or ``None``."""
        if row.name in CONTAINER_SPANS:
            return None
        total = self.leaf_total_us
        return row.total_us / total if total else 0.0


def _span_files(path: Union[str, Path]) -> List[Path]:
    target = Path(path)
    if target.is_file():
        return [target]
    if target.is_dir():
        # A trace directory holds spans-*.jsonl directly; a campaign store
        # holds them under telemetry/ (where `repro campaign --trace` and
        # the service worker write).
        files = sorted(target.glob(f"{TRACE_FILE_PREFIX}*.jsonl"))
        if not files:
            files = sorted((target / "telemetry").glob(f"{TRACE_FILE_PREFIX}*.jsonl"))
        if files:
            return files
        raise ReproError(
            f"no {TRACE_FILE_PREFIX}*.jsonl span files under {target} "
            "(run the campaign with --trace, or point at a trace directory)"
        )
    raise ReproError(f"trace path does not exist: {target}")


def load_spans(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load span records from a file, trace directory, or campaign store."""
    spans: List[Dict[str, Any]] = []
    for file in _span_files(path):
        with open(file, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    spans.append(json.loads(line))
    return spans


def _group_label(span: Dict[str, Any]) -> str:
    heuristic = span.get("heuristic")
    if heuristic:
        return str(heuristic)
    criterion = span.get("criterion")
    if criterion:
        return f"criterion={criterion}"
    return "-"


def aggregate_spans(
    spans: Iterable[Dict[str, Any]], *, source: str = "", files: int = 1
) -> ProfileReport:
    """Aggregate raw span records into a :class:`ProfileReport`."""
    rows: Dict[Tuple[str, str], ProfileRow] = {}
    counters: Dict[str, float] = {}
    total = 0
    first_ts: Optional[float] = None
    last_ts: Optional[float] = None
    for span in spans:
        name = str(span.get("name", "?"))
        group = _group_label(span)
        row = rows.get((name, group))
        if row is None:
            row = rows[(name, group)] = ProfileRow(name=name, group=group)
        span_counters = span.get("counters")
        # Aggregated records (Tracer.accumulate) fold many occurrences into
        # one line and carry the occurrence count as a ``calls`` counter;
        # weight the row count by it so per-call means stay true.
        calls = 1
        if span_counters:
            calls = int(span_counters.get("calls", 1))
        row.count += calls
        row.total_us += float(span.get("dur_us", 0.0))
        if span_counters:
            for key, value in span_counters.items():
                if key == "calls":
                    continue
                row.counters[key] = row.counters.get(key, 0) + value
                counters[key] = counters.get(key, 0) + value
        ts = span.get("ts")
        if ts is not None:
            ts = float(ts)
            first_ts = ts if first_ts is None else min(first_ts, ts)
            last_ts = ts if last_ts is None else max(last_ts, ts)
        total += 1
    ordered = sorted(rows.values(), key=lambda r: (-r.total_us, r.name, r.group))
    wall = (last_ts - first_ts) if first_ts is not None and last_ts is not None else 0.0
    return ProfileReport(
        source=source,
        rows=ordered,
        total_spans=total,
        files=files,
        wall_seconds=wall,
        counters=counters,
    )


def profile_trace(path: Union[str, Path]) -> ProfileReport:
    """Load spans from *path* and aggregate them."""
    files = _span_files(path)
    spans: List[Dict[str, Any]] = []
    for file in files:
        with open(file, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    spans.append(json.loads(line))
    return aggregate_spans(spans, source=str(path), files=len(files))


_MEMO_ROWS = (
    ("candidates", "allocator candidates scored"),
    ("steps", "allocator greedy steps"),
    ("computation_hits", "computation memo hits"),
    ("computation_misses", "computation memo misses"),
    ("single_time_misses", "single-time memo misses"),
    ("survival_misses", "survival memo misses"),
    ("requests", "analysis batch requests"),
    ("prefetched", "analysis memo prefetches"),
)


def _phase_table(report: ProfileReport) -> str:
    rows: List[List[object]] = []
    for row in report.rows:
        share = report.share(row)
        rows.append(
            [
                row.name,
                row.group,
                row.count,
                f"{row.total_ms:.1f}",
                f"{row.mean_us:.1f}",
                "-" if share is None else f"{100.0 * share:.1f}%",
            ]
        )
    return format_table(
        rows,
        headers=["span", "group", "count", "total ms", "mean us", "share"],
        align_right=[False, False, True, True, True, True],
    )


def _memo_table(report: ProfileReport) -> str:
    rows: List[List[object]] = []
    hits = report.counters.get("computation_hits", 0)
    misses = report.counters.get("computation_misses", 0)
    for key, label in _MEMO_ROWS:
        if key in report.counters:
            rows.append([label, int(report.counters[key])])
    if hits or misses:
        total = hits + misses
        rate = 100.0 * hits / total if total else 0.0
        rows.append(["computation memo hit rate", f"{rate:.1f}%"])
    if not rows:
        return ""
    return format_table(rows, headers=["counter", "value"], align_right=[False, True])


def format_profile(report: ProfileReport) -> str:
    """Render the profile as aligned text tables."""
    lines = [
        f"Trace: {report.source}",
        f"Spans: {report.total_spans} across {report.files} file(s); "
        f"span window {report.wall_seconds:.2f}s; "
        f"profiled (leaf) time {report.leaf_total_us / 1e6:.3f}s",
        "",
        _phase_table(report) if report.rows else "(no spans recorded)",
    ]
    memo = _memo_table(report)
    if memo:
        lines.extend(["", "Allocator / analysis memo counters:", memo])
    return "\n".join(lines) + "\n"


def render_profile_html(report: ProfileReport) -> str:
    """Render the profile as a self-contained HTML document.

    Reuses the dashboard CSS from :mod:`repro.metrics.html` so the page
    matches the campaign report artifact it ships next to.
    """
    from repro.metrics.html import _CSS, _esc

    def html_table(headers: List[str], body_rows: List[List[object]]) -> str:
        head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
        body = "\n".join(
            "<tr>" + "".join(f"<td>{_esc(cell)}</td>" for cell in row) + "</tr>"
            for row in body_rows
        )
        return (
            '<table border="1" cellspacing="0" cellpadding="4">'
            f"<thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"
        )

    phase_rows: List[List[object]] = []
    for row in report.rows:
        share = report.share(row)
        phase_rows.append(
            [
                row.name,
                row.group,
                row.count,
                f"{row.total_ms:.1f}",
                f"{row.mean_us:.1f}",
                "-" if share is None else f"{100.0 * share:.1f}%",
            ]
        )
    memo_rows: List[List[object]] = []
    for key, label in _MEMO_ROWS:
        if key in report.counters:
            memo_rows.append([label, int(report.counters[key])])
    hits = report.counters.get("computation_hits", 0)
    misses = report.counters.get("computation_misses", 0)
    if hits or misses:
        total = hits + misses
        memo_rows.append(
            ["computation memo hit rate", f"{100.0 * hits / max(total, 1):.1f}%"]
        )

    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        "<title>repro telemetry profile</title>",
        f"<style>{_CSS}</style></head>\n<body>",
        "<h1>Telemetry profile</h1>",
        f'<p class="meta">Trace: {_esc(report.source)} &middot; '
        f"{report.total_spans} spans in {report.files} file(s) &middot; "
        f"span window {report.wall_seconds:.2f}s &middot; "
        f"profiled time {report.leaf_total_us / 1e6:.3f}s</p>",
        "<h2>Per-phase breakdown</h2>",
        html_table(
            ["span", "group", "count", "total ms", "mean us", "share"], phase_rows
        )
        if phase_rows
        else '<p class="note">no spans recorded</p>',
    ]
    if memo_rows:
        parts.append("<h2>Allocator / analysis memo counters</h2>")
        parts.append(html_table(["counter", "value"], memo_rows))
    parts.append("</body></html>\n")
    return "\n".join(parts)
