"""Minimal Prometheus-style metrics primitives (text exposition 0.0.4).

The service's ``GET /metrics`` endpoint renders a :class:`MetricsRegistry`
into the standard text format so any Prometheus-compatible scraper can
consume it, without pulling in a client library.  Three instrument kinds
cover everything the service needs:

* :class:`Counter` — monotonically increasing totals (requests served).
* :class:`Gauge` — point-in-time values (queue depth, worker count, RSS).
* :class:`Histogram` — cumulative-bucket latency distributions with
  ``_sum``/``_count`` series.

All instruments are labelled: call ``inc``/``set``/``observe`` with
keyword labels and each distinct label combination becomes one sample
line.  Rendering is deterministic (metrics sorted by name, samples by
label values) so tests can pin exact output.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "process_rss_bytes",
]

# Request-latency buckets in seconds: sub-millisecond static routes up to
# multi-second report renders.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _format_labels(key: LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape(value)}"' for name, value in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Metric:
    kind = "untyped"

    def __init__(self, name: str, help_text: str):
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()

    def header(self) -> List[str]:
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]

    def render(self) -> List[str]:
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing labelled counter."""

    kind = "counter"

    def __init__(self, name: str, help_text: str):
        super().__init__(name, help_text)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add *amount* (must be >= 0) to the sample selected by *labels*."""
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Return the current total for the sample selected by *labels*."""
        return self._values.get(_label_key(labels), 0.0)

    def render(self) -> List[str]:
        """Render one sample line per label combination, sorted."""
        with self._lock:
            samples = sorted(self._values.items())
        return [
            f"{self.name}{_format_labels(key)} {_format_value(value)}"
            for key, value in samples
        ]


class Gauge(_Metric):
    """Labelled gauge settable to arbitrary values."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str):
        super().__init__(name, help_text)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        """Set the sample selected by *labels* to *value*."""
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add *amount* to the sample selected by *labels*."""
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        """Subtract *amount* from the sample selected by *labels*."""
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        """Return the current value for the sample selected by *labels*."""
        return self._values.get(_label_key(labels), 0.0)

    def render(self) -> List[str]:
        """Render one sample line per label combination, sorted."""
        with self._lock:
            samples = sorted(self._values.items())
        return [
            f"{self.name}{_format_labels(key)} {_format_value(value)}"
            for key, value in samples
        ]


class Histogram(_Metric):
    """Cumulative-bucket histogram with ``_sum`` and ``_count`` series."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, help_text)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}
        self._totals: Dict[LabelKey, int] = {}

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation of *value* for the sample *labels*."""
        key = _label_key(labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = self._counts[key] = [0] * len(self.buckets)
                self._sums[key] = 0.0
                self._totals[key] = 0
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
            self._sums[key] += value
            self._totals[key] += 1

    def count(self, **labels: str) -> int:
        """Return the observation count for the sample selected by *labels*."""
        return self._totals.get(_label_key(labels), 0)

    def render(self) -> List[str]:
        """Render cumulative buckets plus ``_sum``/``_count`` per sample."""
        with self._lock:
            keys = sorted(self._counts)
            lines: List[str] = []
            for key in keys:
                counts = self._counts[key]
                for bound, count in zip(self.buckets, counts):
                    labels = _format_labels(key, [("le", _format_value(bound))])
                    lines.append(f"{self.name}_bucket{labels} {count}")
                inf_labels = _format_labels(key, [("le", "+Inf")])
                lines.append(f"{self.name}_bucket{inf_labels} {self._totals[key]}")
                lines.append(
                    f"{self.name}_sum{_format_labels(key)} "
                    f"{_format_value(self._sums[key])}"
                )
                lines.append(
                    f"{self.name}_count{_format_labels(key)} {self._totals[key]}"
                )
        return lines


class MetricsRegistry:
    """Named collection of instruments rendered as one text exposition."""

    def __init__(self):
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if type(existing) is not type(metric):
                    raise ValueError(
                        f"metric {metric.name!r} already registered "
                        f"as {existing.kind}"
                    )
                return existing
            self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help_text: str) -> Counter:
        """Get or create the counter *name*."""
        return self._register(Counter(name, help_text))  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str) -> Gauge:
        """Get or create the gauge *name*."""
        return self._register(Gauge(name, help_text))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram *name*."""
        return self._register(Histogram(name, help_text, buckets))  # type: ignore[return-value]

    def render(self) -> str:
        """Render every instrument in Prometheus text format 0.0.4."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: List[str] = []
        for metric in metrics:
            lines.extend(metric.header())
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


def process_rss_bytes() -> Optional[int]:
    """Resident-set size of this process in bytes, or ``None`` if unknown.

    Reads ``/proc/self/status`` (Linux); falls back to
    ``resource.getrusage`` peak RSS elsewhere.
    """
    try:
        with open("/proc/self/status", encoding="ascii", errors="replace") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports kilobytes, macOS bytes; both are acceptable as a
        # fallback order-of-magnitude signal, normalise the common case.
        return int(peak) * 1024 if peak < 1 << 40 else int(peak)
    except Exception:
        return None
