"""System-level observability: span tracing, profiling, service metrics.

Three pieces, all zero-dependency:

* :mod:`repro.telemetry.tracer` — :class:`Tracer` / :class:`NullTracer`
  span context managers writing JSONL records with monotonic timings and
  run/job/cell correlation attributes (per-process files, thread-safe).
* :mod:`repro.telemetry.profile` — load + aggregate span traces into
  per-phase/per-heuristic time breakdowns (``repro profile``).
* :mod:`repro.telemetry.metrics` — Prometheus-text-format instruments
  (counter/gauge/histogram) backing the service ``GET /metrics`` endpoint.

Tracing is off by default everywhere; every instrumented call site treats
``tracer=None`` as the exact pre-telemetry code path, so golden-seed
results are bit-identical with tracing disabled.
"""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    process_rss_bytes,
)
from repro.telemetry.profile import (
    ProfileReport,
    ProfileRow,
    aggregate_spans,
    format_profile,
    load_spans,
    profile_trace,
    render_profile_html,
)
from repro.telemetry.tracer import (
    NullTracer,
    Span,
    Tracer,
    active_tracer,
    shared_tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "Span",
    "active_tracer",
    "shared_tracer",
    "ProfileReport",
    "ProfileRow",
    "load_spans",
    "aggregate_spans",
    "profile_trace",
    "format_profile",
    "render_profile_html",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "process_rss_bytes",
]
