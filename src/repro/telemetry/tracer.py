"""Zero-dependency span tracer emitting JSONL records.

The tracer is the system-level complement of the per-slot simulation
metrics collector: where :class:`repro.metrics.MetricsCollector` samples
*simulated* quantities, :class:`Tracer` records *wall-clock* spans across
the engine step loop, the allocator/analysis hot path, the service job
lifecycle, and HTTP request handling.

Design constraints (mirroring the collector):

* **Disabled tracing is free.**  Every instrumented call site takes
  ``tracer=None`` and guards with ``if tracer is not None`` — the disabled
  path is the exact pre-telemetry code path, so golden seeds stay
  bit-identical and the ``telemetry_overhead`` benchmark gate stays honest.
  :class:`NullTracer` exists for callers that want an object either way;
  :func:`active_tracer` normalises it back to ``None`` at the boundary.
* **Thread- and process-safe.**  Each process appends to its own
  ``spans-<pid>.jsonl`` file inside the trace directory (re-opened after
  ``fork``), writes are line-buffered under a lock, and records carry the
  emitting pid so a multi-process campaign merges cleanly.
* **Cheap emission.**  Timings use :func:`time.perf_counter_ns`; a span
  record is one small dict serialised with compact separators.  For hot
  engine sites :meth:`Tracer.record` emits a span from a pre-captured
  start timestamp without entering a context manager, and the hottest
  sites (per-iteration engine phases, per-rebuild allocations) use
  :meth:`Tracer.accumulate`, which sums durations and counters in a
  thread-local dict and emits one aggregated record per ``(name, attrs)``
  key — with a ``calls`` counter — when :meth:`Tracer.flush_accumulated`
  runs at the end of the engine run.

Record shape (one JSON object per line)::

    {"name": "allocate", "ts": 1754..., "dur_us": 123.4, "pid": 4242,
     "cell": "paper-3", "heuristic": "IE", "counters": {"candidates": 57}}

``ts`` is the Unix wall-clock time at emission (end of the span);
``dur_us`` the monotonic duration in microseconds.  Correlation
attributes (``run``, ``cell``, ``heuristic``, ``trial``, ``job``) are
merged flat from the thread-local :meth:`Tracer.context` stack plus the
per-span keyword arguments; ``counters`` appears only when the span
accumulated any.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "active_tracer",
    "shared_tracer",
    "TRACE_FILE_PREFIX",
]

TRACE_FILE_PREFIX = "spans-"


class Span:
    """Mutable record handed to the body of a :meth:`Tracer.span` block.

    Attributes set via :meth:`add` (monotone counters) or by mutating
    :attr:`attrs` are serialised when the block exits.
    """

    __slots__ = ("name", "attrs", "counters")

    def __init__(self, name: str, attrs: Dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.counters: Dict[str, Union[int, float]] = {}

    def add(self, key: str, amount: Union[int, float] = 1) -> None:
        """Accumulate *amount* into the span counter *key*."""
        self.counters[key] = self.counters.get(key, 0) + amount


class Tracer:
    """Span tracer writing JSONL records to per-process files.

    Parameters
    ----------
    directory:
        Target directory (created if missing).  Each process appends to
        ``spans-<pid>.jsonl`` inside it.
    run_id:
        Optional correlation id stamped on every record as ``run``.
    """

    enabled = True

    def __init__(self, directory: Union[str, Path], *, run_id: Optional[str] = None):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.run_id = run_id
        self._lock = threading.Lock()
        self._local = threading.local()
        self._pid: Optional[int] = None
        self._handle = None

    # -- plumbing ---------------------------------------------------------

    @property
    def path(self) -> Path:
        """The span file this process writes to."""
        return self.directory / f"{TRACE_FILE_PREFIX}{os.getpid()}.jsonl"

    def _writer(self):
        pid = os.getpid()
        if self._handle is None or self._pid != pid:
            with self._lock:
                if self._handle is None or self._pid != pid:
                    # After fork the inherited handle belongs to the parent;
                    # drop the reference (never close another process's
                    # buffer) and open this process's own file.
                    self._handle = open(
                        self.directory / f"{TRACE_FILE_PREFIX}{pid}.jsonl",
                        "a",
                        encoding="utf-8",
                    )
                    self._pid = pid
        return self._handle

    def _context_attrs(self) -> Dict[str, Any]:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else {}

    def _emit(
        self,
        name: str,
        start_ns: int,
        attrs: Dict[str, Any],
        counters: Optional[Dict[str, Union[int, float]]] = None,
    ) -> None:
        record: Dict[str, Any] = {
            "name": name,
            "ts": round(time.time(), 6),
            "dur_us": round((time.perf_counter_ns() - start_ns) / 1000.0, 1),
            "pid": os.getpid(),
        }
        if self.run_id is not None:
            record["run"] = self.run_id
        context = self._context_attrs()
        if context:
            record.update(context)
        if attrs:
            record.update(attrs)
        if counters:
            record["counters"] = counters
        line = json.dumps(record, separators=(",", ":"), default=str)
        handle = self._writer()
        with self._lock:
            handle.write(line + "\n")

    # -- public API -------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Time a block; emit one record when it exits (even on error)."""
        span = Span(name, attrs)
        start = time.perf_counter_ns()
        try:
            yield span
        finally:
            self._emit(span.name, start, span.attrs, span.counters or None)

    def record(self, name: str, start_ns: int, **attrs: Any) -> None:
        """Emit a span from a pre-captured ``perf_counter_ns`` start.

        The cheap form for hot call sites: the caller captures
        ``time.perf_counter_ns()`` itself and avoids the context-manager
        machinery entirely.
        """
        self._emit(name, start_ns, attrs)

    def accumulate(
        self,
        name: str,
        start_ns: int,
        counters: Optional[Dict[str, Union[int, float]]] = None,
        **attrs: Any,
    ) -> None:
        """Fold one occurrence into the thread-local aggregation buffer.

        The cheapest form, for call sites that fire thousands of times per
        engine run (per-iteration comm phases, per-rebuild allocations):
        instead of one JSON line per occurrence, durations and *counters*
        are summed per ``(name, attrs)`` key in a plain dict — no
        serialisation, no lock, no I/O — until :meth:`flush_accumulated`
        emits one record per key with ``dur_us`` the summed duration and a
        ``calls`` counter carrying the occurrence count (the profile
        aggregator uses it to recover true per-call means).  *attrs* are
        group identity: pass only values constant across the occurrences
        being merged (varying values belong in *counters*).
        """
        buffer = getattr(self._local, "pending", None)
        if buffer is None:
            buffer = self._local.pending = {}
        # Hot path: attrs dicts at one call site carry the same keys in the
        # same literal order, so the unsorted items tuple is a stable key.
        key = (name,) + tuple(attrs.items()) if attrs else (name,)
        entry = buffer.get(key)
        if entry is None:
            entry = buffer[key] = [name, attrs, 0, 0, {}]
        entry[2] += time.perf_counter_ns() - start_ns
        entry[3] += 1
        if counters:
            totals = entry[4]
            for counter, amount in counters.items():
                totals[counter] = totals.get(counter, 0) + amount

    def flush_accumulated(self) -> None:
        """Emit one record per accumulated ``(name, attrs)`` key.

        Flushes the *calling thread's* buffer (accumulation is thread-local)
        under whatever :meth:`context` is active at flush time — call it at
        a boundary still inside the run's context, e.g. the end of an engine
        run.  A no-op when nothing is pending.
        """
        buffer = getattr(self._local, "pending", None)
        if not buffer:
            return
        self._local.pending = {}
        for name, attrs, total_ns, calls, totals in buffer.values():
            self._emit(
                name, time.perf_counter_ns() - total_ns, attrs, {"calls": calls, **totals}
            )

    def event(self, name: str, **attrs: Any) -> None:
        """Emit an instantaneous (zero-duration) event record."""
        self._emit(name, time.perf_counter_ns(), attrs)

    @contextmanager
    def context(self, **attrs: Any) -> Iterator[None]:
        """Merge *attrs* into every record emitted by this thread inside.

        Contexts nest; inner values shadow outer ones for the same key.
        """
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        merged = {**stack[-1], **attrs} if stack else dict(attrs)
        stack.append(merged)
        try:
            yield
        finally:
            stack.pop()

    def flush(self) -> None:
        """Flush this thread's accumulation buffer and the span file."""
        self.flush_accumulated()
        with self._lock:
            if self._handle is not None and self._pid == os.getpid():
                self._handle.flush()

    def close(self) -> None:
        """Flush (including this thread's accumulated spans) and close."""
        self.flush_accumulated()
        with self._lock:
            if self._handle is not None and self._pid == os.getpid():
                self._handle.close()
            self._handle = None
            self._pid = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class _NullSpan(Span):
    __slots__ = ()

    def __init__(self):
        super().__init__("", {})

    def add(self, key: str, amount: Union[int, float] = 1) -> None:
        """Discard the counter increment."""


_NULL_SPAN = _NullSpan()


class NullTracer:
    """API-compatible no-op tracer.

    Instrumented call sites normalise it to ``None`` via
    :func:`active_tracer`, so passing a ``NullTracer`` takes the exact
    pre-telemetry code path — no timing calls, no allocations, no files.
    """

    enabled = False

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Yield a shared inert span; record nothing."""
        yield _NULL_SPAN

    def record(self, name: str, start_ns: int, **attrs: Any) -> None:
        """Discard the record."""

    def accumulate(
        self,
        name: str,
        start_ns: int,
        counters: Optional[Dict[str, Union[int, float]]] = None,
        **attrs: Any,
    ) -> None:
        """Discard the occurrence."""

    def flush_accumulated(self) -> None:
        """Nothing accumulated."""

    def event(self, name: str, **attrs: Any) -> None:
        """Discard the event."""

    @contextmanager
    def context(self, **attrs: Any) -> Iterator[None]:
        """Yield without tracking any context."""
        yield

    def flush(self) -> None:
        """Nothing to flush."""

    def close(self) -> None:
        """Nothing to close."""

    def __enter__(self) -> "NullTracer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


# One tracer per (process, trace directory): span files are buffered
# append-only streams, so two handles on the same file could interleave
# partial lines.  The cache is per-process state (process-pool children get
# an empty one) and the Tracer itself re-opens per pid after a fork.
_SHARED: Dict[str, Tracer] = {}
_SHARED_LOCK = threading.Lock()


def shared_tracer(directory: Union[str, Path]) -> Tracer:
    """The process-wide :class:`Tracer` for *directory* (one per process).

    Every component of one process that traces into the same directory —
    the service worker's ``job.run`` span, the campaign runner, the engines
    it drives — must share a single tracer so the per-pid span file has
    exactly one writer.
    """
    key = str(Path(directory))
    with _SHARED_LOCK:
        tracer = _SHARED.get(key)
        if tracer is None:
            tracer = _SHARED[key] = Tracer(directory)
        return tracer


def active_tracer(tracer: Optional[Union[Tracer, NullTracer]]) -> Optional[Tracer]:
    """Normalise a tracer argument: ``None`` / disabled tracers -> ``None``.

    Call sites hoist ``tracer = active_tracer(tracer)`` once and then guard
    with ``if tracer is not None`` so disabled tracing adds zero work.
    """
    if tracer is None or not getattr(tracer, "enabled", True):
        return None
    return tracer
