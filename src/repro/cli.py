"""Command-line interface: ``python -m repro <command>`` or ``repro-grid <command>``.

Commands
--------
``table1``    Reproduce Table I (m = 5, all 17 heuristics).
``table2``    Reproduce Table II (m = 10, best 8 heuristics).
``figure2``   Reproduce the Figure 2 series (%diff vs wmin, m = 10).
``campaign``  Run a declarative campaign from a spec file or named built-in,
              optionally against a persistent result store (resume) and as
              one shard of a multi-machine run.
``merge``     Combine shard stores into one store and report on it.
``report``    Render a result store as summary tables (text) or as a
              self-contained HTML dashboard with Monte Carlo bands and
              Gantt drill-downs (``--html``).
``demo``      Simulate one instance under one heuristic and print a Gantt chart.
``offline``   Solve a random small off-line instance exactly (Theorem 4.1 artefacts).
``serve``     Run the campaign service: an HTTP API + durable job queue
              over the same campaign runner (submit specs, share
              deduplicated runs, poll progress, fetch HTML reports).
``profile``   Summarise span traces written by ``campaign --trace`` or
              ``serve --trace``: wall-clock share per engine/allocator
              phase, memoisation hit rates, per-heuristic breakdowns.
``heuristics``  List the registered heuristics (family, parameters, description).
``models``    List the registered availability-model substrates.
``traces``    Recorded-trace pipeline: ``convert`` between log formats,
              ``stats`` for interval statistics, ``fit`` calibrated models
              with goodness-of-fit, ``sample`` bootstrap/fitted substrates.

Every table/figure command accepts ``--scale {smoke,reduced,paper}`` plus
individual overrides (``--scenarios``, ``--trials``, ``--wmin``, ``--ncom``,
``--cap``, ``--iterations``), ``--jobs`` for multi-process execution and
``--output`` to persist the raw campaign results as JSON.

``campaign`` is the resumable path: ``repro campaign --spec sweep.toml
--store runs/sweep`` records every finished (scenario, trial, heuristic)
cell durably, skips completed cells on restart, and with ``--shard i/N``
deterministically partitions the work so N machines can split one campaign
(recombine with ``repro merge``).
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Optional, Sequence, Tuple

from repro.analysis.group import ExpectationMode
from repro.exceptions import ExperimentError, ReproError
from repro.experiments.figures import figure2_series, format_figure2
from repro.experiments.io import save_campaign, save_results
from repro.experiments.metrics import summarize_results
from repro.experiments.report import format_store_status
from repro.experiments.runner import CellProgress, run_campaign, run_campaign_spec
from repro.experiments.scenarios import CampaignScale
from repro.experiments.spec import BUILTIN_SPEC_NAMES, builtin_spec, load_spec
from repro.experiments.store import ResultStore, merge_stores, store_status
from repro.experiments.tables import format_spec_report, format_summaries
from repro.availability.registry import AVAILABILITY_MODELS
from repro.scheduling.registry import (
    ALL_HEURISTICS,
    HEURISTICS,
    TABLE2_HEURISTICS,
    available_heuristics,
    create_scheduler,
)
from repro.utils.tables import format_table

__all__ = ["main", "build_parser"]


def _scale_from_args(args: argparse.Namespace) -> CampaignScale:
    presets = {
        "smoke": CampaignScale.smoke,
        "reduced": CampaignScale.reduced,
        "paper": CampaignScale.paper,
    }
    scale = presets[args.scale]()
    overrides = {}
    if args.scenarios is not None:
        overrides["scenarios_per_cell"] = args.scenarios
    if args.trials is not None:
        overrides["trials_per_scenario"] = args.trials
    if args.wmin:
        overrides["wmin_values"] = tuple(args.wmin)
    if args.ncom:
        overrides["ncom_values"] = tuple(args.ncom)
    if args.cap is not None:
        overrides["makespan_cap"] = args.cap
    if args.iterations is not None:
        overrides["iterations"] = args.iterations
    if overrides:
        scale = scale.with_overrides(**overrides)
    return scale


def _add_campaign_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale", choices=("smoke", "reduced", "paper"), default="reduced",
        help="campaign size preset (default: reduced)",
    )
    parser.add_argument("--scenarios", type=int, default=None, help="scenarios per grid cell")
    parser.add_argument("--trials", type=int, default=None, help="trials per scenario")
    parser.add_argument("--wmin", type=int, nargs="+", default=None, help="wmin values to sweep")
    parser.add_argument("--ncom", type=int, nargs="+", default=None, help="ncom values to sweep")
    parser.add_argument("--cap", type=int, default=None, help="makespan cap (slots)")
    parser.add_argument("--iterations", type=int, default=None, help="iterations per run")
    parser.add_argument("--jobs", type=int, default=1, help="worker processes (default 1)")
    parser.add_argument(
        "--estimator", choices=("paper", "renewal"), default="paper",
        help="E^(S)(W) estimator used by the heuristics",
    )
    parser.add_argument(
        "--heuristics", nargs="+", default=None, help="restrict to these heuristic names"
    )
    parser.add_argument(
        "--sampler", default="kernel", metavar="NAME",
        help="availability sampler: block, perslot or kernel (default: kernel; "
        "runtime-only, results are bit-identical)",
    )
    parser.add_argument("--output", default=None, help="write raw campaign results to this JSON file")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Scheduling Tightly-Coupled Applications on "
        "Heterogeneous Desktop Grids' (HCW 2013)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name, default_m, default_heuristics, help_text in (
        ("table1", 5, ALL_HEURISTICS, "reproduce Table I (m=5, all heuristics)"),
        ("table2", 10, TABLE2_HEURISTICS, "reproduce Table II (m=10, best heuristics)"),
        ("figure2", 10, TABLE2_HEURISTICS, "reproduce Figure 2 (%%diff vs wmin, m=10)"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        _add_campaign_arguments(sub)
        sub.set_defaults(default_m=default_m, default_heuristics=default_heuristics)

    campaign = subparsers.add_parser(
        "campaign",
        help="run a declarative campaign (spec file or built-in) with resume/sharding",
    )
    source = campaign.add_mutually_exclusive_group()
    source.add_argument("--spec", default=None, help="campaign spec file (TOML or JSON)")
    source.add_argument(
        "--builtin", default=None, help=f"named built-in spec ({', '.join(BUILTIN_SPEC_NAMES)})"
    )
    source.add_argument(
        "--list-builtins", action="store_true", help="list built-in spec names and exit"
    )
    campaign.add_argument(
        "--store", default=None,
        help="campaign directory for the persistent result store (enables resume)",
    )
    campaign.add_argument(
        "--backend", choices=("jsonl", "sqlite"), default=None,
        help="result store backend (default: jsonl for new stores, "
        "existing backend on resume)",
    )
    campaign.add_argument(
        "--shard", default="1/1", metavar="I/N",
        help="run only shard I of N (deterministic cell partition, default 1/1)",
    )
    campaign.add_argument("--jobs", type=int, default=1, help="worker processes (default 1)")
    campaign.add_argument(
        "--max-cells", type=int, default=None,
        help="stop after this many newly-run cells (smoke tests / simulated interrupts)",
    )
    campaign.add_argument(
        "--status", action="store_true",
        help="print the store's completion status and exit (requires --store)",
    )
    campaign.add_argument(
        "--report", choices=("tables", "none"), default="tables",
        help="print Table-I-style summaries after the run (default: tables)",
    )
    campaign.add_argument(
        "--sampler", default="kernel", metavar="NAME",
        help="availability sampler: block, perslot or kernel (default: kernel; "
        "runtime-only, results are bit-identical)",
    )
    campaign.add_argument(
        "--collect-metrics", action="store_true",
        help="sample per-slot metric series during every run (stored with the "
        "results; scalar results stay bit-identical)",
    )
    campaign.add_argument(
        "--metrics-stride", type=int, default=None, metavar="N",
        help="slots between metric samples (default: the spec's stride, 64)",
    )
    campaign.add_argument(
        "--trace", action="store_true",
        help="write span traces to <store>/telemetry (requires --store; "
        "inspect with `repro profile`; results stay bit-identical)",
    )
    campaign.add_argument(
        "--output", default=None, help="write the raw shard results to this JSON file"
    )

    merge = subparsers.add_parser(
        "merge", help="merge shard result stores into one store"
    )
    merge.add_argument("stores", nargs="+", help="shard store directories to merge")
    merge.add_argument("--output", required=True, help="destination store directory")
    merge.add_argument(
        "--backend", choices=("jsonl", "sqlite"), default=None,
        help="destination backend (default: backend of the first source)",
    )
    merge.add_argument(
        "--report", choices=("tables", "none"), default="tables",
        help="print Table-I-style summaries of the merged store (default: tables)",
    )

    report = subparsers.add_parser(
        "report",
        help="render a result store as text tables or an HTML dashboard",
    )
    report.add_argument("store", help="result store directory (from campaign --store or merge)")
    report.add_argument(
        "--html", action="store_true",
        help="write a self-contained HTML dashboard (Monte Carlo band plots, "
        "Gantt drill-down) instead of printing text tables",
    )
    report.add_argument(
        "--output", default=None, metavar="PATH",
        help="HTML destination (default: <store>/report.html)",
    )
    report.add_argument(
        "--gantt", type=int, default=2, metavar="N",
        help="runs to re-simulate for the Gantt drill-down (default 2, 0 disables)",
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the campaign service (HTTP API + durable job queue)",
    )
    serve.add_argument(
        "--root", default="service-root",
        help="durable service directory: jobs/, stores/ and logs/ live here "
        "(default: ./service-root)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8000, help="bind port (default 8000)")
    serve.add_argument(
        "--workers", type=int, default=2,
        help="concurrent campaign worker processes (default 2)",
    )
    serve.add_argument(
        "--backend", choices=("jsonl", "sqlite"), default="jsonl",
        help="result-store backend for submitted jobs (default jsonl)",
    )
    serve.add_argument(
        "--max-attempts", type=int, default=3,
        help="abnormal worker deaths per job before it is failed (default 3)",
    )
    serve.add_argument(
        "--poll-interval", type=float, default=0.2,
        help="dispatcher poll interval in seconds (default 0.2)",
    )
    serve.add_argument(
        "--framework", choices=("auto", "fastapi", "stdlib"), default="auto",
        help="HTTP stack: FastAPI/uvicorn when the 'service' extra is "
        "installed, stdlib WSGI otherwise (default auto)",
    )
    serve.add_argument(
        "--trace", action="store_true",
        help="emit job-lifecycle and worker span traces to <root>/telemetry "
        "(inspect with `repro profile`)",
    )

    profile = subparsers.add_parser(
        "profile",
        help="summarise span traces: where wall-clock time went, memo hit rates",
    )
    profile.add_argument(
        "path",
        help="a spans-*.jsonl file, a telemetry directory, or a store/service "
        "root written with --trace",
    )
    profile.add_argument(
        "--html", action="store_true",
        help="write a self-contained HTML profile instead of printing text",
    )
    profile.add_argument(
        "--output", default=None, metavar="PATH",
        help="HTML destination (default: <trace dir>/profile.html)",
    )

    demo = subparsers.add_parser("demo", help="simulate one instance and print a Gantt chart")
    demo.add_argument("--heuristic", default="Y-IE", help="heuristic name (default Y-IE)")
    demo.add_argument("--m", type=int, default=5, help="tasks per iteration")
    demo.add_argument("--ncom", type=int, default=10)
    demo.add_argument("--wmin", type=int, default=1)
    demo.add_argument("--processors", type=int, default=10)
    demo.add_argument("--iterations", type=int, default=3)
    demo.add_argument("--seed", type=int, default=1)
    demo.add_argument("--gantt-slots", type=int, default=80, help="slots of Gantt chart to print")
    demo.add_argument(
        "--sampler", default="kernel", metavar="NAME",
        help="availability sampler: block, perslot or kernel (default: kernel)",
    )

    offline = subparsers.add_parser("offline", help="solve a small random off-line instance exactly")
    offline.add_argument("--left", type=int, default=8, help="|V| (processors)")
    offline.add_argument("--right", type=int, default=10, help="|W| (time-slots)")
    offline.add_argument("--edge-probability", type=float, default=0.6)
    offline.add_argument("--a", type=int, default=3, help="workers required (m)")
    offline.add_argument("--b", type=int, default=3, help="common UP slots required (w)")
    offline.add_argument("--seed", type=int, default=0)

    heuristics = subparsers.add_parser(
        "heuristics",
        help="list registered heuristics with parameters and descriptions",
    )
    heuristics.add_argument(
        "--family", default=None,
        help="restrict to one family (baseline, passive, proactive, extension)",
    )
    heuristics.add_argument(
        "--names-only", action="store_true", help="print bare names, one per line"
    )

    models = subparsers.add_parser(
        "models",
        help="list registered availability-model substrates with parameters",
    )
    models.add_argument(
        "--names-only", action="store_true", help="print bare names, one per line"
    )
    models.add_argument(
        "--family", default=None,
        help="restrict to one family (synthetic, trace, hazard, ...)",
    )

    traces = subparsers.add_parser(
        "traces",
        help="recorded-trace pipeline: convert, stats, fit, sample",
    )
    traces_sub = traces.add_subparsers(dest="traces_command", required=True)

    def add_input_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("input", help="trace file (csv/jsonl/json/trace/txt) or catalog directory")
        sub.add_argument("--dataset", default=None, help="dataset name inside a catalog directory")
        sub.add_argument(
            "--slot", type=float, default=1.0,
            help="recorded time units per slot for CSV/JSONL inputs (default 1.0)",
        )
        sub.add_argument(
            "--gap", choices=("down", "hold", "error"), default="down",
            help="state for slots no interval covers (default down)",
        )
        sub.add_argument(
            "--overlap", choices=("error", "first", "last"), default="error",
            help="conflicting-interval policy (default error)",
        )
        sub.add_argument(
            "--horizon", type=int, default=None,
            help="force the trace length in slots (default: from the recording)",
        )

    convert = traces_sub.add_parser(
        "convert", help="re-encode a recorded trace in another format"
    )
    add_input_arguments(convert)
    convert.add_argument("--output", required=True, help="destination file")
    convert.add_argument(
        "--to", choices=("csv", "jsonl", "compact", "json"), default=None,
        help="output format (default: inferred from the output suffix)",
    )
    convert.add_argument(
        "--output-slot", type=float, default=1.0,
        help="time units per slot written to CSV/JSONL outputs (default 1.0)",
    )

    stats = traces_sub.add_parser(
        "stats", help="per-processor interval statistics of a recorded trace"
    )
    add_input_arguments(stats)
    stats.add_argument(
        "--censor-edges", action="store_true",
        help="exclude edge-censored first/last runs from mean interval lengths",
    )

    fit = traces_sub.add_parser(
        "fit", help="fit calibrated models and report goodness-of-fit"
    )
    add_input_arguments(fit)
    fit.add_argument(
        "--kind",
        choices=("markov", "semi-markov", "diurnal", "correlated", "degradation", "all"),
        default="all",
        help="model family to calibrate (default: all families)",
    )
    fit.add_argument(
        "--day-length", type=int, default=96,
        help="slots per day for the diurnal fit (default 96)",
    )
    fit.add_argument(
        "--phases", type=int, default=2,
        help="phase bins per day for the diurnal fit (default 2)",
    )
    fit.add_argument(
        "--prior", type=float, default=0.0,
        help="Laplace smoothing count for the markov/diurnal fits (default 0)",
    )
    fit.add_argument(
        "--pm-level", type=int, default=3,
        help="assumed preventive-maintenance wear level for the degradation fit (default 3)",
    )
    fit.add_argument(
        "--fail-level", type=int, default=6,
        help="assumed failure wear level for the degradation fit (default 6)",
    )

    sample = traces_sub.add_parser(
        "sample", help="generate a calibrated substrate from a recorded trace"
    )
    add_input_arguments(sample)
    sample.add_argument(
        "--kind",
        choices=("bootstrap", "markov", "semi-markov", "diurnal", "correlated", "degradation"),
        default="bootstrap",
        help="generator: bootstrap resampling or a fitted family (default bootstrap)",
    )
    sample.add_argument(
        "--processors", type=int, default=None,
        help="rows to generate (default: as recorded)",
    )
    sample.add_argument(
        "--length", type=int, default=None,
        help="slots to generate (default: the recorded horizon)",
    )
    sample.add_argument(
        "--block", type=int, default=None,
        help="block-bootstrap block length in slots (default: whole-row bootstrap)",
    )
    sample.add_argument("--seed", type=int, default=0, help="generation seed (default 0)")
    sample.add_argument("--output", required=True, help="destination trace file")
    sample.add_argument(
        "--to", choices=("csv", "jsonl", "compact", "json"), default=None,
        help="output format (default: inferred from the output suffix)",
    )
    sample.add_argument(
        "--output-slot", type=float, default=1.0,
        help="time units per slot written to CSV/JSONL outputs (default 1.0)",
    )
    sample.add_argument(
        "--day-length", type=int, default=96,
        help="slots per day for the diurnal fit (default 96)",
    )
    sample.add_argument(
        "--phases", type=int, default=2,
        help="phase bins per day for the diurnal fit (default 2)",
    )
    sample.add_argument(
        "--pm-level", type=int, default=3,
        help="assumed preventive-maintenance wear level for the degradation fit (default 3)",
    )
    sample.add_argument(
        "--fail-level", type=int, default=6,
        help="assumed failure wear level for the degradation fit (default 6)",
    )

    return parser


def _cmd_campaign(args: argparse.Namespace) -> int:
    scale = _scale_from_args(args)
    heuristics = args.heuristics or args.default_heuristics
    mode = ExpectationMode(args.estimator)
    m = args.default_m

    def progress(done: int, total: int) -> None:
        print(f"  scenario {done}/{total} done", file=sys.stderr, flush=True)

    campaign = run_campaign(
        m,
        heuristics=heuristics,
        scale=scale,
        label=args.command,
        n_jobs=args.jobs,
        mode=mode,
        progress=progress,
        sampler=args.sampler,
    )
    if args.output:
        path = save_campaign(campaign, args.output)
        print(f"raw results written to {path}", file=sys.stderr)

    if args.command == "figure2":
        series = figure2_series(campaign.results)
        print(format_figure2(series, heuristics=[h for h in heuristics if h in series]))
    else:
        summaries = summarize_results(campaign.results)
        title = "Table I (m = 5)" if args.command == "table1" else "Table II (m = 10)"
        print(format_summaries(summaries, title=f"{title} — {scale.num_instances()} instances"))
    return 0


def _parse_shard(text: str) -> Tuple[int, int]:
    match = re.fullmatch(r"(\d+)/(\d+)", text.strip())
    if not match:
        raise ExperimentError(f"--shard must look like I/N (e.g. 2/4), got {text!r}")
    return int(match.group(1)), int(match.group(2))


def _cmd_campaign_spec(args: argparse.Namespace) -> int:
    if args.list_builtins:
        for name in BUILTIN_SPEC_NAMES:
            spec = builtin_spec(name)
            print(f"{name}: {spec.num_cells()} cells "
                  f"(m={list(spec.m_values)}, {len(spec.heuristics)} heuristics)")
        return 0
    if args.spec:
        spec = load_spec(args.spec)
    elif args.builtin:
        spec = builtin_spec(args.builtin)
    else:
        print("campaign: one of --spec, --builtin or --list-builtins is required",
              file=sys.stderr)
        return 2
    shard = _parse_shard(args.shard)

    if args.status:
        if not args.store:
            print("campaign: --status requires --store", file=sys.stderr)
            return 2
        # A read-only query: open the existing store (no directory creation).
        store = ResultStore.open(args.store)
        if store.spec.spec_hash() != spec.spec_hash():
            print(
                f"campaign: store {args.store} belongs to a different campaign "
                f"(spec hash mismatch)",
                file=sys.stderr,
            )
            store.close()
            return 2
        print(format_store_status(store_status(store)))
        store.close()
        return 0

    if args.trace and not args.store:
        print("campaign: --trace requires --store", file=sys.stderr)
        return 2

    store = None
    trace_dir = None
    if args.store:
        store = ResultStore.create(args.store, spec, backend=args.backend)
        if args.trace:
            trace_dir = str(Path(args.store) / "telemetry")

    def cell_progress(event: CellProgress) -> None:
        if event.skipped:
            print(
                f"  resuming: {event.done}/{event.total} cells already in store",
                file=sys.stderr, flush=True,
            )
        else:
            print(
                f"  [{event.done}/{event.total}] {event.scenario} "
                f"trial {event.trial} {event.heuristic}",
                file=sys.stderr, flush=True,
            )

    try:
        results = run_campaign_spec(
            spec,
            store=store,
            shard=shard,
            n_jobs=args.jobs,
            max_cells=args.max_cells,
            cell_progress=cell_progress,
            sampler=args.sampler,
            # None defers to the spec's own settings.
            collect_metrics=True if args.collect_metrics else None,
            metrics_stride=args.metrics_stride,
            trace_dir=trace_dir,
        )
    finally:
        if store is not None:
            store.close()
    if trace_dir is not None:
        print(
            f"span traces in {trace_dir} (summarise with `repro profile {args.store}`)",
            file=sys.stderr,
        )
    if args.output:
        path = save_results(results, args.output, label=spec.name)
        print(f"raw results written to {path}", file=sys.stderr)
    if args.report == "tables":
        if shard != (1, 1):
            print(
                "shard results are partial; run `repro merge` over all shards "
                "for comparable tables",
                file=sys.stderr,
            )
        else:
            print(format_spec_report(results, spec))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    store = ResultStore.open(args.store)
    try:
        results = store.results()
        spec = store.spec
    finally:
        store.close()
    if not results:
        print(f"Campaign {spec.name!r}: no completed cells yet (store {args.store})")
        return 0
    if not args.html:
        print(format_spec_report(results, spec))
        return 0
    from pathlib import Path

    from repro.metrics.html import render_html_report

    html = render_html_report(results, spec, gantt_runs=args.gantt)
    destination = Path(args.output) if args.output else Path(args.store) / "report.html"
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(html, encoding="utf-8")
    print(f"report written to {destination}")
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    store = merge_stores(args.stores, args.output, backend=args.backend)
    status = store_status(store)
    print(format_store_status(status))
    if args.report == "tables":
        print()
        print(format_spec_report(store.results(), store.spec))
    store.close()
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.application import Application
    from repro.platform import PlatformSpec, paper_platform
    from repro.simulation import SimulationEngine, render_gantt

    spec = PlatformSpec(num_processors=args.processors, ncom=args.ncom, wmin=args.wmin)
    platform = paper_platform(spec, num_tasks=args.m, seed=args.seed)
    application = Application(tasks_per_iteration=args.m, iterations=args.iterations)
    scheduler = create_scheduler(args.heuristic)
    engine = SimulationEngine(
        platform, application, scheduler, seed=args.seed, max_slots=200_000,
        record_activity=True, record_events=True, sampler=args.sampler,
    )
    result = engine.run()
    print(result.describe())
    if engine.activity_matrix is not None:
        window = min(args.gantt_slots, engine.activity_matrix.shape[1])
        print()
        print(render_gantt(engine.activity_matrix, engine.state_matrix, end=window))
    return 0


def _cmd_offline(args: argparse.Namespace) -> int:
    from repro.offline import (
        ENCDInstance,
        encd_to_offline_mu1,
        encd_to_offline_mu_inf,
        solve_encd_bruteforce,
        solve_offline_mu1,
        solve_offline_mu_inf,
    )

    instance = ENCDInstance.random(
        args.left, args.right, args.edge_probability, args.a, args.b, seed=args.seed
    )
    biclique = solve_encd_bruteforce(instance)
    mu1 = solve_offline_mu1(encd_to_offline_mu1(instance))
    mu_inf = solve_offline_mu_inf(encd_to_offline_mu_inf(instance))
    rows = [
        ["ENCD bi-clique (a, b)", "feasible" if biclique else "infeasible"],
        ["OFF-LINE-COUPLED (mu=1)", "feasible" if mu1 else "infeasible"],
        ["OFF-LINE-COUPLED (mu=inf)", "feasible" if mu_inf else "infeasible"],
    ]
    print(format_table(rows, headers=["problem", "answer"], align_right=[False, False]))
    if mu1:
        print(f"mu=1 solution: workers={sorted(mu1.workers)}, slots={list(mu1.slots)}")
    if mu_inf:
        print(
            f"mu=inf solution: workers={sorted(mu_inf.workers)}, "
            f"tasks/worker={mu_inf.tasks_per_worker}, {mu_inf.num_slots} slots"
        )
    return 0


def _parameters_column(info) -> str:
    if not info.parameters:
        return "-"
    fragments = []
    for parameter in info.parameters:
        text = parameter.describe()
        if parameter.aliases:
            text += f" (alias: {', '.join(parameter.aliases)})"
        fragments.append(text)
    return "; ".join(fragments)


def _cmd_heuristics(args: argparse.Namespace) -> int:
    if args.family is not None and args.family not in HEURISTICS.families():
        print(
            f"heuristics: unknown family {args.family!r}; "
            f"expected one of {HEURISTICS.families()}",
            file=sys.stderr,
        )
        return 2
    names = available_heuristics(family=args.family)
    if args.names_only:
        for name in names:
            print(name)
        return 0
    rows = []
    for name in names:
        info = HEURISTICS.get(name)
        rows.append(
            [
                info.name,
                info.family,
                "paper" if info.paper else "extension",
                _parameters_column(info),
                info.description,
            ]
        )
    print(format_table(
        rows,
        headers=["name", "family", "origin", "parameters", "description"],
        align_right=[False] * 5,
    ))
    print()
    print('Parameterized expressions are accepted wherever a heuristic name is:')
    print('e.g. "THRESHOLD-IE(tau=0.5)", "STICKY(patience=3)", "FAST(k=8)".')
    return 0


def _parameter_default_text(parameter) -> str:
    if parameter.required:
        return "(required)"
    default = parameter.default
    if isinstance(default, tuple):
        # [low, high] per-processor ranges, in the spec-file spelling.
        return "[" + ", ".join(repr(value) for value in default) + "]"
    return repr(default)


def _cmd_models(args: argparse.Namespace) -> int:
    if args.family is not None and args.family not in AVAILABILITY_MODELS.families():
        print(
            f"models: unknown family {args.family!r}; "
            f"expected one of {AVAILABILITY_MODELS.families()}",
            file=sys.stderr,
        )
        return 2
    infos = AVAILABILITY_MODELS.infos(family=args.family)
    if args.names_only:
        for info in infos:
            print(info.name)
        return 0
    for info in infos:
        print(f"{info.name} [{info.family}] - {info.description}")
        if not info.parameters:
            print("  (no parameters)")
        else:
            rows = [
                [
                    parameter.name,
                    parameter.kind.__name__,
                    _parameter_default_text(parameter),
                    ", ".join(parameter.aliases) if parameter.aliases else "-",
                    parameter.description,
                ]
                for parameter in info.parameters
            ]
            table = format_table(
                rows,
                headers=["parameter", "type", "default", "aliases", "description"],
                align_right=[False] * 5,
            )
            print("\n".join("  " + line for line in table.splitlines()))
        print()
    print("Numeric parameters accept a scalar or a [low, high] per-processor range")
    print('in campaign specs, e.g. [availability] kind = "semi-markov", mean_up = [25.0, 60.0].')
    print('Expression spellings work anywhere a kind is accepted, e.g.')
    print('"correlated(domains=4, rate=0.002)" or "degradation(wear_rate=0.05)".')
    return 0


def _load_traces_input(args: argparse.Namespace):
    """Load the trace named by a ``repro traces`` subcommand's arguments."""
    from pathlib import Path

    from repro.traces.formats import TraceCatalog, load_trace

    path = Path(args.input)
    if path.is_dir():
        catalog = TraceCatalog(path)
        if args.dataset is None:
            raise ExperimentError(
                f"{path} is a catalog directory: pass --dataset "
                f"(available: {catalog.names()})"
            )
        defaults = {"slot": args.slot, "gap": args.gap, "overlap": args.overlap}
        if args.horizon is not None:
            defaults["horizon"] = args.horizon
        return catalog.load(args.dataset, defaults=defaults)
    return load_trace(
        path,
        slot_duration=args.slot,
        gap=args.gap,
        overlap=args.overlap,
        horizon=args.horizon,
    )


def _cmd_traces(args: argparse.Namespace) -> int:
    from repro.exceptions import ReproError
    from repro.traces.formats import write_trace

    try:
        trace = _load_traces_input(args)

        if args.traces_command == "convert":
            path = write_trace(
                trace, args.output, format=args.to, slot_duration=args.output_slot
            )
            print(
                f"{args.input}: {trace.num_processors} processors x "
                f"{trace.horizon} slots written to {path}"
            )
            return 0

        if args.traces_command == "stats":
            return _cmd_traces_stats(trace, args)

        if args.traces_command == "fit":
            return _cmd_traces_fit(trace, args)

        # sample
        from repro.traces.fit import FIT_KINDS
        from repro.traces.resample import bootstrap_trace, fitted_trace

        for name in ("processors", "length"):
            value = getattr(args, name)
            if value is not None and value < 1:
                raise ExperimentError(f"--{name} must be >= 1, got {value}")
        processors = trace.num_processors if args.processors is None else args.processors
        length = trace.horizon if args.length is None else args.length
        if args.kind == "bootstrap":
            generated = bootstrap_trace(
                trace, processors, args.seed, block_length=args.block, horizon=length
            )
        else:
            assert args.kind in FIT_KINDS
            options = {}
            if args.kind == "diurnal":
                options = {"day_length": args.day_length, "num_phases": args.phases}
            if args.kind == "degradation":
                options = {"pm_level": args.pm_level, "fail_level": args.fail_level}
            generated = fitted_trace(
                args.kind, trace, processors, length, args.seed, **options
            )
        path = write_trace(
            generated, args.output, format=args.to, slot_duration=args.output_slot
        )
        print(
            f"sampled {generated.num_processors} x {generated.horizon} slots "
            f"({args.kind}) to {path}"
        )
        return 0
    except (ExperimentError, ReproError) as error:
        print(f"traces {args.traces_command}: {error}", file=sys.stderr)
        return 2


def _cmd_traces_stats(trace, args: argparse.Namespace) -> int:
    from repro.availability.statistics import TraceStatistics

    rows = []
    for index in range(trace.num_processors):
        stats = TraceStatistics.from_sequence(
            trace.row(index), censor_edges=args.censor_edges
        )
        rows.append(
            [
                f"P{index}",
                str(stats.length),
                f"{100 * stats.up_fraction:.1f}%",
                f"{100 * stats.reclaimed_fraction:.1f}%",
                f"{100 * stats.down_fraction:.1f}%",
                f"{stats.mean_up_interval:.1f}",
                f"{stats.mean_reclaimed_interval:.1f}",
                f"{stats.mean_down_interval:.1f}",
                str(stats.num_failures),
            ]
        )
    print(format_table(
        rows,
        headers=["proc", "slots", "up", "recl", "down",
                 "mean up", "mean recl", "mean down", "failures"],
        align_right=[False] + [True] * 8,
    ))
    # Pooled occupancy over the whole matrix (never flatten rows into one
    # sequence: row boundaries are not transitions).
    import numpy as np

    states = trace.states
    fractions = [float(np.mean(states == code)) for code in range(3)]
    print(
        f"\npooled: {trace.num_processors} processors x {trace.horizon} slots, "
        f"up {100 * fractions[0]:.1f}%, reclaimed "
        f"{100 * fractions[1]:.1f}%, down {100 * fractions[2]:.1f}%"
    )
    if args.censor_edges:
        print("(mean intervals exclude edge-censored first/last runs)")
    return 0


def _cmd_traces_fit(trace, args: argparse.Namespace) -> int:
    from repro.traces.fit import FIT_KINDS, TraceFitError, fit_model

    kinds = FIT_KINDS if args.kind == "all" else (args.kind,)
    rows = []
    for kind in kinds:
        options = {}
        if kind in ("markov", "diurnal"):
            options["prior"] = args.prior
        if kind == "diurnal":
            options["day_length"] = args.day_length
            options["num_phases"] = args.phases
        if kind == "degradation":
            options["pm_level"] = args.pm_level
            options["fail_level"] = args.fail_level
        try:
            fitted = fit_model(kind, trace, **options)
        except TraceFitError as error:
            # Structural families (correlated outage domains, wear cycles)
            # legitimately fail on recordings without that structure: report
            # the reason as a row instead of aborting the whole table.
            rows.append([kind, "-", "-", "-", "-", "-", f"not fitted: {error}"])
            continue

        def ks_text(value: float) -> str:
            return "-" if value != value else f"{value:.3f}"

        rows.append(
            [
                kind,
                f"{fitted.log_likelihood:.1f}",
                str(fitted.num_transitions),
                ks_text(fitted.ks["UP"]),
                ks_text(fitted.ks["RECLAIMED"]),
                ks_text(fitted.ks["DOWN"]),
                fitted.model.describe(),
            ]
        )
    print(format_table(
        rows,
        headers=["kind", "log-lik", "transitions", "KS up", "KS recl", "KS down", "fitted model"],
        align_right=[False, True, True, True, True, True, False],
    ))
    print()
    print("KS: Kolmogorov-Smirnov distance between the empirical interval-length")
    print("distribution of each state and the fitted sojourn law (lower is better).")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.app import ServiceConfig, serve

    return serve(ServiceConfig(
        root=args.root,
        host=args.host,
        port=args.port,
        workers=args.workers,
        backend=args.backend,
        max_attempts=args.max_attempts,
        poll_interval=args.poll_interval,
        framework=args.framework,
        trace=args.trace,
    ))


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.telemetry import format_profile, profile_trace, render_profile_html

    report = profile_trace(args.path)
    if not args.html:
        print(format_profile(report))
        return 0
    html = render_profile_html(report)
    if args.output:
        destination = Path(args.output)
    else:
        # Default next to the trace source (inside it for directories).
        source = Path(args.path)
        base = source if source.is_dir() else source.parent
        destination = base / "profile.html"
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(html, encoding="utf-8")
    print(f"profile written to {destination}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command in (
        "table1", "table2", "figure2", "campaign", "merge", "report", "demo",
        "serve", "profile",
    ):
        handler = {
            "campaign": _cmd_campaign_spec,
            "merge": _cmd_merge,
            "report": _cmd_report,
            "demo": _cmd_demo,
            "serve": _cmd_serve,
            "profile": _cmd_profile,
        }.get(args.command, _cmd_campaign)
        try:
            return handler(args)
        except ReproError as error:
            print(f"{args.command}: {error}", file=sys.stderr)
            return 2
    if args.command == "offline":
        return _cmd_offline(args)
    if args.command == "heuristics":
        return _cmd_heuristics(args)
    if args.command == "models":
        return _cmd_models(args)
    if args.command == "traces":
        return _cmd_traces(args)
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
