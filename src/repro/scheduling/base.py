"""Scheduler interface and the per-slot observation it receives.

The simulation engine is scheduler-agnostic: at every slot it hands the
scheduler an :class:`Observation` (the processor states of the slot plus the
relevant runtime information) and expects a
:class:`~repro.application.configuration.Configuration` back.  Returning the
current configuration unchanged means "keep going"; returning a different one
triggers a reconfiguration (with the data-retention rules of Section III-C
applied by the engine); returning an empty configuration means "wait this
slot out" (e.g. not enough UP workers to place all ``m`` tasks).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

import numpy as np

from repro.analysis.cache import AnalysisContext
from repro.application.application import Application
from repro.application.configuration import Configuration
from repro.platform.platform import Platform
from repro.types import UP, ProcessorState

__all__ = ["Observation", "Scheduler"]


@dataclass(frozen=True)
class Observation:
    """Everything a scheduler may look at when choosing ``config(t)``.

    Only *on-line* information is exposed: current states, past-derived
    runtime bookkeeping, but never future availability.
    """

    #: Current time-slot ``t``.
    slot: int
    #: Per-worker availability states at slot ``t`` (int codes, see ProcessorState).
    states: np.ndarray
    #: The configuration carried over from the previous slot, with DOWN
    #: workers already removed by the engine.
    current_configuration: Configuration
    #: Index of the iteration currently being executed (0-based).
    iteration_index: int
    #: Slots elapsed since the start of the current iteration (the ``t`` of the yield).
    iteration_elapsed: int
    #: Completed slots of simultaneous computation in the current iteration.
    progress: int
    #: Whether an enrolled worker went DOWN at this slot (iteration was restarted).
    failure: bool
    #: Whether this slot is the first of a new iteration.
    new_iteration: bool
    #: Workers currently holding the application program.
    has_program: FrozenSet[int]
    #: Usable data messages already received, per enrolled worker.
    data_received: Dict[int, int] = field(default_factory=dict)
    #: Remaining communication slots per enrolled worker.
    comm_remaining: Dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def state_of(self, worker: int) -> ProcessorState:
        return ProcessorState(int(self.states[worker]))

    def up_workers(self) -> List[int]:
        """Ids of the workers that are UP at this slot."""
        return [int(q) for q in np.flatnonzero(self.states == int(UP))]

    def is_up(self, worker: int) -> bool:
        return int(self.states[worker]) == int(UP)

    def needs_new_configuration(self) -> bool:
        """Whether a passive scheduler must (re)build the configuration now.

        True at the start of an iteration, after a failure, or whenever the
        carried-over configuration is empty (e.g. the previous slots had too
        few UP workers to place all tasks).
        """
        return self.new_iteration or self.failure or self.current_configuration.is_empty()


class Scheduler(abc.ABC):
    """Abstract on-line scheduler.

    Life-cycle: the engine calls :meth:`bind` once per run (providing the
    platform, the application, a shared :class:`AnalysisContext` and a
    dedicated random generator), then :meth:`select` once per slot.
    """

    #: Human-readable identifier (e.g. ``"IE"``, ``"Y-IE"``, ``"RANDOM"``).
    name: str = "scheduler"

    #: Declarative contract: a scheduler sets this to True to promise that
    #: :meth:`select` returns ``observation.current_configuration`` unchanged
    #: (and draws nothing from its generator) on every slot where
    #: ``observation.needs_new_configuration()`` is false.  The simulation
    #: engine exploits the promise to skip the observation round-trip and to
    #: fast-forward through uneventful computation slots; the results are
    #: bit-identical either way.  Schedulers that may reconfigure
    #: spontaneously (e.g. the proactive heuristics) must leave it False.
    passive_between_rebuilds: bool = False

    def __init__(self) -> None:
        self.platform: Optional[Platform] = None
        self.application: Optional[Application] = None
        self.analysis: Optional[AnalysisContext] = None
        self.rng: Optional[np.random.Generator] = None

    # ------------------------------------------------------------------
    def bind(
        self,
        platform: Platform,
        application: Application,
        analysis: AnalysisContext,
        rng: np.random.Generator,
    ) -> None:
        """Attach the scheduler to a run.  Subclasses extending this must call super()."""
        self.platform = platform
        self.application = application
        self.analysis = analysis
        self.rng = rng
        self.reset()

    def reset(self) -> None:
        """Clear per-run internal state (called by :meth:`bind`)."""

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def select(self, observation: Observation) -> Configuration:
        """Return ``config(t)`` for the slot described by *observation*."""

    # ------------------------------------------------------------------
    def _require_bound(self) -> None:
        if self.platform is None or self.application is None:
            raise RuntimeError(
                f"scheduler {self.name!r} must be bound to a platform/application before use"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"
