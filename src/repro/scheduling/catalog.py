"""The heuristic component registry instance and its registration decorator.

Kept in its own module (rather than :mod:`repro.scheduling.registry`) so
that heuristic implementation modules can self-register with
:func:`register_heuristic` without importing the registry's public API —
which itself imports the implementation modules.  User code should import
from :mod:`repro.scheduling.registry` (or :mod:`repro.api`); this module is
the plumbing.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

from repro.components import ComponentRegistry

__all__ = [
    "HEURISTICS",
    "register_heuristic",
    "FAMILY_BASELINE",
    "FAMILY_PASSIVE",
    "FAMILY_PROACTIVE",
    "FAMILY_EXTENSION",
]

#: Heuristic family labels (the paper's taxonomy plus this repo's extensions).
FAMILY_BASELINE = "baseline"
FAMILY_PASSIVE = "passive"
FAMILY_PROACTIVE = "proactive"
FAMILY_EXTENSION = "extension"

#: The single source of truth for every scheduler construction path:
#: ``create_scheduler``, CLI listings, campaign-spec validation and the
#: ``repro.api`` facade all query this registry.
HEURISTICS = ComponentRegistry("heuristic")


def register_heuristic(
    name: str,
    factory: Optional[Callable] = None,
    *,
    family: str,
    description: str = "",
    paper: bool = False,
    aliases: Optional[Mapping[str, str]] = None,
):
    """Register a scheduler factory under a heuristic name (decorator-friendly).

    ``factory`` may be a :class:`~repro.scheduling.base.Scheduler` subclass
    or any callable returning one; its keyword parameters (with scalar type
    annotations) become the expression grammar's accepted arguments, so
    ``@register_heuristic("THRESHOLD-IE", ...)`` on a class with
    ``__init__(self, threshold: float = 0.5)`` makes
    ``"THRESHOLD-IE(threshold=0.7)"`` a valid heuristic expression.
    ``aliases`` maps alternative argument spellings to parameter names.
    """
    return HEURISTICS.register(
        name,
        factory,
        family=family,
        description=description,
        paper=paper,
        aliases=aliases,
    )
