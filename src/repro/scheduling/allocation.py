"""Incremental greedy task allocation (the core of the passive heuristics).

Section VI-A: "Passive heuristics assign tasks to workers, which must be in
the UP state, one by one until m tasks are assigned.  Each task is assigned
to a worker according to a criterion that defines the heuristic."

The allocator therefore loops ``m`` times; at each step it considers every UP
worker with remaining capacity, evaluates the configuration obtained by
giving that worker one more task (probability of success, expected completion
time, yield, apparent yield — via the Section V machinery), and commits the
task to the worker whose configuration scores best under the heuristic's
criterion.

The same allocator also serves the proactive heuristics, which rebuild a
candidate configuration "from scratch ... as if no task were allocated to any
worker" at every slot.

Implementation note — this sits on the simulator's hottest path (a proactive
heuristic performs ``m × |UP|`` candidate evaluations *per slot*), so the
inner loop computes the criterion values directly from the cached
:class:`~repro.analysis.group.GroupAnalysis` /
:class:`~repro.analysis.single.WorkerAnalysis` quantities instead of
materialising a :class:`Configuration` and a
:class:`~repro.analysis.evaluation.ConfigurationEstimate` per candidate.  The
formulas are exactly those of :mod:`repro.analysis.evaluation` and
:mod:`repro.analysis.communication`; ``tests/scheduling/test_allocation.py``
cross-checks the fast path against the reference evaluation.
"""

from __future__ import annotations

import math
import time
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Sequence

from repro.analysis.cache import AnalysisContext
from repro.analysis.criteria import Criterion
from repro.application.configuration import Configuration
from repro.platform.platform import Platform

__all__ = ["IncrementalAllocator"]


class IncrementalAllocator:
    """Greedy, one-task-at-a-time configuration builder.

    Parameters
    ----------
    criterion:
        The figure of merit optimised at every step (defines IP / IE / IY /
        IAY).
    analysis:
        The platform's cached analytical machinery.
    platform:
        The platform (speeds, capacities, communication constants).
    num_tasks:
        ``m`` — how many tasks to place.
    """

    def __init__(
        self,
        criterion: Criterion,
        analysis: AnalysisContext,
        platform: Platform,
        num_tasks: int,
        *,
        batched: bool = True,
    ) -> None:
        if num_tasks < 1:
            raise ValueError(f"num_tasks must be >= 1, got {num_tasks}")
        self.criterion = criterion
        self.analysis = analysis
        self.platform = platform
        self.num_tasks = int(num_tasks)
        self.batched = bool(batched)
        self._speeds = {q: platform.processor(q).speed for q in range(platform.num_processors)}
        self._capacities = {
            q: platform.processor(q).capacity for q in range(platform.num_processors)
        }

    # ------------------------------------------------------------------
    def allocate(
        self,
        up_workers: Sequence[int],
        *,
        has_program: Iterable[int] = (),
        received_data: Optional[Mapping[int, int]] = None,
        elapsed: int = 0,
    ) -> Optional[Configuration]:
        """Build a full ``m``-task configuration, or return ``None`` if impossible.

        Parameters
        ----------
        up_workers:
            Workers eligible for enrolment (must be UP at the current slot).
        has_program:
            Workers that already hold the application program (affects the
            communication estimate).
        received_data:
            Data messages already received and reusable, per worker (only
            meaningful when rebuilding after a failure, per Section VI-A).
        elapsed:
            Slots already spent in the current iteration (enters the yield
            criteria).

        When the shared :class:`AnalysisContext` carries a tracer
        (``analysis.tracer``), every call accumulates into one aggregated
        ``allocate`` span (duration, ``calls``, memo hit/miss counters,
        flushed at the end of the engine run); with no tracer this method
        takes the exact pre-telemetry code path.
        """
        up_workers = sorted(set(int(w) for w in up_workers))
        if not up_workers:
            return None
        capacities = self._capacities
        if sum(capacities[w] for w in up_workers) < self.num_tasks:
            return None
        tracer = getattr(self.analysis, "tracer", None)
        if tracer is None:
            if self.batched:
                return self._allocate_batched(
                    up_workers,
                    has_program=has_program,
                    received_data=received_data,
                    elapsed=elapsed,
                )
            return self._allocate_scalar(
                up_workers,
                has_program=has_program,
                received_data=received_data,
                elapsed=elapsed,
            )
        begin = time.perf_counter_ns()
        if not self.batched:
            result = self._allocate_scalar(
                up_workers,
                has_program=has_program,
                received_data=received_data,
                elapsed=elapsed,
            )
            tracer.accumulate(
                "allocate",
                begin,
                counters={"up_workers": len(up_workers)},
                criterion=self.criterion.name,
                batched=False,
            )
            return result
        stats = {
            "steps": 0,
            "candidates": 0,
            "single_time_misses": 0,
            "survival_misses": 0,
            "computation_misses": 0,
        }
        result = self._allocate_batched(
            up_workers,
            has_program=has_program,
            received_data=received_data,
            elapsed=elapsed,
            stats=stats,
        )
        # The computation memo is probed exactly once per candidate, so
        # hits are the complement of the recorded misses.
        stats["computation_hits"] = stats["candidates"] - stats["computation_misses"]
        stats["up_workers"] = len(up_workers)
        tracer.accumulate(
            "allocate",
            begin,
            counters=stats,
            criterion=self.criterion.name,
            batched=True,
        )
        return result

    # ------------------------------------------------------------------
    def _allocate_scalar(
        self,
        up_workers: Sequence[int],
        *,
        has_program: Iterable[int] = (),
        received_data: Optional[Mapping[int, int]] = None,
        elapsed: int = 0,
    ) -> Optional[Configuration]:
        """Reference per-candidate evaluation loop (the pre-batching path).

        Kept verbatim as the ground truth the batched path is differentially
        tested against (``tests/scheduling/test_batch_equivalence.py``).
        """
        capacities = self._capacities
        program_set = frozenset(int(w) for w in has_program)
        reusable = {int(k): int(v) for k, v in received_data.items()} if received_data else {}
        tprog = self.platform.tprog
        tdata = self.platform.tdata
        ncom = self.platform.ncom
        criterion_name = self.criterion.name
        higher_better = self.criterion.higher_is_better
        group = self.analysis.group
        mode = self.analysis.mode
        context = self.analysis

        # Mutable running state of the greedy allocation.
        allocation: Dict[int, int] = {}
        worker_set: FrozenSet[int] = frozenset()
        loads: Dict[int, int] = {}
        comm_slots: Dict[int, int] = {}
        max_load = 0
        total_comm = 0
        # Per-worker single-worker expected communication times (for the max term).
        per_worker_comm_time: Dict[int, float] = {}

        def candidate_comm_slots(worker: int, tasks: int) -> int:
            already = min(reusable.get(worker, 0), tasks)
            program_cost = 0 if worker in program_set else tprog
            return program_cost + (tasks - already) * tdata

        for _ in range(self.num_tasks):
            best_worker: Optional[int] = None
            best_value = -math.inf if higher_better else math.inf
            for worker in up_workers:
                current_tasks = allocation.get(worker, 0)
                if current_tasks >= capacities[worker]:
                    continue
                new_tasks = current_tasks + 1
                # --- workload of the candidate configuration -------------
                new_load = new_tasks * self._speeds[worker]
                workload = new_load if new_load > max_load else max_load
                # --- communication estimate -------------------------------
                new_comm_q = candidate_comm_slots(worker, new_tasks)
                old_comm_q = comm_slots.get(worker, 0)
                candidate_total_comm = total_comm - old_comm_q + new_comm_q
                if worker in worker_set:
                    candidate_set = worker_set
                    num_workers = len(worker_set)
                else:
                    candidate_set = worker_set | {worker}
                    num_workers = len(worker_set) + 1
                comm_time = context.single_expected_time(worker, new_comm_q)
                for other, slots in comm_slots.items():
                    if other == worker:
                        continue
                    other_time = per_worker_comm_time.get(other, 0.0)
                    if other_time > comm_time:
                        comm_time = other_time
                if num_workers > ncom:
                    bandwidth_bound = candidate_total_comm / ncom
                    if bandwidth_bound > comm_time:
                        comm_time = bandwidth_bound
                if candidate_total_comm > 0:
                    duration = int(math.ceil(comm_time))
                    comm_probability = 1.0
                    # Ascending worker order: the canonical product order of the
                    # analysis layer (frozenset iteration order depends on the
                    # set's construction history, which would make the value an
                    # accident of the greedy path rather than a function of the
                    # candidate set).
                    for other in sorted(candidate_set):
                        comm_probability *= context.no_down_probability(other, duration)
                else:
                    comm_time = 0.0
                    comm_probability = 1.0
                # --- computation estimate ---------------------------------
                quantities = group.quantities(candidate_set)
                comp_probability = quantities.success_probability(workload)
                comp_time = quantities.expected_time(workload, mode)
                # --- criterion value ---------------------------------------
                probability = comm_probability * comp_probability
                expected = comm_time + comp_time
                if criterion_name == "P":
                    value = probability
                elif criterion_name == "E":
                    value = expected
                elif criterion_name == "Y":
                    denominator = elapsed + expected
                    value = probability / denominator if denominator > 0 else math.inf
                else:  # "AY"
                    value = probability / expected if expected > 0 else math.inf

                if best_worker is None:
                    best_worker = worker
                    best_value = value
                elif higher_better:
                    if value > best_value:
                        best_worker = worker
                        best_value = value
                else:
                    if value < best_value:
                        best_worker = worker
                        best_value = value

            if best_worker is None:
                return None  # defensive: cannot happen after the capacity sum check
            # Commit the task to the winning worker and update the running state.
            new_tasks = allocation.get(best_worker, 0) + 1
            allocation[best_worker] = new_tasks
            worker_set = worker_set | {best_worker}
            loads[best_worker] = new_tasks * self._speeds[best_worker]
            if loads[best_worker] > max_load:
                max_load = loads[best_worker]
            new_comm_q = candidate_comm_slots(best_worker, new_tasks)
            total_comm += new_comm_q - comm_slots.get(best_worker, 0)
            comm_slots[best_worker] = new_comm_q
            per_worker_comm_time[best_worker] = context.single_expected_time(
                best_worker, new_comm_q
            )

        return Configuration(allocation)

    # ------------------------------------------------------------------
    def _allocate_batched(
        self,
        up_workers: Sequence[int],
        *,
        has_program: Iterable[int] = (),
        received_data: Optional[Mapping[int, int]] = None,
        elapsed: int = 0,
        stats: Optional[Dict[str, int]] = None,
    ) -> Optional[Configuration]:
        """Frontier-at-a-time evaluation (bit-identical to the scalar path).

        At every greedy step the whole candidate frontier (one candidate per
        eligible worker) is prepared first: uncached group quantities are
        computed in one :meth:`AnalysisContext.prefetch_groups` batch, the
        "slowest other transfer" term of the communication estimate comes
        from a per-step top-two precomputation instead of an inner loop (the
        max of a set of floats does not depend on evaluation order), and the
        per-candidate survival products / computation estimates go through
        the :class:`AnalysisContext` memos keyed on (frozen set, duration) and
        (frozen set, workload).  The memo dictionaries are probed directly
        (``AnalysisContext.computation_cache`` and friends) so a cache hit —
        the steady state of a long simulation — costs one dictionary lookup
        instead of a method call; misses fall through to the owning
        :class:`AnalysisContext` methods, which populate the same memos.
        Every candidate value is produced by the same scalar float
        expressions as ``_allocate_scalar``, so the selected worker — and
        therefore the returned configuration — is identical.

        *stats*, when given (only by the traced :meth:`allocate` wrapper),
        accumulates greedy-step / candidate counts plus memo misses.  The
        miss increments live inside the already-slow cache-miss branches and
        the per-step increments are two dict adds per greedy step, so the
        counters never touch the per-candidate hot path; with ``stats=None``
        the loop is byte-for-byte the untraced one.
        """
        capacities = self._capacities
        speeds = self._speeds
        program_set = frozenset(int(w) for w in has_program)
        reusable = {int(k): int(v) for k, v in received_data.items()} if received_data else {}
        tprog = self.platform.tprog
        tdata = self.platform.tdata
        ncom = self.platform.ncom
        criterion_name = self.criterion.name
        higher_better = self.criterion.higher_is_better
        context = self.analysis
        # Hot locals: bound methods and raw memo probes for the inner loop.
        ceil = math.ceil
        inf = math.inf
        prefetch_groups = context.prefetch_groups
        single_expected_time = context.single_expected_time
        comm_survival = context.comm_survival
        computation = context.computation
        single_time_get = context.single_time_cache.get
        survival_get = context.survival_cache.get
        computation_get = context.computation_cache.get
        reusable_get = reusable.get

        allocation: Dict[int, int] = {}
        allocation_get = allocation.get
        worker_set: FrozenSet[int] = frozenset()
        loads: Dict[int, int] = {}
        comm_slots: Dict[int, int] = {}
        comm_slots_get = comm_slots.get
        max_load = 0
        total_comm = 0
        per_worker_comm_time: Dict[int, float] = {}

        for _ in range(self.num_tasks):
            eligible = [
                worker
                for worker in up_workers
                if allocation_get(worker, 0) < capacities[worker]
            ]
            if not eligible:
                return None  # defensive: cannot happen after the capacity sum check
            if stats is not None:
                stats["steps"] += 1
                stats["candidates"] += len(eligible)

            # --- frontier preparation (one batch, not one call per worker) --
            candidate_sets = {
                worker: (worker_set if worker in worker_set else worker_set | {worker})
                for worker in eligible
            }
            prefetch_groups(candidate_sets.values())

            # Top-two of the committed per-worker communication times: the
            # "slowest other transfer" for candidate w is the global max, or
            # the runner-up when w itself holds the max.
            slowest_worker = None
            slowest_time = second_time = -inf
            for other, other_time in per_worker_comm_time.items():
                if other_time > slowest_time:
                    slowest_worker, slowest_time, second_time = (
                        other,
                        other_time,
                        slowest_time,
                    )
                elif other_time > second_time:
                    second_time = other_time

            best_worker: Optional[int] = None
            best_value = -inf if higher_better else inf
            for worker in eligible:
                new_tasks = allocation_get(worker, 0) + 1
                # --- workload of the candidate configuration -------------
                new_load = new_tasks * speeds[worker]
                workload = new_load if new_load > max_load else max_load
                # --- communication estimate -------------------------------
                already = reusable_get(worker, 0)
                if already > new_tasks:
                    already = new_tasks
                new_comm_q = (0 if worker in program_set else tprog) + (
                    new_tasks - already
                ) * tdata
                candidate_total_comm = total_comm - comm_slots_get(worker, 0) + new_comm_q
                candidate_set = candidate_sets[worker]
                if new_comm_q <= 0:
                    comm_time = 0.0
                else:
                    comm_time = single_time_get((worker, new_comm_q))
                    if comm_time is None:
                        if stats is not None:
                            stats["single_time_misses"] += 1
                        comm_time = single_expected_time(worker, new_comm_q)
                others_max = second_time if worker == slowest_worker else slowest_time
                if others_max > comm_time:
                    comm_time = others_max
                if len(candidate_set) > ncom:
                    bandwidth_bound = candidate_total_comm / ncom
                    if bandwidth_bound > comm_time:
                        comm_time = bandwidth_bound
                if candidate_total_comm > 0:
                    duration = int(ceil(comm_time))
                    comm_probability = survival_get((candidate_set, duration))
                    if comm_probability is None:
                        if stats is not None:
                            stats["survival_misses"] += 1
                        comm_probability = comm_survival(candidate_set, duration)
                else:
                    comm_time = 0.0
                    comm_probability = 1.0
                # --- computation estimate ---------------------------------
                # ``workload >= speed >= 1`` and the set is non-empty, so the
                # uncached-trivial branch of ``computation`` never applies.
                comp = computation_get((candidate_set, workload))
                if comp is None:
                    if stats is not None:
                        stats["computation_misses"] += 1
                    comp = computation(candidate_set, workload)
                comp_probability, comp_time = comp
                # --- criterion value ---------------------------------------
                probability = comm_probability * comp_probability
                expected = comm_time + comp_time
                if criterion_name == "P":
                    value = probability
                elif criterion_name == "E":
                    value = expected
                elif criterion_name == "Y":
                    denominator = elapsed + expected
                    value = probability / denominator if denominator > 0 else inf
                else:  # "AY"
                    value = probability / expected if expected > 0 else inf

                if best_worker is None:
                    best_worker = worker
                    best_value = value
                elif higher_better:
                    if value > best_value:
                        best_worker = worker
                        best_value = value
                else:
                    if value < best_value:
                        best_worker = worker
                        best_value = value

            # Commit the task to the winning worker and update the running state.
            new_tasks = allocation_get(best_worker, 0) + 1
            allocation[best_worker] = new_tasks
            worker_set = worker_set | {best_worker}
            loads[best_worker] = new_tasks * speeds[best_worker]
            if loads[best_worker] > max_load:
                max_load = loads[best_worker]
            already = reusable_get(best_worker, 0)
            if already > new_tasks:
                already = new_tasks
            new_comm_q = (0 if best_worker in program_set else tprog) + (
                new_tasks - already
            ) * tdata
            total_comm += new_comm_q - comm_slots_get(best_worker, 0)
            comm_slots[best_worker] = new_comm_q
            per_worker_comm_time[best_worker] = single_expected_time(
                best_worker, new_comm_q
            )

        return Configuration(allocation)
