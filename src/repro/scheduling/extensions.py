"""Extension heuristics beyond the paper's seventeen.

The related-work section of the paper surveys simpler desktop-grid scheduling
policies that rank or filter processors on static criteria (clock rate,
availability threshold) rather than on the probabilistic machinery of
Section V.  Implementing a couple of them gives useful comparison points:

* :class:`FastestWorkersScheduler` ("FAST") — the knowledge-free policy: take
  the fastest UP workers, one task each (spilling over by speed order when
  capacity forces it).  Ignores reliability entirely.
* :class:`ThresholdScheduler` ("THRESHOLD-IE") — the prior-work style policy
  (Kondo et al., Estrada et al.): exclude processors whose long-run
  availability is below a threshold, then run the paper's IE placement on the
  survivors.  Falls back to all UP workers when the filter leaves too few.
* :class:`StickyScheduler` ("STICKY") — an intentionally conservative policy
  that keeps whatever feasible configuration it first finds and only rebuilds
  on failure, picking workers by speed; isolates the value of the Section V
  estimators from the value of merely "not moving around".

These heuristics are *not* part of the paper's evaluation; they register
themselves with the component registry (family ``"extension"``) so
:func:`repro.scheduling.registry.create_scheduler` and the experiment
harness can include them in extension studies.  Each exposes its tuning
knobs through the heuristic expression grammar — ``"FAST(k=8)"``,
``"THRESHOLD-IE(tau=0.7)"``, ``"STICKY(patience=3)"`` — with defaults that
reproduce the unparameterized behaviour bit-for-bit.
"""

from __future__ import annotations

from typing import List, Optional

from repro.application.configuration import Configuration
from repro.scheduling.base import Observation, Scheduler
from repro.scheduling.catalog import FAMILY_EXTENSION, register_heuristic
from repro.scheduling.passive import make_passive_heuristic

__all__ = [
    "FastestWorkersScheduler",
    "ThresholdScheduler",
    "StickyScheduler",
    "EXTENSION_HEURISTICS",
]

#: Names of the extension heuristics understood by the registry.
EXTENSION_HEURISTICS = ("FAST", "THRESHOLD-IE", "STICKY")


def _fill_by_priority(
    scheduler: Scheduler, observation: Observation, ordered_workers: List[int]
) -> Optional[Configuration]:
    """Assign the application's tasks along a worker priority order.

    Workers receive one task each in priority order; remaining tasks wrap
    around respecting the capacity bounds.  Returns ``None`` when the workers
    cannot hold all tasks.
    """
    num_tasks = scheduler.application.tasks_per_iteration
    capacities = {w: scheduler.platform.processor(w).capacity for w in ordered_workers}
    if sum(capacities.values()) < num_tasks or not ordered_workers:
        return None
    allocation = {w: 0 for w in ordered_workers}
    remaining = num_tasks
    while remaining > 0:
        progressed = False
        for worker in ordered_workers:
            if remaining == 0:
                break
            if allocation[worker] < capacities[worker]:
                allocation[worker] += 1
                remaining -= 1
                progressed = True
        if not progressed:  # pragma: no cover - guarded by the capacity check
            return None
    return Configuration(allocation)


@register_heuristic(
    "FAST",
    family=FAMILY_EXTENSION,
    description="fastest UP workers, one task each; ignores reliability entirely",
)
class FastestWorkersScheduler(Scheduler):
    """Enrol the fastest UP workers, one task each, ignoring reliability.

    Parameters
    ----------
    k:
        Size of the preferred worker pool.  ``None`` (the default) enrols
        one worker per task exactly as before; smaller values concentrate
        the tasks on the ``k`` fastest workers, larger values spread the
        spill-over wider before falling back to every UP worker.
    """

    name = "FAST"
    passive_between_rebuilds = True

    def __init__(self, k: Optional[int] = None) -> None:
        super().__init__()
        if k is not None and k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = None if k is None else int(k)

    def select(self, observation: Observation) -> Configuration:
        self._require_bound()
        if not observation.needs_new_configuration():
            return observation.current_configuration
        up_workers = observation.up_workers()
        ordered = sorted(up_workers, key=lambda w: (self.platform.processor(w).speed, w))
        pool = self.k if self.k is not None else self.application.tasks_per_iteration
        # Use as few (fast) workers as possible: one task each on the m fastest,
        # spilling over onto them again if there are fewer than m UP workers.
        configuration = _fill_by_priority(self, observation, ordered[:pool] or ordered)
        if configuration is None:
            configuration = _fill_by_priority(self, observation, ordered)
        return configuration if configuration is not None else Configuration.empty()


@register_heuristic(
    "THRESHOLD-IE",
    family=FAMILY_EXTENSION,
    description="drop processors below a long-run availability threshold, "
    "then apply the paper's IE placement",
    aliases={"tau": "threshold"},
)
class ThresholdScheduler(Scheduler):
    """Filter out low-availability processors, then apply IE placement.

    Parameters
    ----------
    threshold:
        Minimum long-run availability (stationary probability of UP under the
        processor's Markov approximation) required to be considered.  The
        expression grammar also accepts it as ``tau``
        (``"THRESHOLD-IE(tau=0.5)"``).
    """

    passive_between_rebuilds = True

    def __init__(self, threshold: float = 0.5) -> None:
        super().__init__()
        if not (0.0 <= threshold <= 1.0):
            raise ValueError(f"threshold must lie in [0, 1], got {threshold}")
        self.threshold = float(threshold)
        self.name = "THRESHOLD-IE"
        self._inner = make_passive_heuristic("IE")
        self._availability_cache: Optional[List[float]] = None

    def bind(self, platform, application, analysis, rng) -> None:
        super().bind(platform, application, analysis, rng)
        self._inner.bind(platform, application, analysis, rng)
        self._availability_cache = [
            model.availability() for model in platform.markov_models()
        ]

    def select(self, observation: Observation) -> Configuration:
        self._require_bound()
        if not observation.needs_new_configuration():
            return observation.current_configuration
        up_workers = observation.up_workers()
        eligible = [
            worker for worker in up_workers
            if self._availability_cache[worker] >= self.threshold
        ]
        num_tasks = self.application.tasks_per_iteration
        capacity = sum(self.platform.processor(w).capacity for w in eligible)
        if capacity < num_tasks:
            eligible = up_workers  # the filter is too aggressive: fall back
        if self._inner._allocator is None:  # pragma: no cover - defensive
            return Configuration.empty()
        configuration = self._inner._allocator.allocate(
            eligible,
            has_program=observation.has_program,
            received_data=observation.data_received,
            elapsed=observation.iteration_elapsed,
        )
        return configuration if configuration is not None else Configuration.empty()


@register_heuristic(
    "STICKY",
    family=FAMILY_EXTENSION,
    description="keep the first feasible configuration; rebuild by speed "
    "only on failure, preferring surviving workers while patience lasts",
)
class StickyScheduler(Scheduler):
    """Keep the first feasible configuration found; rebuild only on failure.

    Workers are chosen purely by speed (like :class:`FastestWorkersScheduler`)
    but, unlike the paper's passive heuristics, the choice uses no
    availability information at all — this isolates how much of the paper's
    improvement comes from the probabilistic estimators rather than from mere
    configuration stability.

    Parameters
    ----------
    patience:
        Number of consecutive forced rebuilds during which the scheduler
        repairs incrementally — surviving workers of the previous
        configuration keep priority over faster newcomers — before the next
        rebuild re-sorts every UP worker from scratch.  ``0`` (the default)
        always rebuilds from scratch, which is the original behaviour.
    """

    name = "STICKY"
    passive_between_rebuilds = True

    def __init__(self, patience: int = 0) -> None:
        super().__init__()
        if patience < 0:
            raise ValueError(f"patience must be >= 0, got {patience}")
        self.patience = int(patience)
        self._previous_workers: List[int] = []
        self._repairs = 0

    def reset(self) -> None:
        self._previous_workers = []
        self._repairs = 0

    def select(self, observation: Observation) -> Configuration:
        self._require_bound()
        if not observation.needs_new_configuration():
            return observation.current_configuration
        ordered = sorted(
            observation.up_workers(), key=lambda w: (self.platform.processor(w).speed, w)
        )
        if self.patience > 0:
            up_set = set(ordered)
            survivors = [w for w in self._previous_workers if w in up_set]
            if survivors and self._repairs < self.patience:
                self._repairs += 1
                survivor_set = set(survivors)
                ordered = survivors + [w for w in ordered if w not in survivor_set]
            else:
                self._repairs = 0
        configuration = _fill_by_priority(self, observation, ordered)
        if configuration is None:
            return Configuration.empty()
        if self.patience > 0:
            self._previous_workers = [w for w in ordered if w in configuration]
        return configuration
