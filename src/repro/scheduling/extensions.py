"""Extension heuristics beyond the paper's seventeen.

The related-work section of the paper surveys simpler desktop-grid scheduling
policies that rank or filter processors on static criteria (clock rate,
availability threshold) rather than on the probabilistic machinery of
Section V.  Implementing a couple of them gives useful comparison points:

* :class:`FastestWorkersScheduler` ("FAST") — the knowledge-free policy: take
  the fastest UP workers, one task each (spilling over by speed order when
  capacity forces it).  Ignores reliability entirely.
* :class:`ThresholdScheduler` ("THRESHOLD-IE") — the prior-work style policy
  (Kondo et al., Estrada et al.): exclude processors whose long-run
  availability is below a threshold, then run the paper's IE placement on the
  survivors.  Falls back to all UP workers when the filter leaves too few.
* :class:`StickyScheduler` ("STICKY") — an intentionally conservative policy
  that keeps whatever feasible configuration it first finds and only rebuilds
  on failure, picking workers by speed; isolates the value of the Section V
  estimators from the value of merely "not moving around".

These heuristics are *not* part of the paper's evaluation; they are exposed
through :func:`repro.scheduling.registry.create_scheduler` under the names
above so the experiment harness can include them in extension studies.
"""

from __future__ import annotations

from typing import List, Optional

from repro.application.configuration import Configuration
from repro.scheduling.base import Observation, Scheduler
from repro.scheduling.passive import make_passive_heuristic

__all__ = [
    "FastestWorkersScheduler",
    "ThresholdScheduler",
    "StickyScheduler",
    "EXTENSION_HEURISTICS",
]

#: Names of the extension heuristics understood by the registry.
EXTENSION_HEURISTICS = ("FAST", "THRESHOLD-IE", "STICKY")


def _fill_by_priority(
    scheduler: Scheduler, observation: Observation, ordered_workers: List[int]
) -> Optional[Configuration]:
    """Assign the application's tasks along a worker priority order.

    Workers receive one task each in priority order; remaining tasks wrap
    around respecting the capacity bounds.  Returns ``None`` when the workers
    cannot hold all tasks.
    """
    num_tasks = scheduler.application.tasks_per_iteration
    capacities = {w: scheduler.platform.processor(w).capacity for w in ordered_workers}
    if sum(capacities.values()) < num_tasks or not ordered_workers:
        return None
    allocation = {w: 0 for w in ordered_workers}
    remaining = num_tasks
    while remaining > 0:
        progressed = False
        for worker in ordered_workers:
            if remaining == 0:
                break
            if allocation[worker] < capacities[worker]:
                allocation[worker] += 1
                remaining -= 1
                progressed = True
        if not progressed:  # pragma: no cover - guarded by the capacity check
            return None
    return Configuration(allocation)


class FastestWorkersScheduler(Scheduler):
    """Enrol the fastest UP workers, one task each, ignoring reliability."""

    name = "FAST"
    passive_between_rebuilds = True

    def select(self, observation: Observation) -> Configuration:
        self._require_bound()
        if not observation.needs_new_configuration():
            return observation.current_configuration
        up_workers = observation.up_workers()
        ordered = sorted(up_workers, key=lambda w: (self.platform.processor(w).speed, w))
        num_tasks = self.application.tasks_per_iteration
        # Use as few (fast) workers as possible: one task each on the m fastest,
        # spilling over onto them again if there are fewer than m UP workers.
        configuration = _fill_by_priority(self, observation, ordered[:num_tasks] or ordered)
        if configuration is None:
            configuration = _fill_by_priority(self, observation, ordered)
        return configuration if configuration is not None else Configuration.empty()


class ThresholdScheduler(Scheduler):
    """Filter out low-availability processors, then apply IE placement.

    Parameters
    ----------
    threshold:
        Minimum long-run availability (stationary probability of UP under the
        processor's Markov approximation) required to be considered.
    """

    passive_between_rebuilds = True

    def __init__(self, threshold: float = 0.5) -> None:
        super().__init__()
        if not (0.0 <= threshold <= 1.0):
            raise ValueError(f"threshold must lie in [0, 1], got {threshold}")
        self.threshold = float(threshold)
        self.name = "THRESHOLD-IE"
        self._inner = make_passive_heuristic("IE")
        self._availability_cache: Optional[List[float]] = None

    def bind(self, platform, application, analysis, rng) -> None:
        super().bind(platform, application, analysis, rng)
        self._inner.bind(platform, application, analysis, rng)
        self._availability_cache = [
            model.availability() for model in platform.markov_models()
        ]

    def select(self, observation: Observation) -> Configuration:
        self._require_bound()
        if not observation.needs_new_configuration():
            return observation.current_configuration
        up_workers = observation.up_workers()
        eligible = [
            worker for worker in up_workers
            if self._availability_cache[worker] >= self.threshold
        ]
        num_tasks = self.application.tasks_per_iteration
        capacity = sum(self.platform.processor(w).capacity for w in eligible)
        if capacity < num_tasks:
            eligible = up_workers  # the filter is too aggressive: fall back
        if self._inner._allocator is None:  # pragma: no cover - defensive
            return Configuration.empty()
        configuration = self._inner._allocator.allocate(
            eligible,
            has_program=observation.has_program,
            received_data=observation.data_received,
            elapsed=observation.iteration_elapsed,
        )
        return configuration if configuration is not None else Configuration.empty()


class StickyScheduler(Scheduler):
    """Keep the first feasible configuration found; rebuild only on failure.

    Workers are chosen purely by speed (like :class:`FastestWorkersScheduler`)
    but, unlike the paper's passive heuristics, the choice uses no
    availability information at all — this isolates how much of the paper's
    improvement comes from the probabilistic estimators rather than from mere
    configuration stability.
    """

    name = "STICKY"
    passive_between_rebuilds = True

    def select(self, observation: Observation) -> Configuration:
        self._require_bound()
        if not observation.needs_new_configuration():
            return observation.current_configuration
        ordered = sorted(
            observation.up_workers(), key=lambda w: (self.platform.processor(w).speed, w)
        )
        configuration = _fill_by_priority(self, observation, ordered)
        return configuration if configuration is not None else Configuration.empty()
