"""The RANDOM baseline heuristic.

Section VI: "a baseline RANDOM heuristic that allocates tasks to UP
processors randomly using a uniform distribution."  Like the passive
heuristics, it only reconfigures when it has to (a worker failed, a new
iteration starts, or the carried-over configuration is empty); each task is
then assigned to a worker drawn uniformly among the UP workers that still
have spare capacity.
"""

from __future__ import annotations

from typing import Optional

from repro.application.configuration import Configuration
from repro.scheduling.base import Observation, Scheduler

__all__ = ["RandomScheduler"]


class RandomScheduler(Scheduler):
    """Uniform random task placement on UP workers."""

    name = "RANDOM"
    passive_between_rebuilds = True

    def select(self, observation: Observation) -> Configuration:
        self._require_bound()
        if not observation.needs_new_configuration():
            return observation.current_configuration
        configuration = self._random_configuration(observation)
        if configuration is None:
            return Configuration.empty()
        return configuration

    # ------------------------------------------------------------------
    def _random_configuration(self, observation: Observation) -> Optional[Configuration]:
        up_workers = observation.up_workers()
        if not up_workers:
            return None
        num_tasks = self.application.tasks_per_iteration
        capacities = {w: self.platform.processor(w).capacity for w in up_workers}
        if sum(capacities.values()) < num_tasks:
            return None
        allocation = {w: 0 for w in up_workers}
        integers = self.rng.integers
        for _ in range(num_tasks):
            eligible = [w for w in up_workers if allocation[w] < capacities[w]]
            # Draw the index directly: ``Generator.choice(sequence)`` reduces
            # to exactly one ``integers(0, len)`` draw, so this consumes the
            # same stream (fixed seeds reproduce the same configurations)
            # without paying ``choice``'s array conversion.
            worker = eligible[int(integers(0, len(eligible)))]
            allocation[worker] += 1
        return Configuration(allocation)
