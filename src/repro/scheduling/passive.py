"""Passive incremental heuristics IP, IE, IY and IAY (Section VI-A).

Passive heuristics conservatively keep the enrolled workers as long as
possible: the configuration is rebuilt only when a worker fails, when a new
iteration starts, or when the carried-over configuration is empty.  The
rebuild assigns the ``m`` tasks one by one, each time to the UP worker that
optimises the heuristic's criterion:

* **IP** — maximise the probability of success of the (partial)
  configuration;
* **IE** — minimise its expected completion time;
* **IY** — maximise its expected yield ``P / (t + E)``;
* **IAY** — maximise its apparent yield ``P / E``.

Workers that survived a failure and stay enrolled can reuse the task data
they already received (the engine applies the corresponding retention rule),
so the rebuild is evaluated with the observation's ``data_received``.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.criteria import Criterion, get_criterion
from repro.application.configuration import Configuration
from repro.scheduling.allocation import IncrementalAllocator
from repro.scheduling.base import Observation, Scheduler

__all__ = ["PassiveHeuristic", "make_passive_heuristic", "PASSIVE_CRITERION_BY_NAME"]

#: Mapping passive-heuristic name -> selection criterion short name.
PASSIVE_CRITERION_BY_NAME = {
    "IP": "P",
    "IE": "E",
    "IY": "Y",
    "IAY": "AY",
}


class PassiveHeuristic(Scheduler):
    """A passive heuristic defined by its incremental selection criterion.

    ``batched=True`` (the default) routes the incremental allocator through
    the frontier-at-a-time batched analysis path; ``batched=False`` keeps the
    original per-candidate loop.  Both paths select identical configurations
    (see :class:`~repro.scheduling.allocation.IncrementalAllocator`).
    """

    passive_between_rebuilds = True

    def __init__(
        self,
        criterion: Criterion,
        name: Optional[str] = None,
        *,
        batched: bool = True,
    ) -> None:
        super().__init__()
        self.criterion = criterion
        self.name = name or f"I{criterion.name}"
        self.batched = bool(batched)
        self._allocator: Optional[IncrementalAllocator] = None

    # ------------------------------------------------------------------
    def bind(self, platform, application, analysis, rng) -> None:
        super().bind(platform, application, analysis, rng)
        self._allocator = IncrementalAllocator(
            self.criterion,
            analysis,
            platform,
            application.tasks_per_iteration,
            batched=self.batched,
        )

    def reset(self) -> None:
        self._allocator = None if self.platform is None else self._allocator

    # ------------------------------------------------------------------
    def select(self, observation: Observation) -> Configuration:
        self._require_bound()
        if not observation.needs_new_configuration():
            return observation.current_configuration
        configuration = self.build_configuration(observation)
        if configuration is None:
            return Configuration.empty()
        return configuration

    # ------------------------------------------------------------------
    def build_configuration(self, observation: Observation) -> Optional[Configuration]:
        """Build a fresh configuration for this slot (or ``None`` if infeasible).

        Exposed separately so the proactive wrapper can reuse the exact same
        incremental machinery when computing its per-slot candidate.
        """
        if self._allocator is None:
            raise RuntimeError("scheduler is not bound")
        return self._allocator.allocate(
            observation.up_workers(),
            has_program=observation.has_program,
            received_data=observation.data_received,
            elapsed=observation.iteration_elapsed,
        )

    def build_candidate(self, observation: Observation) -> Optional[Configuration]:
        """Candidate configuration for the proactive wrapper.

        Per Section VI-B the candidate is computed "from scratch ... as if no
        task were allocated to any worker": program possession is persistent
        worker state and is taken into account, but previously received task
        data is not.
        """
        if self._allocator is None:
            raise RuntimeError("scheduler is not bound")
        return self._allocator.allocate(
            observation.up_workers(),
            has_program=observation.has_program,
            received_data=None,
            elapsed=observation.iteration_elapsed,
        )


def make_passive_heuristic(name: str, *, batched: bool = True) -> PassiveHeuristic:
    """Instantiate one of IP / IE / IY / IAY by name (case-insensitive)."""
    key = str(name).strip().upper()
    try:
        criterion_name = PASSIVE_CRITERION_BY_NAME[key]
    except KeyError:
        raise ValueError(
            f"unknown passive heuristic {name!r}; expected one of "
            f"{sorted(PASSIVE_CRITERION_BY_NAME)}"
        ) from None
    return PassiveHeuristic(get_criterion(criterion_name), name=key, batched=batched)
