"""Proactive heuristics C-H (Section VI-B).

A proactive heuristic is a pair (criterion ``C``, passive heuristic ``H``).
At every slot:

1. the measure of the *current* configuration under ``C`` is updated to
   account for the progress made so far (remaining communication, remaining
   workload, elapsed iteration time);
2. a *candidate* configuration is computed from scratch with ``H`` (as if no
   task were allocated to any worker — program possession, being persistent
   worker state, is still accounted for);
3. if the candidate scores strictly better than the current configuration
   under ``C``, the execution switches to the candidate (losing any partial
   computation); otherwise the current configuration runs for one more slot.

To guarantee convergence, only criteria for which a configuration's score
never degrades as it accumulates progress are allowed (P, E and Y — the
apparent yield AY is excluded, as in the paper).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.cache import EvaluationRequest
from repro.analysis.criteria import Criterion
from repro.application.configuration import Configuration
from repro.exceptions import SchedulingError
from repro.scheduling.base import Observation, Scheduler
from repro.scheduling.passive import PassiveHeuristic

__all__ = ["ProactiveHeuristic"]


class ProactiveHeuristic(Scheduler):
    """Proactive wrapper combining a switching criterion and a passive heuristic."""

    def __init__(
        self,
        criterion: Criterion,
        passive: PassiveHeuristic,
        name: Optional[str] = None,
        *,
        allow_unsafe_criterion: bool = False,
    ) -> None:
        super().__init__()
        if not criterion.proactive_safe and not allow_unsafe_criterion:
            raise SchedulingError(
                f"criterion {criterion.name!r} does not satisfy the proactive "
                "anti-divergence constraint (Section VI-B); pass "
                "allow_unsafe_criterion=True to experiment with it anyway"
            )
        self.criterion = criterion
        self.passive = passive
        self.name = name or f"{criterion.name}-{passive.name}"
        # The candidate configuration computed by the underlying passive
        # heuristic is a deterministic function of (UP workers, program
        # holders) — and, for the yield-based selection criteria, of the
        # elapsed iteration time.  When the selection criterion ignores the
        # elapsed time (IP and IE) the candidate can be memoised exactly,
        # which removes most of the per-slot cost of proactive heuristics.
        self._candidate_cache: dict = {}
        self._candidate_cacheable = passive.criterion.name in ("P", "E")

    # ------------------------------------------------------------------
    def bind(self, platform, application, analysis, rng) -> None:
        super().bind(platform, application, analysis, rng)
        self.passive.bind(platform, application, analysis, rng)
        self._candidate_cache.clear()

    # ------------------------------------------------------------------
    def select(self, observation: Observation) -> Configuration:
        self._require_bound()

        # Mandatory rebuilds behave exactly like the underlying passive heuristic.
        if observation.needs_new_configuration():
            configuration = self.passive.build_configuration(observation)
            return configuration if configuration is not None else Configuration.empty()

        current = observation.current_configuration

        # 1. Candidate configuration computed from scratch by the passive heuristic.
        candidate = self._candidate(observation)

        # 2. Current and candidate are scored together: one evaluate_batch
        #    call covers the whole per-slot frontier (the batched analysis
        #    path prefetches any uncached group quantities in one shot).
        requests = [
            EvaluationRequest(
                configuration=current,
                comm_slots=observation.comm_remaining,
                completed_work=observation.progress,
                elapsed=observation.iteration_elapsed,
            )
        ]
        if candidate is not None and candidate != current:
            requests.append(
                EvaluationRequest(
                    configuration=candidate,
                    has_program=observation.has_program,
                    elapsed=observation.iteration_elapsed,
                )
            )
        estimates = self.analysis.evaluate_batch(requests)
        if len(estimates) == 1:
            return current
        current_value = self.criterion.value(estimates[0])
        candidate_value = self.criterion.value(estimates[1])

        # 3. Switch only on a strict improvement ("if c >= c2, keep the current one").
        if self.criterion.better(candidate_value, current_value):
            return candidate
        return current

    # ------------------------------------------------------------------
    def _candidate(self, observation: Observation) -> Optional[Configuration]:
        """Candidate configuration, memoised when it cannot depend on elapsed time."""
        if not self._candidate_cacheable:
            return self.passive.build_candidate(observation)
        key = (frozenset(observation.up_workers()), observation.has_program)
        if key in self._candidate_cache:
            return self._candidate_cache[key]
        candidate = self.passive.build_candidate(observation)
        self._candidate_cache[key] = candidate
        return candidate
