"""On-line scheduling heuristics of Section VI.

Seventeen heuristics are provided, exactly matching the paper's evaluation:

* ``RANDOM`` — uniform random task placement on UP workers (baseline);
* four *passive* incremental heuristics — ``IP`` (probability of success),
  ``IE`` (expected completion time), ``IY`` (yield), ``IAY`` (apparent
  yield) — which only reconfigure when a worker fails or a new iteration
  starts;
* twelve *proactive* heuristics ``C-H`` with switching criterion ``C`` in
  {P, E, Y} and host-selection heuristic ``H`` in {IP, IE, IY, IAY}, which
  recompute a candidate configuration at every slot and abandon the current
  one when the candidate scores strictly better.

Use :func:`create_scheduler` (or :data:`ALL_HEURISTICS`) to instantiate them
by name; extension heuristics and user plugins registered with
:func:`register_heuristic` are accepted too, including parameterized
expressions such as ``"THRESHOLD-IE(tau=0.5)"``.
"""

from repro.scheduling.allocation import IncrementalAllocator
from repro.scheduling.base import Observation, Scheduler
from repro.scheduling.passive import (
    PassiveHeuristic,
    make_passive_heuristic,
)
from repro.scheduling.proactive import ProactiveHeuristic
from repro.scheduling.random_heuristic import RandomScheduler
from repro.scheduling.registry import (
    ALL_HEURISTICS,
    EXTENSION_HEURISTIC_NAMES,
    HEURISTICS,
    PASSIVE_HEURISTICS,
    PROACTIVE_HEURISTICS,
    available_heuristics,
    canonical_heuristic,
    create_scheduler,
    heuristic_info,
    register_heuristic,
)

__all__ = [
    "Scheduler",
    "Observation",
    "IncrementalAllocator",
    "PassiveHeuristic",
    "make_passive_heuristic",
    "ProactiveHeuristic",
    "RandomScheduler",
    "create_scheduler",
    "register_heuristic",
    "available_heuristics",
    "canonical_heuristic",
    "heuristic_info",
    "HEURISTICS",
    "ALL_HEURISTICS",
    "PASSIVE_HEURISTICS",
    "PROACTIVE_HEURISTICS",
    "EXTENSION_HEURISTIC_NAMES",
]
