"""Registry of all scheduling heuristics, driven by the component registry.

The paper's seventeen heuristics are registered here:

* ``RANDOM``;
* passive: ``IP``, ``IE``, ``IY``, ``IAY``;
* proactive: ``C-H`` for ``C ∈ {P, E, Y}`` and ``H ∈ {IP, IE, IY, IAY}``.

The extension heuristics (``FAST``, ``THRESHOLD-IE``, ``STICKY``) register
themselves from :mod:`repro.scheduling.extensions` with the
``@register_heuristic`` decorator.  The registry
(:data:`~repro.scheduling.catalog.HEURISTICS`) is the single source of truth
used by :func:`create_scheduler`, the experiment harness, the campaign-spec
validation, the CLI and the :mod:`repro.api` facade.

Heuristics are addressed by *expressions*: a bare name (``"IE"``,
``"Y-IE"``) or a parameterized call whose keyword arguments are validated
against the registered factory's signature (``"THRESHOLD-IE(tau=0.5)"``,
``"STICKY(patience=3)"``, ``"FAST(k=8)"``).  Expressions canonicalize —
case, aliases, argument order and formatting are normalised — so campaign
specs hash identically however the heuristic was spelled.

To add your own heuristic, decorate a scheduler class (or factory)::

    from repro.scheduling import Scheduler, register_heuristic

    @register_heuristic("GREEDY", family="extension",
                        description="my greedy policy")
    class GreedyScheduler(Scheduler):
        def __init__(self, horizon: int = 10) -> None: ...

after which ``create_scheduler("GREEDY(horizon=20)")``, campaign specs and
the CLI all accept it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.criteria import PROACTIVE_CRITERIA, get_criterion
from repro.components import ComponentError, ComponentExpression, ComponentInfo
from repro.scheduling.base import Scheduler
from repro.scheduling.catalog import (
    FAMILY_BASELINE,
    FAMILY_EXTENSION,
    FAMILY_PASSIVE,
    FAMILY_PROACTIVE,
    HEURISTICS,
    register_heuristic,
)
from repro.scheduling.passive import PASSIVE_CRITERION_BY_NAME, make_passive_heuristic
from repro.scheduling.proactive import ProactiveHeuristic
from repro.scheduling.random_heuristic import RandomScheduler

__all__ = [
    "PASSIVE_HEURISTICS",
    "PROACTIVE_HEURISTICS",
    "ALL_HEURISTICS",
    "TABLE2_HEURISTICS",
    "EXTENSION_HEURISTIC_NAMES",
    "HEURISTICS",
    "register_heuristic",
    "create_scheduler",
    "available_heuristics",
    "heuristic_info",
    "canonical_heuristic",
]

#: The four passive heuristics of Section VI-A.
PASSIVE_HEURISTICS: Tuple[str, ...] = tuple(PASSIVE_CRITERION_BY_NAME)

#: The twelve proactive heuristics of Section VI-B.
PROACTIVE_HEURISTICS: Tuple[str, ...] = tuple(
    f"{criterion}-{heuristic}"
    for criterion in PROACTIVE_CRITERIA
    for heuristic in PASSIVE_HEURISTICS
)

#: All seventeen heuristics, in the paper's naming.
ALL_HEURISTICS: Tuple[str, ...] = ("RANDOM",) + PASSIVE_HEURISTICS + PROACTIVE_HEURISTICS

#: The eight heuristics reported in Table II / Figure 2 (m = 10).
TABLE2_HEURISTICS: Tuple[str, ...] = (
    "Y-IE",
    "P-IE",
    "E-IAY",
    "E-IY",
    "E-IP",
    "IAY",
    "IY",
    "IE",
)


# ----------------------------------------------------------------------
# Registration of the paper's seventeen heuristics
# ----------------------------------------------------------------------
_PASSIVE_DESCRIPTIONS = {
    "IP": "incremental placement maximising the probability of success",
    "IE": "incremental placement minimising the expected completion time",
    "IY": "incremental placement maximising the expected yield P / (t + E)",
    "IAY": "incremental placement maximising the apparent yield P / E",
}

_CRITERION_DESCRIPTIONS = {
    "P": "switch when the candidate's probability of success is strictly higher",
    "E": "switch when the candidate's expected completion time is strictly lower",
    "Y": "switch when the candidate's expected yield is strictly higher",
}


def _passive_factory(name: str):
    def factory() -> Scheduler:
        return make_passive_heuristic(name)

    return factory


def _proactive_factory(criterion_name: str, passive_name: str):
    def factory() -> Scheduler:
        return ProactiveHeuristic(
            get_criterion(criterion_name),
            make_passive_heuristic(passive_name),
            name=f"{criterion_name}-{passive_name}",
        )

    return factory


if "RANDOM" not in HEURISTICS:  # idempotent under module re-import
    register_heuristic(
        "RANDOM",
        RandomScheduler,
        family=FAMILY_BASELINE,
        paper=True,
        description="uniform random task placement on UP workers (baseline)",
    )
    for _name in PASSIVE_HEURISTICS:
        register_heuristic(
            _name,
            _passive_factory(_name),
            family=FAMILY_PASSIVE,
            paper=True,
            description=_PASSIVE_DESCRIPTIONS[_name],
        )
    for _criterion in PROACTIVE_CRITERIA:
        for _passive in PASSIVE_HEURISTICS:
            register_heuristic(
                f"{_criterion}-{_passive}",
                _proactive_factory(_criterion, _passive),
                family=FAMILY_PROACTIVE,
                paper=True,
                description=(
                    f"proactive {_passive} — {_CRITERION_DESCRIPTIONS[_criterion]}"
                ),
            )

# Importing the extensions module registers FAST / THRESHOLD-IE / STICKY via
# their decorators; done after the paper registrations so listing order is
# the paper's seventeen first, extensions after.
from repro.scheduling import extensions as _extensions  # noqa: E402,F401

#: Extension heuristics (not part of the paper's evaluation) also accepted by
#: :func:`create_scheduler`; see :mod:`repro.scheduling.extensions`.
EXTENSION_HEURISTIC_NAMES: Tuple[str, ...] = tuple(HEURISTICS.names(FAMILY_EXTENSION))

#: Backward-compatible mapping of extension name -> factory.
EXTENSION_FACTORIES = {
    name: HEURISTICS.get(name).factory for name in EXTENSION_HEURISTIC_NAMES
}


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def create_scheduler(name: str) -> Scheduler:
    """Instantiate a heuristic from a name or parameterized expression.

    Examples: ``create_scheduler("IE")``, ``create_scheduler("Y-IE")``,
    ``create_scheduler("random")``, ``create_scheduler("THRESHOLD-IE(tau=0.7)")``.
    Besides the paper's seventeen heuristics, the extension policies of
    :mod:`repro.scheduling.extensions` (``FAST``, ``THRESHOLD-IE``,
    ``STICKY``) — and anything registered with
    :func:`~repro.scheduling.catalog.register_heuristic` — are recognised.

    The returned scheduler's ``name`` is the expression's canonical form, so
    results of parameterized heuristics stay distinguishable in campaign
    stores and tables.  Raises :class:`~repro.components.ComponentError`
    (a :class:`ValueError`) for unknown heuristics or invalid arguments.
    """
    expression = HEURISTICS.resolve(name)
    scheduler = HEURISTICS.create(expression)
    scheduler.name = expression.canonical()
    return scheduler


def available_heuristics(family: Optional[str] = None) -> List[str]:
    """All registered heuristic names, paper order first, then extensions.

    ``family`` filters to one of ``"baseline"``, ``"passive"``,
    ``"proactive"`` or ``"extension"`` (plus any family a plugin registered).
    Unlike :data:`ALL_HEURISTICS` (the paper's fixed seventeen), this lists
    everything :func:`create_scheduler` accepts.
    """
    names = HEURISTICS.names(family)
    paper = [name for name in ALL_HEURISTICS if name in names]
    return paper + [name for name in names if name not in set(paper)]


def heuristic_info(name: str) -> ComponentInfo:
    """Registered metadata (family, description, parameters) for a heuristic.

    Accepts bare names and full expressions (``"THRESHOLD-IE(tau=0.5)"``
    yields the ``THRESHOLD-IE`` entry).
    """
    from repro.components import parse_expression

    return HEURISTICS.get(parse_expression(name).name)


def canonical_heuristic(expression) -> str:
    """Canonical string form of a heuristic expression (see module docstring)."""
    return HEURISTICS.canonical(expression)


def resolve_heuristic(expression) -> ComponentExpression:
    """Validated, canonicalized :class:`ComponentExpression` for *expression*."""
    return HEURISTICS.resolve(expression)


# Re-exported so callers can catch registry errors without importing
# repro.components explicitly.
HeuristicError = ComponentError
