"""Name-based registry of all seventeen heuristics evaluated in the paper.

* ``RANDOM``;
* passive: ``IP``, ``IE``, ``IY``, ``IAY``;
* proactive: ``C-H`` for ``C ∈ {P, E, Y}`` and ``H ∈ {IP, IE, IY, IAY}``.

The registry is the single source of truth used by the experiment harness,
the CLI and the examples.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.criteria import PROACTIVE_CRITERIA, get_criterion
from repro.scheduling.base import Scheduler
from repro.scheduling.extensions import (
    FastestWorkersScheduler,
    StickyScheduler,
    ThresholdScheduler,
)
from repro.scheduling.passive import PASSIVE_CRITERION_BY_NAME, make_passive_heuristic
from repro.scheduling.proactive import ProactiveHeuristic
from repro.scheduling.random_heuristic import RandomScheduler

#: Factories for the extension heuristics recognised by :func:`create_scheduler`.
EXTENSION_FACTORIES = {
    "FAST": FastestWorkersScheduler,
    "THRESHOLD-IE": ThresholdScheduler,
    "STICKY": StickyScheduler,
}

__all__ = [
    "PASSIVE_HEURISTICS",
    "PROACTIVE_HEURISTICS",
    "ALL_HEURISTICS",
    "TABLE2_HEURISTICS",
    "EXTENSION_HEURISTIC_NAMES",
    "create_scheduler",
]

#: The four passive heuristics of Section VI-A.
PASSIVE_HEURISTICS: Tuple[str, ...] = tuple(PASSIVE_CRITERION_BY_NAME)

#: The twelve proactive heuristics of Section VI-B.
PROACTIVE_HEURISTICS: Tuple[str, ...] = tuple(
    f"{criterion}-{heuristic}"
    for criterion in PROACTIVE_CRITERIA
    for heuristic in PASSIVE_HEURISTICS
)

#: All seventeen heuristics, in the paper's naming.
ALL_HEURISTICS: Tuple[str, ...] = ("RANDOM",) + PASSIVE_HEURISTICS + PROACTIVE_HEURISTICS

#: Extension heuristics (not part of the paper's evaluation) also accepted by
#: :func:`create_scheduler`; see :mod:`repro.scheduling.extensions`.
EXTENSION_HEURISTIC_NAMES: Tuple[str, ...] = ("FAST", "THRESHOLD-IE", "STICKY")

#: The eight heuristics reported in Table II / Figure 2 (m = 10).
TABLE2_HEURISTICS: Tuple[str, ...] = (
    "Y-IE",
    "P-IE",
    "E-IAY",
    "E-IY",
    "E-IP",
    "IAY",
    "IY",
    "IE",
)


def create_scheduler(name: str) -> Scheduler:
    """Instantiate a heuristic by its paper name (case-insensitive).

    Examples: ``create_scheduler("IE")``, ``create_scheduler("Y-IE")``,
    ``create_scheduler("random")``.  Besides the paper's seventeen
    heuristics, the extension policies of
    :mod:`repro.scheduling.extensions` (``FAST``, ``THRESHOLD-IE``,
    ``STICKY``) are also recognised.
    """
    key = str(name).strip().upper()
    if key == "RANDOM":
        return RandomScheduler()
    if key in EXTENSION_FACTORIES:
        return EXTENSION_FACTORIES[key]()
    if key in PASSIVE_CRITERION_BY_NAME:
        return make_passive_heuristic(key)
    if "-" in key:
        criterion_name, _, passive_name = key.partition("-")
        if criterion_name in PROACTIVE_CRITERIA and passive_name in PASSIVE_CRITERION_BY_NAME:
            criterion = get_criterion(criterion_name)
            passive = make_passive_heuristic(passive_name)
            return ProactiveHeuristic(criterion, passive, name=key)
    raise ValueError(
        f"unknown heuristic {name!r}; expected one of {list(ALL_HEURISTICS)}"
    )


def available_heuristics() -> List[str]:
    """All recognised heuristic names (convenience for CLIs and docs)."""
    return list(ALL_HEURISTICS)
