"""Pluggable component registry and the parameterized expression grammar.

This module is the infrastructure behind every named component family of the
library — today the scheduling heuristics (:mod:`repro.scheduling.registry`)
and the availability-model substrates (:mod:`repro.availability.registry`).
A :class:`ComponentRegistry` maps canonical names to factories plus metadata
(family, description, whether the component is part of the paper's
evaluation) and parameter specifications introspected from each factory's
signature.  Registration is declarative::

    HEURISTICS = ComponentRegistry("heuristic")

    @HEURISTICS.register("THRESHOLD-IE", family="extension",
                         description="filter by long-run availability",
                         aliases={"tau": "threshold"})
    class ThresholdScheduler(Scheduler):
        def __init__(self, threshold: float = 0.5) -> None: ...

Components are addressed by *expressions* — either a bare name (``"IE"``)
or a parameterized call (``"THRESHOLD-IE(tau=0.5)"``).  Expressions are
parsed once (:func:`parse_expression`), validated against the registered
factory's signature (unknown parameters, missing required parameters and
type mismatches are all :class:`ComponentError`\\ s) and canonicalized —
aliases resolved, names normalised to their registered spelling, arguments
sorted and formatted deterministically — so that equivalent spellings hash
identically in campaign-spec content hashes.

The grammar, deliberately small::

    expression := NAME | NAME "(" [argument ("," argument)*] ")"
    argument   := IDENT "=" value
    value      := integer | float | "true" | "false" | quoted or bare string

Lookups are case-insensitive; canonical output uses the registered spelling.
"""

from __future__ import annotations

import inspect
import re
import typing
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.exceptions import ReproError

__all__ = [
    "REQUIRED",
    "ComponentError",
    "ComponentParameter",
    "ComponentInfo",
    "ComponentExpression",
    "ComponentRegistry",
    "parse_expression",
]


class ComponentError(ReproError, ValueError):
    """A component lookup, registration or expression is invalid.

    Subclasses :class:`ValueError` so existing callers of
    ``create_scheduler`` that catch ``ValueError`` keep working, and
    :class:`~repro.exceptions.ReproError` so it folds into the library's
    exception hierarchy.
    """


class _Required:
    """Sentinel: the parameter has no default and must be supplied."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<required>"


#: Sentinel default for parameters that must be supplied explicitly.
REQUIRED = _Required()

#: Scalar types the expression grammar can express.
_SUPPORTED_KINDS = (bool, int, float, str)

_NAME_PATTERN = re.compile(r"[A-Za-z][A-Za-z0-9_-]*")
_EXPRESSION_PATTERN = re.compile(
    r"(?P<name>[A-Za-z][A-Za-z0-9_-]*)\s*(?:\((?P<args>.*)\))?\s*", re.DOTALL
)
_IDENT_PATTERN = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_BARE_STRING_PATTERN = re.compile(r"[A-Za-z0-9_.+:~/\\-]+")


@dataclass(frozen=True)
class ComponentParameter:
    """One tunable parameter of a registered component.

    ``kind`` is the scalar type (``int``, ``float``, ``bool`` or ``str``);
    ``default`` is :data:`REQUIRED` when the factory has no default.
    ``aliases`` are accepted in expressions and canonicalized away.
    """

    name: str
    kind: type
    default: Any = REQUIRED
    aliases: Tuple[str, ...] = ()
    description: str = ""

    @property
    def required(self) -> bool:
        return self.default is REQUIRED

    def describe(self) -> str:
        """Human-readable ``name: kind [= default]`` fragment."""
        text = f"{self.name}: {self.kind.__name__}"
        if not self.required:
            if isinstance(self.default, _SUPPORTED_KINDS):
                rendered = _format_value(self.default)
            elif isinstance(self.default, tuple):
                # Availability-model defaults may be [low, high] per-processor
                # ranges; display them in the spec-file spelling.
                rendered = "[" + ", ".join(repr(v) for v in self.default) + "]"
            else:
                rendered = repr(self.default)
            text += f" = {rendered}"
        return text


@dataclass(frozen=True)
class ComponentInfo:
    """Registered metadata of one component."""

    name: str
    factory: Callable[..., Any]
    family: str
    description: str = ""
    #: Whether the component belongs to the source paper's evaluation (as
    #: opposed to an extension added by this reproduction).
    paper: bool = False
    parameters: Tuple[ComponentParameter, ...] = ()

    # ------------------------------------------------------------------
    def parameter(self, name: str) -> Optional[ComponentParameter]:
        """Look up a parameter by canonical name or alias (case-insensitive)."""
        key = name.lower()
        for parameter in self.parameters:
            if parameter.name.lower() == key:
                return parameter
            if any(alias.lower() == key for alias in parameter.aliases):
                return parameter
        return None

    def signature(self) -> str:
        """Display form, e.g. ``THRESHOLD-IE(threshold: float = 0.5)``."""
        if not self.parameters:
            return self.name
        inner = ", ".join(parameter.describe() for parameter in self.parameters)
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class ComponentExpression:
    """A parsed (and, after :meth:`ComponentRegistry.resolve`, validated)
    component expression: a name plus keyword arguments."""

    name: str
    arguments: Tuple[Tuple[str, Any], ...] = ()

    def canonical(self) -> str:
        """Deterministic text form: registered name, sorted ``key=value`` args.

        Canonical strings are what campaign specs store and hash, so two
        spellings of the same component (aliases, whitespace, case,
        argument order) always canonicalize to the same string.
        """
        if not self.arguments:
            return self.name
        inner = ",".join(f"{key}={_format_value(value)}" for key, value in self.arguments)
        return f"{self.name}({inner})"

    def kwargs(self) -> Dict[str, Any]:
        return dict(self.arguments)


# ----------------------------------------------------------------------
# Expression parsing
# ----------------------------------------------------------------------
def _format_value(value: Any) -> str:
    """Render an argument value in its canonical (re-parseable) spelling.

    String quoting mirrors the parser exactly: quotes carry no escape
    sequences, so a string containing one kind of quote is wrapped in the
    other, and a string containing both is unrepresentable (an explicit
    error rather than a silent value change on the next parse).
    """
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        if _BARE_STRING_PATTERN.fullmatch(value):
            return value
        if '"' not in value:
            return f'"{value}"'
        if "'" not in value:
            return f"'{value}'"
        raise ComponentError(
            f"cannot render string {value!r} in an expression: it contains "
            "both quote characters (the grammar has no escape sequences)"
        )
    raise ComponentError(f"cannot render argument value {value!r} in an expression")


def _parse_value(token: str, *, context: str) -> Any:
    token = token.strip()
    if not token:
        raise ComponentError(f"{context}: empty argument value")
    if token[0] in ("'", '"'):
        if len(token) >= 2 and token[-1] == token[0]:
            return token[1:-1]
        raise ComponentError(f"{context}: unterminated string {token!r}")
    lowered = token.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(token, 10)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    if _BARE_STRING_PATTERN.fullmatch(token):
        return token
    raise ComponentError(f"{context}: cannot parse argument value {token!r}")


def _split_arguments(body: str) -> List[str]:
    """Split an argument list on top-level commas, respecting quotes."""
    chunks: List[str] = []
    current: List[str] = []
    quote: Optional[str] = None
    for char in body:
        if quote is not None:
            current.append(char)
            if char == quote:
                quote = None
        elif char in ("'", '"'):
            quote = char
            current.append(char)
        elif char == ",":
            chunks.append("".join(current))
            current = []
        else:
            current.append(char)
    chunks.append("".join(current))
    return chunks


def parse_expression(text: Union[str, ComponentExpression]) -> ComponentExpression:
    """Parse ``NAME`` / ``NAME(key=value, ...)`` into a :class:`ComponentExpression`.

    Purely syntactic: names are kept as written (resolution against a
    registry normalises them) and values become Python scalars.  Raises
    :class:`ComponentError` on malformed input.
    """
    if isinstance(text, ComponentExpression):
        return text
    if not isinstance(text, str):
        raise ComponentError(
            f"component expression must be a string, got {type(text).__name__}"
        )
    stripped = text.strip()
    match = _EXPRESSION_PATTERN.fullmatch(stripped)
    if match is None:
        raise ComponentError(
            f"invalid component expression {text!r}: expected NAME or "
            f"NAME(key=value, ...)"
        )
    name = match.group("name")
    body = match.group("args")
    if body is None or not body.strip():
        return ComponentExpression(name)
    arguments: List[Tuple[str, Any]] = []
    seen: Dict[str, bool] = {}
    for chunk in _split_arguments(body):
        key, equals, value_text = chunk.partition("=")
        key = key.strip()
        if not equals:
            raise ComponentError(
                f"invalid argument {chunk.strip()!r} in {text!r}: expected key=value"
            )
        if not _IDENT_PATTERN.fullmatch(key):
            raise ComponentError(f"invalid argument name {key!r} in {text!r}")
        if key.lower() in seen:
            raise ComponentError(f"duplicate argument {key!r} in {text!r}")
        seen[key.lower()] = True
        arguments.append((key, _parse_value(value_text, context=f"argument {key!r} in {text!r}")))
    return ComponentExpression(name, tuple(arguments))


# ----------------------------------------------------------------------
# Parameter introspection
# ----------------------------------------------------------------------
def _unwrap_optional(annotation: Any) -> Tuple[Any, bool]:
    origin = typing.get_origin(annotation)
    if origin is Union:
        inner = [arg for arg in typing.get_args(annotation) if arg is not type(None)]
        if len(inner) == 1:
            return inner[0], True
    return annotation, False


def _parameters_from_factory(
    factory: Callable[..., Any], aliases: Mapping[str, str]
) -> Tuple[ComponentParameter, ...]:
    """Introspect a factory's signature into :class:`ComponentParameter` specs."""
    target = factory.__init__ if isinstance(factory, type) else factory
    try:
        hints = typing.get_type_hints(target)
    except Exception:  # unresolvable forward references: fall back to defaults
        hints = {}
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError) as error:  # pragma: no cover - exotic factories
        raise ComponentError(f"cannot introspect factory {factory!r}: {error}") from error
    alias_map: Dict[str, List[str]] = {}
    for alias, parameter_name in aliases.items():
        alias_map.setdefault(parameter_name, []).append(alias)
    parameters: List[ComponentParameter] = []
    for parameter in signature.parameters.values():
        if parameter.kind in (parameter.VAR_POSITIONAL, parameter.VAR_KEYWORD):
            continue
        if parameter.kind is parameter.POSITIONAL_ONLY:
            raise ComponentError(
                f"factory {factory!r} has a positional-only parameter "
                f"{parameter.name!r}; components are constructed with keywords"
            )
        annotation = hints.get(parameter.name, parameter.annotation)
        annotation, _ = _unwrap_optional(annotation)
        if annotation in _SUPPORTED_KINDS:
            kind = annotation
        elif parameter.default is not parameter.empty and isinstance(
            parameter.default, _SUPPORTED_KINDS
        ):
            kind = bool if isinstance(parameter.default, bool) else type(parameter.default)
        elif parameter.default is None:
            kind = str
        else:
            raise ComponentError(
                f"cannot infer a scalar type for parameter {parameter.name!r} of "
                f"factory {factory!r}; annotate it with int, float, bool or str"
            )
        default = REQUIRED if parameter.default is parameter.empty else parameter.default
        parameters.append(
            ComponentParameter(
                name=parameter.name,
                kind=kind,
                default=default,
                aliases=tuple(alias_map.get(parameter.name, ())),
            )
        )
    unknown_targets = set(aliases.values()) - {p.name for p in parameters}
    if unknown_targets:
        raise ComponentError(
            f"aliases target unknown parameters {sorted(unknown_targets)} of {factory!r}"
        )
    return tuple(parameters)


def _coerce(parameter: ComponentParameter, value: Any, *, context: str) -> Any:
    """Check/convert an argument value to the parameter's declared type."""
    if parameter.kind is bool:
        if isinstance(value, bool):
            return value
    elif parameter.kind is int:
        if isinstance(value, int) and not isinstance(value, bool):
            return value
    elif parameter.kind is float:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
    elif parameter.kind is str:
        if isinstance(value, str):
            return value
    raise ComponentError(
        f"{context}: parameter {parameter.name!r} expects "
        f"{parameter.kind.__name__}, got {value!r} ({type(value).__name__})"
    )


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
@dataclass
class ComponentRegistry:
    """Name → factory mapping with metadata and expression resolution.

    ``kind`` is the human label used in error messages ("heuristic",
    "availability model").  Registration preserves insertion order, which
    :meth:`names` exposes; lookups are case-insensitive.
    """

    kind: str
    _components: Dict[str, ComponentInfo] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        factory: Optional[Callable[..., Any]] = None,
        *,
        family: str = "general",
        description: str = "",
        paper: bool = False,
        aliases: Optional[Mapping[str, str]] = None,
        parameters: Optional[Tuple[ComponentParameter, ...]] = None,
    ):
        """Register *factory* under *name*; usable as a decorator.

        ``aliases`` maps alternative argument spellings to canonical
        parameter names (e.g. ``{"tau": "threshold"}``).  ``parameters``
        overrides signature introspection for factories whose arguments are
        not simple scalars (the availability-model builders use this).
        """

        def _register(obj: Callable[..., Any]) -> Callable[..., Any]:
            if not _NAME_PATTERN.fullmatch(name):
                raise ComponentError(f"invalid {self.kind} name {name!r}")
            key = name.upper()
            if key in self._components:
                raise ComponentError(f"{self.kind} {name!r} is already registered")
            specs = (
                tuple(parameters)
                if parameters is not None
                else _parameters_from_factory(obj, aliases or {})
            )
            self._components[key] = ComponentInfo(
                name=name,
                factory=obj,
                family=family,
                description=description,
                paper=paper,
                parameters=specs,
            )
            return obj

        if factory is None:
            return _register
        return _register(factory)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.strip().upper() in self._components

    def get(self, name: str) -> ComponentInfo:
        """Metadata for a bare component name (case-insensitive)."""
        key = str(name).strip().upper()
        try:
            return self._components[key]
        except KeyError:
            raise ComponentError(
                f"unknown {self.kind} {name!r}; expected one of {self.names()}"
            ) from None

    def names(self, family: Optional[str] = None) -> List[str]:
        """Registered names in registration order, optionally one family."""
        return [
            info.name
            for info in self._components.values()
            if family is None or info.family == family
        ]

    def infos(self, family: Optional[str] = None) -> List[ComponentInfo]:
        return [
            info
            for info in self._components.values()
            if family is None or info.family == family
        ]

    def families(self) -> List[str]:
        """Distinct family labels, in first-registration order."""
        seen: Dict[str, bool] = {}
        for info in self._components.values():
            seen.setdefault(info.family, True)
        return list(seen)

    # ------------------------------------------------------------------
    # Expression resolution / construction
    # ------------------------------------------------------------------
    def resolve(self, expression: Union[str, ComponentExpression]) -> ComponentExpression:
        """Parse, validate and canonicalize an expression against the registry.

        Returns an expression whose name is the registered spelling and whose
        arguments are alias-resolved, type-coerced and sorted by parameter
        name.  Raises :class:`ComponentError` for unknown components, unknown
        or duplicate parameters, missing required parameters and type
        mismatches.
        """
        parsed = parse_expression(expression)
        info = self.get(parsed.name)
        context = f"{self.kind} expression {parsed.canonical()!r}"
        resolved: Dict[str, Any] = {}
        for key, value in parsed.arguments:
            parameter = info.parameter(key)
            if parameter is None:
                known = [p.name for p in info.parameters]
                raise ComponentError(
                    f"{context}: unknown parameter {key!r} for {info.name} "
                    f"(accepted: {known if known else 'none'})"
                )
            if parameter.name in resolved:
                raise ComponentError(
                    f"{context}: parameter {parameter.name!r} given more than once"
                )
            resolved[parameter.name] = _coerce(parameter, value, context=context)
        missing = [
            p.name for p in info.parameters if p.required and p.name not in resolved
        ]
        if missing:
            raise ComponentError(f"{context}: missing required parameters {missing}")
        return ComponentExpression(info.name, tuple(sorted(resolved.items())))

    def canonical(self, expression: Union[str, ComponentExpression]) -> str:
        """The canonical string form of an expression (see :meth:`resolve`)."""
        return self.resolve(expression).canonical()

    def create(self, expression: Union[str, ComponentExpression]) -> Any:
        """Resolve an expression and call the factory with its arguments."""
        resolved = self.resolve(expression)
        info = self.get(resolved.name)
        return info.factory(**resolved.kwargs())
