"""Random-number-generation helpers.

Every stochastic component of the library (availability sampling, platform
generation, scheduler tie-breaking, experiment campaigns) takes explicit
seeds and converts them into independent :class:`numpy.random.Generator`
streams through :class:`numpy.random.SeedSequence`.  This guarantees that

* every experiment in the reproduction is exactly repeatable, and
* parallel workers (``multiprocessing`` fan-out in the campaign runner) use
  statistically independent streams even though they share a root seed.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Sequence, Union

import numpy as np

__all__ = [
    "SeedLike",
    "as_generator",
    "derive_run_streams",
    "spawn_generators",
    "spawn_seeds",
    "stable_hash_seed",
]

#: Anything accepted as a seed by the helpers in this module.
SeedLike = Union[int, np.random.SeedSequence, np.random.Generator, None]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``None`` yields a non-deterministic generator; an ``int`` or a
    :class:`numpy.random.SeedSequence` yields a deterministic one; an existing
    generator is returned unchanged (allowing callers to thread a single
    stream through several components).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_seeds(seed: SeedLike, count: int) -> List[np.random.SeedSequence]:
    """Spawn *count* independent child :class:`SeedSequence` objects.

    Passing a :class:`numpy.random.Generator` is rejected because a generator
    does not expose its seed sequence portably; campaigns should keep seeds
    as integers until the last moment.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        raise TypeError("spawn_seeds requires an int or SeedSequence, not a Generator")
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return list(root.spawn(count))


def spawn_generators(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Spawn *count* independent generators derived from *seed*."""
    return [np.random.default_rng(child) for child in spawn_seeds(seed, count)]


def derive_run_streams(seed: SeedLike, num_workers: int, *, hazard: bool = False):
    """Derive the per-run generator streams of a simulation run.

    Returns ``(availability_streams, scheduler_stream)``: one independent
    generator per worker plus one for the scheduler, all derived
    deterministically from *seed*.  This recipe is shared by the simulation
    engine and the experiment trace bank — anything that needs to reproduce
    the exact availability realisation of a run for a given seed must derive
    its streams through this function.

    With ``hazard=True`` a third element is appended to the return value: a
    master stream for the platform-level
    :class:`~repro.hazards.GroupHazardProcess`.  The hazard stream is an
    *additional* ``SeedSequence`` child, so the worker and scheduler streams
    are bit-identical whether or not it is requested — runs on hazard-free
    platforms are unaffected.
    """
    root = as_generator(seed)
    extra = 2 if hazard else 1
    streams = spawn_generators(int(root.integers(0, 2**62)), num_workers + extra)
    if hazard:
        return streams[:num_workers], streams[num_workers], streams[num_workers + 1]
    return streams[:-1], streams[-1]


def stable_hash_seed(*parts: Union[str, int, float]) -> int:
    """Derive a stable 63-bit seed from arbitrary labelled parts.

    Used by the experiment harness to derive per-instance seeds from
    human-readable coordinates such as ``("table1", m, ncom, wmin, scenario,
    trial)`` so that a single instance can be re-run in isolation and produce
    exactly the same realisation as it did inside the full campaign.
    """
    if not parts:
        raise ValueError("at least one part is required")
    payload = "\x1f".join(_canonical_part(p) for p in parts).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") & ((1 << 63) - 1)


def _canonical_part(part: Union[str, int, float]) -> str:
    if isinstance(part, bool):  # bool is an int subclass; be explicit
        return f"b:{int(part)}"
    if isinstance(part, int):
        return f"i:{part}"
    if isinstance(part, float):
        return f"f:{part!r}"
    if isinstance(part, str):
        return f"s:{part}"
    raise TypeError(f"unsupported seed part type: {type(part).__name__}")


def interleave(streams: Sequence[Iterable]) -> Iterable:
    """Round-robin interleave several iterables (utility for experiments)."""
    iterators = [iter(stream) for stream in streams]
    active = list(iterators)
    while active:
        next_round = []
        for iterator in active:
            try:
                yield next(iterator)
            except StopIteration:
                continue
            next_round.append(iterator)
        active = next_round
