"""Plain-text table rendering.

The experiment harness reports its results in the same tabular form as the
paper (Tables I and II).  This module renders lists of rows into aligned,
monospaced text tables without any third-party dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

__all__ = ["format_table"]

Cell = Union[str, int, float, None]


def _render_cell(cell: Cell, float_fmt: str) -> str:
    if cell is None:
        return ""
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return format(cell, float_fmt)
    return str(cell)


def format_table(
    rows: Iterable[Sequence[Cell]],
    headers: Optional[Sequence[str]] = None,
    *,
    float_fmt: str = ".2f",
    align_right: Optional[Sequence[bool]] = None,
    padding: int = 2,
) -> str:
    """Render *rows* (and optional *headers*) as an aligned text table.

    Parameters
    ----------
    rows:
        Iterable of row sequences.  Cells may be strings, numbers or ``None``
        (rendered as an empty cell).
    headers:
        Optional column headers.
    float_fmt:
        ``format()`` spec applied to float cells (default two decimals, like
        the paper's tables).
    align_right:
        Per-column flags; defaults to right-aligning every column except the
        first (heuristic-name column), matching the paper's layout.
    padding:
        Number of spaces between columns.
    """
    materialised: List[List[str]] = [
        [_render_cell(cell, float_fmt) for cell in row] for row in rows
    ]
    if headers is not None:
        header_row = [str(h) for h in headers]
    else:
        header_row = None

    if not materialised and header_row is None:
        return ""

    n_cols = max(
        [len(row) for row in materialised] + ([len(header_row)] if header_row else [0])
    )
    # Pad ragged rows so alignment never fails on missing trailing cells.
    for row in materialised:
        row.extend([""] * (n_cols - len(row)))
    if header_row is not None:
        header_row.extend([""] * (n_cols - len(header_row)))

    widths = [0] * n_cols
    for row in ([header_row] if header_row else []) + materialised:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    if align_right is None:
        align_flags = [j > 0 for j in range(n_cols)]
    else:
        align_flags = list(align_right) + [True] * (n_cols - len(align_right))

    gap = " " * padding

    def render_row(row: Sequence[str]) -> str:
        cells = []
        for j, cell in enumerate(row):
            if align_flags[j]:
                cells.append(cell.rjust(widths[j]))
            else:
                cells.append(cell.ljust(widths[j]))
        return gap.join(cells).rstrip()

    lines: List[str] = []
    if header_row is not None:
        lines.append(render_row(header_row))
        lines.append(render_row(["-" * w for w in widths]))
    lines.extend(render_row(row) for row in materialised)
    return "\n".join(lines)
