"""Small validation helpers shared across the package.

These helpers raise :class:`ValueError`/:class:`TypeError` with uniform,
informative messages.  Domain-specific validation (platform consistency,
configuration feasibility, ...) lives next to the corresponding classes and
raises the richer exceptions of :mod:`repro.exceptions`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "check_positive",
    "check_positive_int",
    "check_non_negative_int",
    "check_fraction",
    "check_probability_matrix",
]


def check_positive(value: float, name: str) -> float:
    """Ensure *value* is a finite, strictly positive real number."""
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return value


def check_positive_int(value: int, name: str) -> int:
    """Ensure *value* is a strictly positive integer."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


def check_non_negative_int(value: int, name: str) -> int:
    """Ensure *value* is an integer >= 0."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_fraction(value: float, name: str, *, allow_zero: bool = True,
                   allow_one: bool = True) -> float:
    """Ensure *value* lies in the unit interval ``[0, 1]``.

    ``allow_zero`` / ``allow_one`` make the corresponding bound strict.
    """
    value = float(value)
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    low_ok = value > 0 or (allow_zero and value == 0)
    high_ok = value < 1 or (allow_one and value == 1)
    if not (low_ok and high_ok):
        raise ValueError(f"{name} must lie in the unit interval, got {value!r}")
    return value


def check_probability_matrix(matrix: np.ndarray, name: str = "matrix",
                             *, atol: float = 1e-9,
                             size: Optional[int] = None) -> np.ndarray:
    """Validate a (right-)stochastic matrix and return it as ``float64``.

    Every entry must lie in ``[0, 1]`` (within *atol*) and every row must sum
    to 1 (within *atol*).  Rows are *not* re-normalised: callers that build
    matrices from user input should normalise explicitly so that rounding is
    visible and intentional.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"{name} must be a square 2-D matrix, got shape {matrix.shape}")
    if size is not None and matrix.shape[0] != size:
        raise ValueError(
            f"{name} must be {size}x{size}, got {matrix.shape[0]}x{matrix.shape[1]}"
        )
    if np.any(matrix < -atol) or np.any(matrix > 1 + atol):
        raise ValueError(f"{name} has entries outside [0, 1]")
    row_sums = matrix.sum(axis=1)
    if not np.allclose(row_sums, 1.0, atol=atol):
        raise ValueError(
            f"{name} rows must sum to 1 (got row sums {row_sums.tolist()})"
        )
    return matrix
