"""Shared utilities: RNG management, validation helpers, text tables."""

from repro.utils.rng import (
    SeedLike,
    as_generator,
    spawn_generators,
    spawn_seeds,
    stable_hash_seed,
)
from repro.utils.tables import format_table
from repro.utils.validation import (
    check_fraction,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability_matrix,
)

__all__ = [
    "SeedLike",
    "as_generator",
    "spawn_generators",
    "spawn_seeds",
    "stable_hash_seed",
    "format_table",
    "check_fraction",
    "check_non_negative_int",
    "check_positive",
    "check_positive_int",
    "check_probability_matrix",
]
