"""Canonical JSON serialisation and content hashing.

The campaign result store identifies "the same campaign" across processes,
machines and restarts by hashing the declarative spec that generated it.
For that to work the serialised form must be canonical: the same logical
payload must always produce the same bytes, regardless of dict insertion
order or container flavour (tuple vs list).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = ["canonical_json", "content_hash", "jsonl_line"]


def _normalise(value: Any) -> Any:
    """Map tuples to lists (JSON has no tuple) and recurse into containers."""
    if isinstance(value, dict):
        return {str(key): _normalise(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_normalise(item) for item in value]
    return value


def canonical_json(payload: Any) -> str:
    """Serialise *payload* deterministically (sorted keys, compact separators)."""
    return json.dumps(_normalise(payload), sort_keys=True, separators=(",", ":"))


def content_hash(payload: Any) -> str:
    """Hex SHA-256 of the canonical JSON form of *payload*."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def jsonl_line(payload: dict) -> str:
    """One canonical JSONL record (newline-terminated)."""
    return canonical_json(payload) + "\n"
