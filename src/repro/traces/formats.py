"""Ingestion of recorded availability logs into :class:`AvailabilityTrace`.

Desktop-grid availability archives come in a handful of shapes; this module
parses the three the trace subsystem understands and normalises them all to
the library's internal representation (an int8 state matrix, one row per
processor, one column per slot — exactly what the simulator's vectorised
``sample_block`` path replays):

* **interval CSV** (FTA-style): one ``node,start,end,state`` row per
  recorded interval, times in arbitrary units (``slot_duration`` converts
  them to slots);
* **JSONL event streams**: one JSON object per line with ``node``, ``time``
  and ``state`` keys — each event sets the node's state from that time until
  its next event;
* **compact strings**: one ``"uurdd..."`` line per processor (the
  serialisation :class:`~repro.availability.trace.AvailabilityTrace` has
  always used), or the library's JSON trace payload.

Discretisation assigns each interval the slots ``[round(start / slot),
round(end / slot))`` — a boundary slot belongs to whichever interval covers
the majority of it.  Slots no interval claims are resolved by the *gap
policy*; slots two intervals claim by the *overlap policy*.

:class:`TraceCatalog` wraps a directory of such files as a lazily-loaded,
named collection of multi-processor datasets, with per-dataset ingestion
options in an optional ``catalog.json``.
"""

from __future__ import annotations

import csv
import io
import json
import math
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.availability.trace import AvailabilityTrace
from repro.exceptions import ReproError
from repro.types import DOWN, ProcessorState

__all__ = [
    "TraceFormatError",
    "GAP_POLICIES",
    "OVERLAP_POLICIES",
    "TRACE_SUFFIXES",
    "trace_from_intervals",
    "load_interval_csv",
    "load_jsonl_events",
    "load_compact",
    "load_trace",
    "write_interval_csv",
    "write_jsonl_events",
    "write_compact",
    "write_json",
    "write_trace",
    "TraceCatalog",
]


class TraceFormatError(ReproError, ValueError):
    """A recorded trace file cannot be parsed or discretised."""


#: How slots not covered by any recorded interval are filled: ``down``
#: (machine absent from the log = crashed, the FTA convention), ``hold``
#: (the previous state persists; leading gaps are DOWN), or ``error``.
GAP_POLICIES = ("down", "hold", "error")

#: How slots claimed by two intervals are resolved: ``error`` (default),
#: ``first`` (earliest-written interval wins) or ``last``.
OVERLAP_POLICIES = ("error", "first", "last")

#: File suffix -> format dispatched by :func:`load_trace` / :class:`TraceCatalog`.
TRACE_SUFFIXES = {
    ".csv": "csv",
    ".jsonl": "jsonl",
    ".ndjson": "jsonl",
    ".json": "json",
    ".trace": "compact",
    ".txt": "compact",
}

_UNSET = -1  # sentinel state code for "no interval claimed this slot yet"


def _slot_index(time: float, slot_duration: float) -> int:
    """Half-up rounding of ``time / slot_duration`` (deterministic, no banker's)."""
    return int(math.floor(time / slot_duration + 0.5))


def _read_text(source: Union[str, Path]) -> str:
    path = Path(source)
    try:
        return path.read_text()
    except OSError as error:
        raise TraceFormatError(f"cannot read trace file {path}: {error}") from error


def trace_from_intervals(
    intervals: Iterable[Tuple[str, float, float, Union[str, int]]],
    *,
    slot_duration: float = 1.0,
    gap: str = "down",
    overlap: str = "error",
    horizon: Optional[int] = None,
) -> AvailabilityTrace:
    """Discretise ``(node, start, end, state)`` interval records into a trace.

    Nodes become rows in sorted node-name order.  ``horizon`` forces the
    number of slots (missing tail slots follow the gap policy, longer
    recordings are truncated); when omitted the latest interval end defines
    it.
    """
    if slot_duration <= 0:
        raise TraceFormatError(f"slot_duration must be > 0, got {slot_duration}")
    if gap not in GAP_POLICIES:
        raise TraceFormatError(f"unknown gap policy {gap!r}; expected one of {GAP_POLICIES}")
    if overlap not in OVERLAP_POLICIES:
        raise TraceFormatError(
            f"unknown overlap policy {overlap!r}; expected one of {OVERLAP_POLICIES}"
        )
    per_node: Dict[str, List[Tuple[int, int, int]]] = {}
    last_slot = 0
    for record_index, record in enumerate(intervals):
        try:
            node, start, end, state = record
            start = float(start)
            end = float(end)
            code = int(ProcessorState.coerce(state))
        except (TypeError, ValueError) as error:
            raise TraceFormatError(f"bad interval record #{record_index}: {error}") from error
        if end < start:
            raise TraceFormatError(
                f"interval record #{record_index}: end {end} precedes start {start}"
            )
        first = _slot_index(start, slot_duration)
        stop = _slot_index(end, slot_duration)
        if first < 0:
            raise TraceFormatError(f"interval record #{record_index}: negative start time")
        per_node.setdefault(str(node), []).append((first, stop, code))
        last_slot = max(last_slot, stop)
    if not per_node:
        raise TraceFormatError("no interval records: a trace needs at least one node")
    num_slots = last_slot if horizon is None else int(horizon)
    if num_slots < 1:
        raise TraceFormatError(f"trace horizon must be >= 1 slot, got {num_slots}")

    nodes = sorted(per_node)
    matrix = np.full((len(nodes), num_slots), _UNSET, dtype=np.int8)
    for row, node in enumerate(nodes):
        for first, stop, code in per_node[node]:
            first = min(first, num_slots)
            stop = min(stop, num_slots)
            if stop <= first:
                continue  # interval shorter than half a slot, or past the horizon
            window = matrix[row, first:stop]
            claimed = window != _UNSET
            if claimed.any() and overlap == "error":
                clash = first + int(np.flatnonzero(claimed)[0])
                raise TraceFormatError(
                    f"node {node!r}: overlapping intervals claim slot {clash} "
                    "(pass overlap='first' or 'last' to resolve)"
                )
            if overlap == "first":
                window[~claimed] = code
            else:
                window[:] = code
    _fill_gaps(matrix, nodes, gap)
    return AvailabilityTrace(matrix)


def _fill_gaps(matrix: np.ndarray, nodes: Sequence[str], gap: str) -> None:
    """Resolve ``_UNSET`` slots in place according to the gap policy."""
    for row, node in enumerate(nodes):
        holes = matrix[row] == _UNSET
        if not holes.any():
            continue
        if gap == "error":
            raise TraceFormatError(
                f"node {node!r}: slot {int(np.flatnonzero(holes)[0])} is covered by "
                "no interval (pass gap='down' or 'hold' to fill gaps)"
            )
        if gap == "down":
            matrix[row, holes] = int(DOWN)
            continue
        # gap == "hold": each hole repeats the last recorded state before it;
        # leading holes (no state yet) are DOWN.
        values = matrix[row].astype(np.int64)
        indices = np.arange(values.size)
        known = np.where(holes, -1, indices)
        carried = np.maximum.accumulate(known)
        filled = np.where(carried >= 0, values[np.maximum(carried, 0)], int(DOWN))
        matrix[row] = filled.astype(np.int8)


# ----------------------------------------------------------------------
# Readers
# ----------------------------------------------------------------------
def load_interval_csv(
    source: Union[str, Path],
    *,
    slot_duration: float = 1.0,
    gap: str = "down",
    overlap: str = "error",
    horizon: Optional[int] = None,
) -> AvailabilityTrace:
    """Parse an FTA-style ``node,start,end,state`` CSV file into a trace.

    A header row is recognised (and skipped) when its second column is not
    numeric.  ``state`` accepts the single-character codes ``u``/``r``/``d``
    or the integer codes 0/1/2.
    """
    text = _read_text(source)
    records: List[Tuple[str, float, float, str]] = []
    header_skipped = False
    for line_number, row in enumerate(csv.reader(io.StringIO(text)), start=1):
        if not row or (len(row) == 1 and not row[0].strip()):
            continue
        if row[0].lstrip().startswith("#"):
            continue
        if len(row) != 4:
            raise TraceFormatError(
                f"{source}:{line_number}: expected 4 columns (node,start,end,state), "
                f"got {len(row)}"
            )
        node, start, end, state = (column.strip() for column in row)
        try:
            start_time = float(start)
            end_time = float(end)
        except ValueError:
            if not records and not header_skipped:
                header_skipped = True
                continue  # header row (possibly after comments/blank lines)
            raise TraceFormatError(
                f"{source}:{line_number}: non-numeric start/end "
                f"({start!r}, {end!r})"
            ) from None
        records.append((node, start_time, end_time, state))
    if not records:
        raise TraceFormatError(f"{source}: no interval rows found")
    return trace_from_intervals(
        records, slot_duration=slot_duration, gap=gap, overlap=overlap, horizon=horizon
    )


def load_jsonl_events(
    source: Union[str, Path],
    *,
    slot_duration: float = 1.0,
    gap: str = "down",
    overlap: str = "error",
    horizon: Optional[int] = None,
) -> AvailabilityTrace:
    """Parse a JSONL event stream (``{"node":…, "time":…, "state":…}`` per line).

    Each event sets the node's state from its time until the node's next
    event; the final event of each node extends to the trace horizon (the
    latest event time across all nodes unless ``horizon`` is given).  Events
    need not be sorted — they are ordered per node before conversion.
    """
    text = _read_text(source)
    events: Dict[str, List[Tuple[float, int]]] = {}
    latest = 0.0
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            payload = json.loads(line)
            node = str(payload["node"])
            time = float(payload["time"])
            code = int(ProcessorState.coerce(payload["state"]))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
            raise TraceFormatError(f"{source}:{line_number}: bad event: {error}") from error
        events.setdefault(node, []).append((time, code))
        latest = max(latest, time)
    if not events:
        raise TraceFormatError(f"{source}: no events found")
    end_time = latest if horizon is None else horizon * slot_duration
    records: List[Tuple[str, float, float, int]] = []
    for node, node_events in events.items():
        node_events.sort(key=lambda event: event[0])
        for (time, code), (next_time, _) in zip(node_events, node_events[1:]):
            records.append((node, time, next_time, code))
        final_time, final_code = node_events[-1]
        if final_time < end_time:
            records.append((node, final_time, end_time, final_code))
    return trace_from_intervals(
        records, slot_duration=slot_duration, gap=gap, overlap=overlap, horizon=horizon
    )


def load_compact(source: Union[str, Path]) -> AvailabilityTrace:
    """Parse a compact-string file: one ``"uurdd..."`` row per processor."""
    rows = []
    for line in _read_text(source).splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        rows.append(line)
    if not rows:
        raise TraceFormatError(f"{source}: no trace rows found")
    try:
        return AvailabilityTrace(rows)
    except (ValueError, ReproError) as error:
        raise TraceFormatError(f"{source}: {error}") from error


def load_trace(
    source: Union[str, Path],
    *,
    slot_duration: float = 1.0,
    gap: str = "down",
    overlap: str = "error",
    horizon: Optional[int] = None,
) -> AvailabilityTrace:
    """Load any supported trace file, dispatching the format by suffix.

    ``.csv`` is interval CSV, ``.jsonl``/``.ndjson`` a JSONL event stream,
    ``.json`` the library's trace payload, ``.trace``/``.txt`` compact
    strings (see :data:`TRACE_SUFFIXES`).  The discretisation options apply
    to the timed formats only — compact/JSON rows are already slotted.
    """
    path = Path(source)
    kind = TRACE_SUFFIXES.get(path.suffix.lower())
    if kind is None:
        raise TraceFormatError(
            f"unrecognised trace file suffix {path.suffix!r} for {path} "
            f"(expected one of {sorted(TRACE_SUFFIXES)})"
        )
    if kind == "csv":
        return load_interval_csv(
            path, slot_duration=slot_duration, gap=gap, overlap=overlap, horizon=horizon
        )
    if kind == "jsonl":
        return load_jsonl_events(
            path, slot_duration=slot_duration, gap=gap, overlap=overlap, horizon=horizon
        )
    if kind == "json":
        try:
            payload = json.loads(_read_text(path))
            return AvailabilityTrace.from_dict(payload)
        except (json.JSONDecodeError, ValueError, ReproError) as error:
            raise TraceFormatError(f"{path}: {error}") from error
    return load_compact(path)


# ----------------------------------------------------------------------
# Writers (inverses of the readers, used by ``repro traces convert``)
# ----------------------------------------------------------------------
def _trace_runs(trace: AvailabilityTrace) -> List[List[Tuple[int, int, int]]]:
    """Per-row run-length encoding: lists of ``(first_slot, stop_slot, code)``."""
    from repro.availability.statistics import state_runs

    encoded = []
    for row in range(trace.num_processors):
        runs = []
        position = 0
        for state, length in state_runs(trace.row(row)):
            runs.append((position, position + length, int(state)))
            position += length
        encoded.append(runs)
    return encoded


def _node_name(index: int, count: int) -> str:
    width = max(2, len(str(count - 1)))
    return f"node{index:0{width}d}"


def write_interval_csv(
    trace: AvailabilityTrace,
    path: Union[str, Path],
    *,
    slot_duration: float = 1.0,
    header: bool = True,
) -> Path:
    """Write *trace* as an FTA-style interval CSV (inverse of the loader)."""
    path = Path(path)
    lines = ["node,start,end,state"] if header else []
    for row, runs in enumerate(_trace_runs(trace)):
        node = _node_name(row, trace.num_processors)
        for first, stop, code in runs:
            state = ProcessorState(code).char
            lines.append(
                f"{node},{_format_time(first * slot_duration)},"
                f"{_format_time(stop * slot_duration)},{state}"
            )
    path.write_text("\n".join(lines) + "\n")
    return path


def write_jsonl_events(
    trace: AvailabilityTrace,
    path: Union[str, Path],
    *,
    slot_duration: float = 1.0,
) -> Path:
    """Write *trace* as a JSONL event stream (inverse of the loader).

    Besides one event per state change, each node gets a terminal event at
    the trace end repeating its final state, so the stream is
    self-delimiting: reloading without an explicit ``horizon`` recovers the
    full recording (the loader's implicit horizon is the latest event time,
    and the terminal event's own interval is empty).
    """
    path = Path(path)
    lines = []
    for row, runs in enumerate(_trace_runs(trace)):
        node = _node_name(row, trace.num_processors)
        events = [(first, code) for first, _stop, code in runs]
        events.append((trace.horizon, events[-1][1]))
        for first, code in events:
            lines.append(
                json.dumps(
                    {
                        "node": node,
                        "time": first * slot_duration,
                        "state": ProcessorState(code).char,
                    },
                    sort_keys=True,
                )
            )
    path.write_text("\n".join(lines) + "\n")
    return path


def write_compact(trace: AvailabilityTrace, path: Union[str, Path]) -> Path:
    """Write *trace* as compact per-processor strings, one per line."""
    path = Path(path)
    path.write_text("\n".join(trace.to_strings()) + "\n")
    return path


def write_json(trace: AvailabilityTrace, path: Union[str, Path]) -> Path:
    """Write *trace* as the library's JSON payload (``AvailabilityTrace.to_dict``)."""
    path = Path(path)
    path.write_text(json.dumps(trace.to_dict()) + "\n")
    return path


_WRITERS = {
    "csv": write_interval_csv,
    "jsonl": write_jsonl_events,
    "compact": write_compact,
    "json": write_json,
}


def write_trace(
    trace: AvailabilityTrace,
    path: Union[str, Path],
    *,
    format: Optional[str] = None,
    slot_duration: float = 1.0,
) -> Path:
    """Write *trace* in any supported format (by suffix, or explicit ``format``)."""
    path = Path(path)
    kind = format or TRACE_SUFFIXES.get(path.suffix.lower())
    if kind not in _WRITERS:
        raise TraceFormatError(
            f"cannot infer an output format for {path} "
            f"(pass format= one of {sorted(_WRITERS)})"
        )
    writer = _WRITERS[kind]
    if kind in ("csv", "jsonl"):
        return writer(trace, path, slot_duration=slot_duration)
    return writer(trace, path)


def _format_time(value: float) -> str:
    """Render times without a trailing ``.0`` when they are whole."""
    return str(int(value)) if float(value).is_integer() else repr(value)


# ----------------------------------------------------------------------
# Catalogues of named datasets
# ----------------------------------------------------------------------
class TraceCatalog:
    """A directory of recorded datasets, loaded lazily by name.

    Every file with a recognised suffix (see :data:`TRACE_SUFFIXES`) is a
    dataset; its name is the file stem.  An optional ``catalog.json`` maps
    dataset names to ingestion options (``slot``, ``gap``, ``overlap``,
    ``horizon``), so e.g. a CSV with 15-minute timestamps can declare
    ``{"desktop_week": {"slot": 900}}`` once instead of every caller passing
    ``slot_duration=900``.  Loaded traces are cached; the catalogue is the
    backing store of the ``trace-catalog`` availability substrate.
    """

    OPTIONS_FILE = "catalog.json"

    def __init__(self, directory: Union[str, Path]):
        self._directory = Path(directory)
        if not self._directory.is_dir():
            raise TraceFormatError(f"trace catalog directory {self._directory} does not exist")
        self._paths: Dict[str, Path] = {}
        for path in sorted(self._directory.iterdir()):
            if path.suffix.lower() not in TRACE_SUFFIXES or not path.is_file():
                continue
            if path.name == self.OPTIONS_FILE:
                continue
            if path.stem in self._paths:
                raise TraceFormatError(
                    f"trace catalog {self._directory}: duplicate dataset name "
                    f"{path.stem!r} ({self._paths[path.stem].name} vs {path.name})"
                )
            self._paths[path.stem] = path
        self._options = self._load_options()
        self._cache: Dict[tuple, AvailabilityTrace] = {}

    def _load_options(self) -> Dict[str, dict]:
        options_path = self._directory / self.OPTIONS_FILE
        if not options_path.exists():
            return {}
        try:
            payload = json.loads(options_path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise TraceFormatError(f"cannot read {options_path}: {error}") from error
        if not isinstance(payload, dict):
            raise TraceFormatError(f"{options_path} must hold one JSON object")
        return {str(name): dict(opts) for name, opts in payload.items()}

    # ------------------------------------------------------------------
    @property
    def directory(self) -> Path:
        return self._directory

    def names(self) -> List[str]:
        """Dataset names, sorted."""
        return sorted(self._paths)

    def __contains__(self, name: str) -> bool:
        return name in self._paths

    def __len__(self) -> int:
        return len(self._paths)

    def path(self, name: str) -> Path:
        """The file backing dataset *name*."""
        try:
            return self._paths[name]
        except KeyError:
            raise TraceFormatError(
                f"trace catalog {self._directory} has no dataset {name!r} "
                f"(available: {self.names()})"
            ) from None

    def options(self, name: str) -> dict:
        """The ``catalog.json`` ingestion options for dataset *name* (may be empty)."""
        return dict(self._options.get(name, {}))

    def load(self, name: str, *, defaults: Optional[dict] = None) -> AvailabilityTrace:
        """Load (and cache) dataset *name*.

        ``defaults`` supplies caller-side ingestion options (``slot``,
        ``gap``, ``overlap``, ``horizon`` — e.g. from a campaign spec or CLI
        flags); per-dataset ``catalog.json`` entries take precedence over
        them.  The cache is keyed by the effective options, so the same
        dataset loaded under different discretisations stays distinct.
        """
        effective = {**(defaults or {}), **self._options.get(name, {})}
        key = (name, tuple(sorted(effective.items())))
        cached = self._cache.get(key)
        if cached is None:
            cached = load_trace(
                self.path(name),
                slot_duration=float(effective.get("slot", 1.0)),
                gap=str(effective.get("gap", "down")),
                overlap=str(effective.get("overlap", "error")),
                horizon=effective.get("horizon"),
            )
            self._cache[key] = cached
        return cached

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TraceCatalog {self._directory} datasets={self.names()}>"
