"""Calibrated workload generation from recorded traces.

Three ways of turning one recorded multi-processor dataset into a substrate
for an arbitrary number of simulated processors:

* **row bootstrap** — each simulated processor replays one recorded row,
  drawn with replacement (classic bootstrap over machines);
* **block bootstrap** — each simulated processor's sequence is stitched from
  fixed-length blocks cut at random offsets of random recorded rows, which
  preserves short-range temporal structure while decoupling the generated
  horizon from the recorded one;
* **fit-then-sample** — fit one of the synthetic families
  (:mod:`repro.traces.fit`) and sample fresh trajectories from it.

All generators are deterministic in the supplied :class:`numpy.random.Generator`,
so campaign platforms built from them inherit the experiment harness's exact
reproducibility (the scenario's platform seed fully determines the draw).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.availability.model import AvailabilityModel
from repro.availability.trace import AvailabilityTrace, TraceAvailabilityModel
from repro.exceptions import ReproError
from repro.traces.fit import fit_model
from repro.utils.rng import SeedLike, as_generator, spawn_generators

__all__ = [
    "TraceResampleError",
    "bootstrap_rows",
    "block_bootstrap_row",
    "bootstrap_models",
    "bootstrap_trace",
    "fitted_trace",
]


class TraceResampleError(ReproError, ValueError):
    """A resampling request is inconsistent with the recorded dataset."""


def bootstrap_rows(
    trace: AvailabilityTrace, count: int, rng: np.random.Generator
) -> List[np.ndarray]:
    """*count* recorded rows drawn with replacement (row bootstrap)."""
    if count < 0:
        raise TraceResampleError(f"count must be >= 0, got {count}")
    indices = rng.integers(0, trace.num_processors, size=count)
    return [trace.row(int(index)) for index in indices]


def block_bootstrap_row(
    trace: AvailabilityTrace,
    horizon: int,
    rng: np.random.Generator,
    *,
    block_length: int,
) -> np.ndarray:
    """One synthetic row of *horizon* slots stitched from random recorded blocks.

    Each block is ``block_length`` consecutive slots cut from a uniformly
    random (row, offset) position of the recording; the final block is
    truncated to fit.  Blocks never wrap past the end of a recorded row, so
    no artificial state seam is introduced inside a block.
    """
    if horizon < 1:
        raise TraceResampleError(f"horizon must be >= 1, got {horizon}")
    if block_length < 1:
        raise TraceResampleError(f"block_length must be >= 1, got {block_length}")
    block_length = min(block_length, trace.horizon)
    pieces = []
    filled = 0
    max_offset = trace.horizon - block_length
    while filled < horizon:
        row = int(rng.integers(0, trace.num_processors))
        offset = int(rng.integers(0, max_offset + 1))
        take = min(block_length, horizon - filled)
        pieces.append(trace.row(row)[offset: offset + take])
        filled += take
    return np.concatenate(pieces)


def bootstrap_models(
    trace: AvailabilityTrace,
    rng: np.random.Generator,
    count: int,
    *,
    block_length: Optional[int] = None,
    horizon: Optional[int] = None,
    wrap: bool = True,
) -> List[AvailabilityModel]:
    """Per-processor replay models resampled from a recorded dataset.

    With ``block_length=None`` each model replays one bootstrap-drawn
    recorded row; otherwise each model replays a block-bootstrap sequence of
    ``horizon`` slots (default: the recorded horizon).  This is the factory
    behind the ``trace-bootstrap`` availability substrate.
    """
    if block_length is None:
        return [TraceAvailabilityModel(row, wrap=wrap) for row in bootstrap_rows(trace, count, rng)]
    length = trace.horizon if horizon is None else int(horizon)
    return [
        TraceAvailabilityModel(
            block_bootstrap_row(trace, length, rng, block_length=block_length), wrap=wrap
        )
        for _ in range(count)
    ]


def bootstrap_trace(
    trace: AvailabilityTrace,
    num_processors: int,
    seed: SeedLike = None,
    *,
    block_length: Optional[int] = None,
    horizon: Optional[int] = None,
) -> AvailabilityTrace:
    """A resampled fixed trace for *num_processors* rows (``repro traces sample``)."""
    rng = as_generator(seed)
    length = trace.horizon if horizon is None else int(horizon)
    if block_length is None:
        if length > trace.horizon:
            raise TraceResampleError(
                f"row bootstrap cannot extend the recorded horizon "
                f"({trace.horizon} slots) to {length}; use block_length= instead"
            )
        rows = [row[:length] for row in bootstrap_rows(trace, num_processors, rng)]
    else:
        rows = [
            block_bootstrap_row(trace, length, rng, block_length=block_length)
            for _ in range(num_processors)
        ]
    return AvailabilityTrace(np.vstack(rows))


def fitted_trace(
    kind: str,
    trace: AvailabilityTrace,
    num_processors: int,
    horizon: int,
    seed: SeedLike = None,
    **fit_options,
) -> AvailabilityTrace:
    """Fit family *kind* to *trace*, then sample a fresh synthetic trace.

    The "fit-then-sample" generator: campaigns use the registered ``fitted``
    substrate instead, but this one-call version backs ``repro traces
    sample`` and the round-trip recovery tests (fit → generate → fit).
    """
    fitted = fit_model(kind, trace, **fit_options)
    root = as_generator(seed)
    hazard_builder = fitted.hazard_builder
    # Overlay fits (correlated) need one extra stream for the platform-level
    # hazard process; hazard-free fits keep the original recipe untouched.
    count = num_processors + (1 if hazard_builder is not None else 0)
    generators = spawn_generators(int(root.integers(0, 2**62)), count)
    rows = [
        fitted.instantiate().sample_trajectory(horizon, generators[index])
        for index in range(num_processors)
    ]
    matrix = np.vstack(rows)
    if hazard_builder is not None:
        hazard = hazard_builder(num_processors)
        hazard.reset(generators[-1])
        hazard.overlay(0, matrix)
    return AvailabilityTrace(matrix)
