"""Recorded-trace workloads: ingestion, model fitting, calibrated generation.

The paper's experiments run on synthetic substrates; its conclusion proposes
testing the heuristics' robustness on *recorded* desktop-grid availability.
This subpackage is that pipeline:

* :mod:`~repro.traces.formats` — parse interval CSV / JSONL event / compact
  string logs into :class:`~repro.availability.trace.AvailabilityTrace`
  matrices (int8 state codes, the simulator's vectorised replay format),
  with slot discretisation and gap/overlap policies;
  :class:`~repro.traces.formats.TraceCatalog` wraps a directory of named
  datasets;
* :mod:`~repro.traces.fit` — pooled and per-processor estimators producing
  calibrated Markov / semi-Markov / diurnal models with goodness-of-fit
  summaries (log-likelihood, per-state KS distances);
* :mod:`~repro.traces.resample` — bootstrap and block-bootstrap resamplers
  plus fit-then-sample generation.

Campaigns reach all of this through the availability registry: the
``trace-catalog``, ``trace-bootstrap`` and ``fitted`` substrates
(:mod:`repro.availability.registry`) accept any ingestible dataset, so one
spec can sweep replayed / resampled / fitted versions of the same recording.
The ``repro traces`` CLI (``convert``, ``stats``, ``fit``, ``sample``)
exposes the pipeline directly.
"""

from repro.traces.fit import (
    FIT_KINDS,
    FittedModel,
    SojournFit,
    TraceFitError,
    fit_correlated,
    fit_degradation,
    fit_diurnal,
    fit_markov,
    fit_model,
    fit_per_processor,
    fit_semi_markov,
    ks_distance,
)
from repro.traces.formats import (
    TraceCatalog,
    TraceFormatError,
    load_compact,
    load_interval_csv,
    load_jsonl_events,
    load_trace,
    trace_from_intervals,
    write_trace,
)
from repro.traces.resample import (
    TraceResampleError,
    block_bootstrap_row,
    bootstrap_models,
    bootstrap_rows,
    bootstrap_trace,
    fitted_trace,
)

__all__ = [
    "FIT_KINDS",
    "FittedModel",
    "SojournFit",
    "TraceCatalog",
    "TraceFitError",
    "TraceFormatError",
    "TraceResampleError",
    "block_bootstrap_row",
    "bootstrap_models",
    "bootstrap_rows",
    "bootstrap_trace",
    "fit_correlated",
    "fit_degradation",
    "fit_diurnal",
    "fit_markov",
    "fit_model",
    "fit_per_processor",
    "fit_semi_markov",
    "fitted_trace",
    "ks_distance",
    "load_compact",
    "load_interval_csv",
    "load_jsonl_events",
    "load_trace",
    "trace_from_intervals",
    "write_trace",
]
