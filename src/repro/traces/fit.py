"""Fitting calibrated availability models to recorded traces.

The paper's conclusion proposes testing the heuristics on *recorded*
desktop-grid availability and on the "flawed" models a scheduler would fit
to it.  This module is that calibration step: given an ingested
:class:`~repro.availability.trace.AvailabilityTrace` (or raw state
sequences), it estimates the parameters of each registered synthetic
substrate —

* ``markov`` — the 3-state chain of Section V, via
  :func:`repro.availability.statistics.estimate_markov_matrix`;
* ``semi-markov`` — embedded jump chain + per-state sojourn distributions
  (Weibull / log-normal / geometric) fitted over the *complete* interval
  lengths (edge-censored first/last runs excluded, see
  :func:`repro.availability.statistics.state_intervals`);
* ``diurnal`` — hour-of-day folding: transition counts are folded modulo a
  day length and a per-phase transition matrix is estimated for each bin.

Every fit returns a :class:`FittedModel` carrying goodness-of-fit summaries:
the log-likelihood of the observed transitions/sojourns under the fitted
model, and per-state Kolmogorov–Smirnov distances between the empirical
interval-length distributions and the fitted sojourn laws.  ``repro traces
fit`` prints these side by side so the three calibrations of one dataset can
be compared directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.availability.diurnal import DiurnalAvailabilityModel, DiurnalPhase
from repro.availability.markov import MarkovAvailabilityModel
from repro.availability.model import AvailabilityModel
from repro.availability.semi_markov import (
    GeometricHolding,
    HoldingTimeDistribution,
    LogNormalHolding,
    SemiMarkovAvailabilityModel,
    WeibullHolding,
)
from repro.availability.statistics import (
    _as_state_array,
    state_intervals,
    state_runs,
    transition_counts,
)
from repro.availability.trace import AvailabilityTrace
from repro.exceptions import ReproError
from repro.types import DOWN, RECLAIMED, UP, ProcessorState

__all__ = [
    "FIT_KINDS",
    "SOJOURN_FAMILIES",
    "TraceFitError",
    "SojournFit",
    "FittedModel",
    "fit_markov",
    "fit_semi_markov",
    "fit_diurnal",
    "fit_correlated",
    "fit_degradation",
    "fit_model",
    "fit_per_processor",
    "ks_distance",
]

#: The model kinds :func:`fit_model` dispatches over (registered substrate names).
FIT_KINDS = ("markov", "semi-markov", "diurnal", "correlated", "degradation")

#: Sojourn-distribution families the semi-Markov fitter can use per state.
SOJOURN_FAMILIES = ("weibull", "lognormal", "geometric")

_STATES = (UP, RECLAIMED, DOWN)

#: Probability floor used in log-likelihoods so unobserved-but-possible
#: transitions never produce ``-inf`` (they are heavily penalised instead).
_LOG_FLOOR = 1e-300


class TraceFitError(ReproError, ValueError):
    """A trace cannot support the requested fit (too short, no data...)."""


def _sequences_of(data: Union[AvailabilityTrace, np.ndarray, Sequence]) -> List[np.ndarray]:
    """Normalise fitter input to a list of validated per-processor state vectors."""
    if isinstance(data, AvailabilityTrace):
        rows: List = [data.row(index) for index in range(data.num_processors)]
    elif isinstance(data, np.ndarray):
        if data.ndim == 1:
            rows = [data]
        elif data.ndim == 2:
            rows = list(data)
        else:
            raise TraceFitError(f"state arrays must be 1-D or 2-D, got ndim={data.ndim}")
    else:
        rows = list(data)
        if rows and (np.isscalar(rows[0]) or isinstance(rows[0], ProcessorState)):
            rows = [rows]
    return [_as_state_array(row) for row in rows]


def ks_distance(samples: Sequence[int], cdf: Callable[[np.ndarray], np.ndarray]) -> float:
    """Kolmogorov–Smirnov distance between integer *samples* and a sojourn CDF.

    Sojourn laws are slot-valued (the continuous families are used through
    ceiling), so the comparison is against the *discretised* model: the
    distance is evaluated at each observed atom ``k`` (``ECDF(k)`` vs
    ``CDF(k)``) and just below it (``ECDF(k - 1)`` side vs ``CDF(k - 1)``),
    which is the exact discrete statistic for geometric fits and the natural
    discretisation for Weibull/log-normal ones.
    """
    values = np.sort(np.asarray(samples, dtype=float))
    if values.size == 0:
        return float("nan")
    unique, counts = np.unique(values, return_counts=True)
    ecdf = np.cumsum(counts) / values.size
    model = np.clip(np.asarray(cdf(unique), dtype=float), 0.0, 1.0)
    model_before = np.clip(np.asarray(cdf(unique - 1.0), dtype=float), 0.0, 1.0)
    below = np.abs(ecdf - model)
    above = np.abs(np.concatenate([[0.0], ecdf[:-1]]) - model_before)
    return float(np.max(np.maximum(below, above)))


@dataclass(frozen=True)
class SojournFit:
    """One state's fitted sojourn distribution plus its fit diagnostics."""

    state: ProcessorState
    family: str
    distribution: HoldingTimeDistribution
    num_intervals: int
    ks: float
    log_likelihood: float

    def describe(self) -> str:
        return (
            f"{self.state.name}: {self.distribution.describe()} "
            f"(n={self.num_intervals}, KS={self.ks:.3f})"
        )


@dataclass(frozen=True)
class FittedModel:
    """A calibrated availability model with goodness-of-fit summaries.

    ``instantiate()`` builds a *fresh* model instance — models carry
    per-trajectory sampling state (semi-Markov holding counters, diurnal
    clocks), so every simulated processor must get its own instance.  The
    shared read-only parameters (matrices, holding distributions) are reused
    across instances.
    """

    kind: str
    parameters: Dict[str, object]
    log_likelihood: float
    num_transitions: int
    ks: Dict[str, float]
    sojourns: Tuple[SojournFit, ...] = ()
    _builder: Callable[[], AvailabilityModel] = field(repr=False, compare=False, default=None)
    #: Optional platform-hazard constructor (``num_workers -> GroupHazardProcess``)
    #: carried by fits of overlay substrates such as ``correlated``.
    _hazard_builder: Optional[Callable] = field(repr=False, compare=False, default=None)

    def instantiate(self) -> AvailabilityModel:
        """A fresh, independently-sampleable model with the fitted parameters."""
        return self._builder()

    @property
    def hazard_builder(self) -> Optional[Callable]:
        """``num_workers -> GroupHazardProcess`` for overlay fits, else ``None``."""
        return self._hazard_builder

    @property
    def model(self) -> AvailabilityModel:
        """One shared instance, for read-only inspection (matrix, describe...)."""
        return self.instantiate()

    def make_models(self, count: int) -> List[AvailabilityModel]:
        """*count* independent instances (one per simulated processor)."""
        return [self.instantiate() for _ in range(count)]

    def summary(self) -> Dict[str, object]:
        """JSON-friendly summary (CLI tables, reports)."""
        return {
            "kind": self.kind,
            "log_likelihood": self.log_likelihood,
            "num_transitions": self.num_transitions,
            "ks": dict(self.ks),
            "parameters": dict(self.parameters),
        }


# ----------------------------------------------------------------------
# Markov
# ----------------------------------------------------------------------
def _transition_log_likelihood(counts: np.ndarray, matrix: np.ndarray) -> float:
    observed = counts > 0
    return float(np.sum(counts[observed] * np.log(np.maximum(matrix[observed], _LOG_FLOOR))))


def _geometric_cdf(p: float) -> Callable[[np.ndarray], np.ndarray]:
    return lambda k: 1.0 - np.power(1.0 - p, np.maximum(np.asarray(k, dtype=float), 0.0))


def fit_markov(
    data: Union[AvailabilityTrace, np.ndarray, Sequence],
    *,
    prior: float = 0.0,
    censor_edges: bool = True,
) -> FittedModel:
    """Maximum-likelihood 3-state Markov fit, pooled over all processors.

    The KS diagnostics compare each state's complete (edge-censoring per
    ``censor_edges``) interval lengths against the geometric sojourn law the
    fitted chain implies, which is exactly where a Markov fit of heavy-tailed
    desktop-grid data shows its "flaw".
    """
    sequences = _sequences_of(data)
    counts = np.zeros((3, 3), dtype=np.int64)
    for sequence in sequences:
        counts += transition_counts(sequence)
    if counts.sum() == 0:
        raise TraceFitError("cannot fit a Markov chain: no transitions in the trace")
    # Pool the counts across processors (estimate_markov_matrix is per
    # sequence); rows with no observations stay "stay in place", matching it.
    smoothed = counts.astype(float) + float(prior)
    matrix = np.eye(3)
    for index in range(3):
        total = smoothed[index].sum()
        if total > 0:
            matrix[index] = smoothed[index] / total
    intervals = _pooled_intervals(sequences, censor_edges=censor_edges)
    ks: Dict[str, float] = {}
    for state in _STATES:
        stay = float(matrix[int(state), int(state)])
        leave = max(1.0 - stay, 1e-12)
        ks[state.name] = ks_distance(intervals[state], _geometric_cdf(leave))
    model = MarkovAvailabilityModel(matrix)
    return FittedModel(
        kind="markov",
        parameters={"matrix": matrix.tolist(), "prior": float(prior)},
        log_likelihood=_transition_log_likelihood(counts, matrix),
        num_transitions=int(counts.sum()),
        ks=ks,
        _builder=lambda: MarkovAvailabilityModel(model.matrix),
    )


def _pooled_intervals(
    sequences: Sequence[np.ndarray], *, censor_edges: bool
) -> Dict[ProcessorState, List[int]]:
    pooled: Dict[ProcessorState, List[int]] = {UP: [], RECLAIMED: [], DOWN: []}
    for sequence in sequences:
        for state, lengths in state_intervals(sequence, censor_edges=censor_edges).items():
            pooled[state].extend(lengths)
    return pooled


# ----------------------------------------------------------------------
# Semi-Markov
# ----------------------------------------------------------------------
def _fit_weibull(lengths: np.ndarray) -> Tuple[HoldingTimeDistribution, Dict[str, float]]:
    from scipy import stats

    if np.all(lengths == lengths[0]):
        # Degenerate sample: Weibull MLE cannot converge; use a sharp
        # (high-shape) fit centred on the constant.
        shape, scale = 20.0, float(lengths[0])
    else:
        shape, _loc, scale = stats.weibull_min.fit(lengths, floc=0)
    return WeibullHolding(float(shape), float(scale)), {
        "shape": float(shape), "scale": float(scale)
    }


def _fit_lognormal(lengths: np.ndarray) -> Tuple[HoldingTimeDistribution, Dict[str, float]]:
    logs = np.log(lengths)
    mu = float(np.mean(logs))
    sigma = float(max(np.std(logs), 1e-6))
    return LogNormalHolding(mu, sigma), {"mu": mu, "sigma": sigma}


def _fit_geometric(lengths: np.ndarray) -> Tuple[HoldingTimeDistribution, Dict[str, float]]:
    p = float(min(1.0, 1.0 / max(np.mean(lengths), 1.0)))
    return GeometricHolding(p), {"p": p}


_SOJOURN_FITTERS = {
    "weibull": _fit_weibull,
    "lognormal": _fit_lognormal,
    "geometric": _fit_geometric,
}


def _sojourn_cdf(family: str, distribution: HoldingTimeDistribution):
    """Continuous CDF of a fitted sojourn family (for KS diagnostics)."""
    if family == "weibull":
        shape, scale = distribution.shape, distribution.scale

        return lambda k: 1.0 - np.exp(-np.power(np.maximum(k, 0.0) / scale, shape))
    if family == "lognormal":
        from scipy import stats

        mu, sigma = distribution.mu, distribution.sigma
        return lambda k: stats.norm.cdf((np.log(np.maximum(k, 1e-12)) - mu) / sigma)
    return _geometric_cdf(distribution.p)


def _sojourn_log_likelihood(
    family: str, distribution: HoldingTimeDistribution, lengths: np.ndarray
) -> float:
    """Discrete log-likelihood: P(T = k) = CDF(k) - CDF(k - 1) (slot-ceiled)."""
    cdf = _sojourn_cdf(family, distribution)
    k = lengths.astype(float)
    mass = np.asarray(cdf(k)) - np.asarray(cdf(k - 1.0))
    return float(np.sum(np.log(np.maximum(mass, _LOG_FLOOR))))


def fit_semi_markov(
    data: Union[AvailabilityTrace, np.ndarray, Sequence],
    *,
    families: Optional[Dict[ProcessorState, str]] = None,
    censor_edges: bool = True,
) -> FittedModel:
    """Fit a semi-Markov process: embedded jump chain + sojourn distributions.

    ``families`` maps each state to its sojourn family (default: the
    desktop-grid shape reported by the characterisation studies — Weibull
    UP sojourns, log-normal RECLAIMED and DOWN interruptions).  Sojourns are
    estimated over complete intervals only (``censor_edges=True``); the jump
    chain over all observed run-to-run transitions.
    """
    sequences = _sequences_of(data)
    chosen = {UP: "weibull", RECLAIMED: "lognormal", DOWN: "lognormal"}
    if families:
        for state, family in families.items():
            if family not in _SOJOURN_FITTERS:
                raise TraceFitError(
                    f"unknown sojourn family {family!r}; expected one of {SOJOURN_FAMILIES}"
                )
            chosen[ProcessorState.coerce(state)] = family

    # Embedded jump chain: transitions between consecutive maximal runs.
    jump_counts = np.zeros((3, 3), dtype=np.int64)
    num_jumps = 0
    for sequence in sequences:
        runs = state_runs(sequence)
        for (state, _), (target, _) in zip(runs, runs[1:]):
            jump_counts[int(state), int(target)] += 1
            num_jumps += 1
    if num_jumps == 0:
        raise TraceFitError(
            "cannot fit a semi-Markov model: the trace never changes state"
        )
    jump = np.zeros((3, 3))
    for index in range(3):
        total = jump_counts[index].sum()
        if total > 0:
            jump[index] = jump_counts[index] / total
        else:
            # Unobserved source state: split evenly over the other states
            # (the diagonal must stay zero for an embedded jump chain).
            jump[index] = [0.5 if other != index else 0.0 for other in range(3)]

    intervals = _pooled_intervals(sequences, censor_edges=censor_edges)
    holding: Dict[ProcessorState, HoldingTimeDistribution] = {}
    sojourns: List[SojournFit] = []
    ks: Dict[str, float] = {}
    log_likelihood = _transition_log_likelihood(jump_counts, np.maximum(jump, _LOG_FLOOR))
    parameters: Dict[str, object] = {"jump_matrix": jump.tolist()}
    for state in _STATES:
        lengths = np.asarray(intervals[state], dtype=float)
        family = chosen[state]
        if lengths.size == 0:
            # No complete sojourn observed: a one-slot geometric placeholder
            # (the jump chain rarely or never enters this state anyway).
            distribution, params = GeometricHolding(1.0), {"p": 1.0}
            family = "geometric"
            state_ks = float("nan")
            state_ll = 0.0
        else:
            distribution, params = _SOJOURN_FITTERS[family](lengths)
            state_ks = ks_distance(lengths, _sojourn_cdf(family, distribution))
            state_ll = _sojourn_log_likelihood(family, distribution, lengths)
        holding[state] = distribution
        ks[state.name] = state_ks
        log_likelihood += state_ll
        sojourns.append(
            SojournFit(
                state=state,
                family=family,
                distribution=distribution,
                num_intervals=int(lengths.size),
                ks=state_ks,
                log_likelihood=state_ll,
            )
        )
        parameters[state.name.lower()] = {"family": family, **params}

    return FittedModel(
        kind="semi-markov",
        parameters=parameters,
        log_likelihood=log_likelihood,
        num_transitions=num_jumps,
        ks=ks,
        sojourns=tuple(sojourns),
        _builder=lambda: SemiMarkovAvailabilityModel(jump, holding),
    )


# ----------------------------------------------------------------------
# Diurnal
# ----------------------------------------------------------------------
def fit_diurnal(
    data: Union[AvailabilityTrace, np.ndarray, Sequence],
    *,
    day_length: int = 96,
    num_phases: int = 2,
    prior: float = 0.0,
) -> FittedModel:
    """Fit a cyclic non-homogeneous model by hour-of-day folding.

    The day is cut into ``num_phases`` equal bins; every observed transition
    is folded modulo ``day_length`` and attributed to the bin of its *source*
    slot (matching the convention of
    :class:`~repro.availability.diurnal.DiurnalAvailabilityModel`, whose
    transition into slot *t* is governed by the phase at slot ``t - 1``).
    One transition matrix is estimated per bin.  Recorded logs share a wall
    clock, so all processors fold with phase offset 0.
    """
    if day_length < num_phases or num_phases < 1:
        raise TraceFitError(
            f"need day_length >= num_phases >= 1, got {day_length} and {num_phases}"
        )
    sequences = _sequences_of(data)
    phase_length = day_length // num_phases
    boundaries = [phase * phase_length for phase in range(num_phases)] + [day_length]
    counts = np.zeros((num_phases, 3, 3), dtype=np.int64)
    for sequence in sequences:
        values = sequence
        if values.size < 2:
            continue
        sources = values[:-1]
        targets = values[1:]
        slots = np.arange(values.size - 1) % day_length
        bins = np.minimum(slots // phase_length, num_phases - 1)
        np.add.at(counts, (bins, sources, targets), 1)
    total = int(counts.sum())
    if total == 0:
        raise TraceFitError("cannot fit a diurnal model: no transitions in the trace")

    phases: List[DiurnalPhase] = []
    log_likelihood = 0.0
    matrices = []
    for phase_index in range(num_phases):
        smoothed = counts[phase_index].astype(float) + float(prior)
        matrix = np.eye(3)
        for row in range(3):
            row_total = smoothed[row].sum()
            if row_total > 0:
                matrix[row] = smoothed[row] / row_total
        log_likelihood += _transition_log_likelihood(counts[phase_index], matrix)
        duration = boundaries[phase_index + 1] - boundaries[phase_index]
        phases.append(DiurnalPhase(f"phase{phase_index}", duration, matrix))
        matrices.append(matrix.tolist())

    # KS diagnostics: fold the empirical interval lengths against the
    # homogeneous (duration-weighted) approximation's geometric law — the
    # per-phase laws have no closed-form marginal sojourn distribution.
    reference = DiurnalAvailabilityModel(phases).markov_approximation()
    intervals = _pooled_intervals(sequences, censor_edges=True)
    ks: Dict[str, float] = {}
    for state in _STATES:
        stay = float(reference[int(state), int(state)])
        ks[state.name] = ks_distance(
            intervals[state], _geometric_cdf(max(1.0 - stay, 1e-12))
        )

    return FittedModel(
        kind="diurnal",
        parameters={
            "day_length": int(day_length),
            "num_phases": int(num_phases),
            "phase_matrices": matrices,
        },
        log_likelihood=log_likelihood,
        num_transitions=total,
        ks=ks,
        _builder=lambda: DiurnalAvailabilityModel(list(phases)),
    )


# ----------------------------------------------------------------------
# Correlated outages (domain events from simultaneous DOWN onsets)
# ----------------------------------------------------------------------
def fit_correlated(
    data: Union[AvailabilityTrace, np.ndarray, Sequence],
    *,
    min_workers: int = 2,
    min_coincidences: int = 2,
    assoc_threshold: float = 0.5,
) -> FittedModel:
    """Fit a :class:`~repro.hazards.DomainOutageProcess` over a Markov base.

    Detection works from *simultaneous DOWN onsets*: slots where at least
    ``min_workers`` workers transition into DOWN together are treated as
    candidate domain events.  Workers are clustered into domains by
    co-onset association — two workers are linked when they co-onset in at
    least ``min_coincidences`` events *and* in at least ``assoc_threshold``
    of the event participations of the rarer of the two (per-worker base
    failures coincide occasionally by chance; domain members co-onset
    almost always, so the normalised association separates them cleanly).

    Per event, the outage duration is the span all onsetting members stay
    simultaneously DOWN, corrected for the expected geometric tail the
    members' base chains add after the overlay ends (estimated from the
    trace's pooled DOWN self-transition probability).  The base chain is
    fitted over the transitions *outside* detected events.
    """
    sequences = _sequences_of(data)
    if len(sequences) < 2:
        raise TraceFitError(
            "fitting correlated outages needs a multi-worker trace "
            f"(got {len(sequences)} row)"
        )
    horizon = sequences[0].size
    if any(sequence.size != horizon for sequence in sequences):
        raise TraceFitError("correlated fit needs equal-length trace rows")
    if horizon < 2:
        raise TraceFitError("trace too short to detect outage events")
    matrix = np.vstack(sequences)
    num_workers = matrix.shape[0]

    down = matrix == int(DOWN)
    onsets = np.zeros_like(down)
    onsets[:, 0] = down[:, 0]
    onsets[:, 1:] = down[:, 1:] & ~down[:, :-1]
    event_slots = np.flatnonzero(onsets.sum(axis=0) >= max(2, int(min_workers)))
    if event_slots.size == 0:
        raise TraceFitError(
            "no simultaneous DOWN onsets found: the trace shows no "
            "correlated-outage structure"
        )

    # Cluster workers by normalised co-onset association (union-find).
    participation = onsets[:, event_slots]
    co_onsets = participation.astype(np.int64) @ participation.astype(np.int64).T
    totals = np.diag(co_onsets)
    parent = list(range(num_workers))

    def find(node: int) -> int:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    for i in range(num_workers):
        for j in range(i + 1, num_workers):
            smaller = min(totals[i], totals[j])
            if smaller == 0:
                continue
            if co_onsets[i, j] >= min_coincidences and (
                co_onsets[i, j] >= assoc_threshold * smaller
            ):
                parent[find(i)] = find(j)
    clusters: Dict[int, List[int]] = {}
    for worker in range(num_workers):
        clusters.setdefault(find(worker), []).append(worker)
    domains = sorted(
        (sorted(members) for members in clusters.values() if len(members) >= 2),
        key=lambda members: members[0],
    )
    if not domains:
        raise TraceFitError(
            "simultaneous DOWN onsets never cluster: no stable outage "
            "domains detected"
        )

    # Pooled DOWN self-transition probability: the base chains extend each
    # member's DOWN run past the overlay's end by a geometric tail.
    counts = np.zeros((3, 3), dtype=np.int64)
    for sequence in sequences:
        counts += transition_counts(sequence)
    down_row = counts[int(DOWN)].sum()
    stay_dd = float(counts[int(DOWN), int(DOWN)] / down_row) if down_row else 0.0
    stay_dd = min(stay_dd, 1.0 - 1e-9)

    overlay_mask = np.zeros_like(down)
    durations: List[float] = []
    gaps: List[int] = []
    num_events = 0
    for members in domains:
        rows = np.array(members)
        member_onsets = onsets[rows][:, :]
        # A domain event: at least half of the members (>= 2) onset together.
        quorum = max(2, (len(members) + 1) // 2)
        domain_events = np.flatnonzero(member_onsets.sum(axis=0) >= quorum)
        previous_start = None
        for slot in domain_events:
            starters = rows[member_onsets[:, slot]]
            # Common-DOWN span: until the first onsetting member recovers.
            span = horizon - slot
            for worker in starters:
                run = slot
                while run < horizon and down[worker, run]:
                    run += 1
                span = min(span, run - slot)
            overlay_mask[np.ix_(rows, np.arange(slot, slot + span))] = True
            # Subtract the expected geometric tail min over k member chains.
            tail = stay_dd ** len(starters)
            correction = tail / (1.0 - tail) if tail < 1.0 else 0.0
            durations.append(max(1.0, span - correction))
            if previous_start is not None:
                gaps.append(int(slot - previous_start))
            previous_start = slot
            num_events += 1
    if num_events == 0:
        raise TraceFitError("no domain reached its event quorum")

    mean_outage = float(max(1.0, np.mean(durations)))
    outage_per_domain = sum(durations) / len(domains)
    rate = float(
        min(1.0, (num_events / len(domains)) / max(1.0, horizon - outage_per_domain))
    )

    # Base chain: pooled transitions outside the detected overlay spans.
    base_counts = np.zeros((3, 3), dtype=np.int64)
    clean = ~overlay_mask
    usable = clean[:, :-1] & clean[:, 1:]
    np.add.at(base_counts, (matrix[:, :-1][usable], matrix[:, 1:][usable]), 1)
    base_matrix = np.eye(3)
    for index in range(3):
        total = base_counts[index].sum()
        if total > 0:
            base_matrix[index] = base_counts[index] / total

    duration_samples = np.asarray(durations)
    gap_cdf = _geometric_cdf(rate)
    duration_cdf = _geometric_cdf(1.0 / mean_outage)
    ks = {
        "duration": ks_distance(duration_samples, duration_cdf),
        "gap": ks_distance(gaps, gap_cdf) if gaps else float("nan"),
        "UP": float("nan"),
        "RECLAIMED": float("nan"),
        "DOWN": ks_distance(duration_samples, duration_cdf),
    }
    log_likelihood = _sojourn_log_likelihood(
        "geometric", GeometricHolding(min(1.0, 1.0 / mean_outage)), duration_samples
    )
    if gaps:
        log_likelihood += _sojourn_log_likelihood(
            "geometric", GeometricHolding(rate), np.asarray(gaps, dtype=float)
        )

    def hazard_builder(workers: int):
        from repro.hazards.process import DomainOutageProcess

        return DomainOutageProcess(
            workers, domains=len(domains), rate=rate, mean_outage=mean_outage
        )

    return FittedModel(
        kind="correlated",
        parameters={
            "domains": len(domains),
            "rate": rate,
            "mean_outage": mean_outage,
            "members": [list(map(int, members)) for members in domains],
            "num_events": num_events,
            "stay_dd": stay_dd,
            "base_matrix": base_matrix.tolist(),
        },
        log_likelihood=log_likelihood,
        num_transitions=num_events,
        ks=ks,
        _builder=lambda: MarkovAvailabilityModel(base_matrix),
        _hazard_builder=hazard_builder,
    )


# ----------------------------------------------------------------------
# Degradation (wear levels from sojourn statistics)
# ----------------------------------------------------------------------
def fit_degradation(
    data: Union[AvailabilityTrace, np.ndarray, Sequence],
    *,
    pm_level: int = 3,
    fail_level: int = 6,
    pm_family: str = "lognormal",
    cm_family: str = "lognormal",
    censor_edges: bool = True,
) -> FittedModel:
    """Fit a :class:`~repro.hazards.DegradationAvailabilityModel`.

    Wear levels are latent, so ``pm_level`` and ``fail_level`` are
    *structural* options (only their gap and the observable sojourn/repair
    statistics are identifiable).  The estimator inverts the model's
    observable laws: the fraction of interruptions that are corrective
    (DOWN) rather than preventive (RECLAIMED) determines ``compliance``
    through :math:`p_{cm} = (1 - c)^{fail - pm}`; the mean UP sojourn then
    determines ``wear_rate`` through the expected number of wear increments
    per service cycle; the repair sojourn families are fitted to the
    RECLAIMED and DOWN interval lengths.
    """
    pm_level = int(pm_level)
    fail_level = int(fail_level)
    if pm_level < 1 or fail_level <= pm_level:
        raise TraceFitError(
            f"need fail_level > pm_level >= 1, got pm_level={pm_level}, "
            f"fail_level={fail_level}"
        )
    for family in (pm_family, cm_family):
        if family not in _SOJOURN_FITTERS:
            raise TraceFitError(
                f"unknown sojourn family {family!r}; expected one of {SOJOURN_FAMILIES}"
            )
    sequences = _sequences_of(data)

    # Interruption split: UP -> RECLAIMED (preventive) vs UP -> DOWN (corrective).
    num_pm = 0
    num_cm = 0
    for sequence in sequences:
        runs = state_runs(sequence)
        for (state, _), (target, _) in zip(runs, runs[1:]):
            if state is UP and target is RECLAIMED:
                num_pm += 1
            elif state is UP and target is DOWN:
                num_cm += 1
    interruptions = num_pm + num_cm
    if interruptions == 0:
        raise TraceFitError(
            "cannot fit a degradation model: the trace has no UP interruptions"
        )
    span = fail_level - pm_level
    p_cm = num_cm / interruptions
    if p_cm >= 1.0:
        compliance = 0.0
    elif p_cm <= 0.0:
        compliance = 1.0
    else:
        compliance = float(1.0 - p_cm ** (1.0 / span))

    # Expected wear increments per service cycle under the fitted compliance.
    if compliance <= 0.0:
        mean_increments = float(fail_level)
    else:
        mean_increments = pm_level + sum(
            (1.0 - compliance) ** j for j in range(1, span + 1)
        )

    intervals = _pooled_intervals(sequences, censor_edges=censor_edges)
    up_lengths = np.asarray(intervals[UP], dtype=float)
    if up_lengths.size == 0:
        raise TraceFitError("no complete UP sojourn observed; trace too short")
    mean_up = float(np.mean(up_lengths))
    wear_rate = float(min(1.0, mean_increments / mean_up))

    sojourns: List[SojournFit] = []
    ks: Dict[str, float] = {}
    # The UP-cycle law has no closed form; diagnose against its geometric
    # approximation (same convention as the diurnal fitter's marginals).
    up_cdf = _geometric_cdf(min(1.0, 1.0 / mean_up))
    ks["UP"] = ks_distance(up_lengths, up_cdf)
    log_likelihood = _sojourn_log_likelihood(
        "geometric", GeometricHolding(min(1.0, 1.0 / mean_up)), up_lengths
    )
    if 0.0 < p_cm < 1.0:
        log_likelihood += num_cm * float(np.log(p_cm)) + num_pm * float(np.log(1.0 - p_cm))

    repair_times: Dict[ProcessorState, HoldingTimeDistribution] = {}
    parameters: Dict[str, object] = {}
    for state, family in ((RECLAIMED, pm_family), (DOWN, cm_family)):
        lengths = np.asarray(intervals[state], dtype=float)
        if lengths.size == 0:
            distribution, params = GeometricHolding(1.0), {"p": 1.0}
            family = "geometric"
            state_ks = float("nan")
            state_ll = 0.0
        else:
            distribution, params = _SOJOURN_FITTERS[family](lengths)
            state_ks = ks_distance(lengths, _sojourn_cdf(family, distribution))
            state_ll = _sojourn_log_likelihood(family, distribution, lengths)
        repair_times[state] = distribution
        ks[state.name] = state_ks
        log_likelihood += state_ll
        sojourns.append(
            SojournFit(
                state=state,
                family=family,
                distribution=distribution,
                num_intervals=int(lengths.size),
                ks=state_ks,
                log_likelihood=state_ll,
            )
        )
        parameters[state.name.lower()] = {"family": family, **params}

    parameters.update(
        wear_rate=wear_rate,
        pm_level=pm_level,
        fail_level=fail_level,
        compliance=compliance,
        num_pm=num_pm,
        num_cm=num_cm,
        mean_up=mean_up,
    )

    def build():
        from repro.hazards.degradation import DegradationAvailabilityModel

        return DegradationAvailabilityModel(
            wear_rate=wear_rate,
            pm_level=pm_level,
            fail_level=fail_level,
            compliance=compliance,
            pm_time=repair_times[RECLAIMED],
            cm_time=repair_times[DOWN],
        )

    return FittedModel(
        kind="degradation",
        parameters=parameters,
        log_likelihood=log_likelihood,
        num_transitions=interruptions,
        ks=ks,
        sojourns=tuple(sojourns),
        _builder=build,
    )


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------
def fit_model(
    kind: str,
    data: Union[AvailabilityTrace, np.ndarray, Sequence],
    **options,
) -> FittedModel:
    """Fit the model family *kind* (one of :data:`FIT_KINDS`) to *data*."""
    if kind == "markov":
        return fit_markov(data, **options)
    if kind == "semi-markov":
        return fit_semi_markov(data, **options)
    if kind == "diurnal":
        return fit_diurnal(data, **options)
    if kind == "correlated":
        return fit_correlated(data, **options)
    if kind == "degradation":
        return fit_degradation(data, **options)
    raise TraceFitError(f"unknown fit kind {kind!r}; expected one of {FIT_KINDS}")


def fit_per_processor(
    trace: AvailabilityTrace, kind: str = "markov", **options
) -> List[FittedModel]:
    """One independent fit per processor row (versus the pooled estimators)."""
    return [
        fit_model(kind, trace.row(index), **options)
        for index in range(trace.num_processors)
    ]
