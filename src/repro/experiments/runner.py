"""Running instances, scenarios and whole campaigns.

The unit of work is the *instance*: one (scenario, trial, heuristic) triple.
Three properties of the runner are important for faithfulness and efficiency:

* **Paired availability realisations** — for a given (scenario, trial), every
  heuristic sees exactly the same availability realisation: the engine
  derives its per-worker availability streams deterministically from the
  trial seed, independently of the scheduler's own stream.  This matches the
  paper's per-trial comparison of heuristics and sharply reduces the variance
  of %diff/%wins at small trial counts.
* **Shared trace banks** — :func:`run_scenario` materialises the per-trial
  availability realisation *once* through the models' vectorised batch
  samplers (:class:`TraceBank`) and replays it for every heuristic, instead
  of re-sampling the identical chains per heuristic.  The bank derives its
  streams through the same :func:`~repro.utils.rng.derive_run_streams`
  recipe as the engine, so replayed runs are bit-identical to directly
  sampled ones.
* **Shared analysis** — all heuristics and trials of a scenario share one
  :class:`AnalysisContext` (the Theorem 5.1 quantities depend only on the
  platform), which is what makes the proactive heuristics affordable.
* **One-pass multi-heuristic cells** — when a trial evaluates two or more
  passive-contract heuristics, they are advanced *simultaneously* by a
  :class:`~repro.simulation.multirun.MultiHeuristicDriver` over one shared
  block prefetch instead of replaying the realisation once per heuristic.
  Results stay bit-identical (the driver's engines take exactly the
  decisions a solo run would); only the heuristic-independent work is paid
  once.  The ``sampler`` runtime option (default ``"kernel"``) selects the
  per-engine availability driver and is never part of a campaign's
  identity — all samplers produce the same results by contract.

Campaigns can fan out over processes (``n_jobs > 1``); each process receives
self-contained scenario descriptions and rebuilds platforms (and their trace
banks) locally, so no large objects cross process boundaries.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.cache import AnalysisContext
from repro.analysis.group import ExpectationMode
from repro.availability.generators import sample_initial_states, sample_state_block
from repro.exceptions import ExperimentError
from repro.experiments.scenarios import CampaignScale, ExperimentScenario, generate_scenarios
from repro.experiments.spec import CampaignCell, CampaignSpec
from repro.platform.platform import Platform
from repro.components import ComponentError
from repro.metrics.collector import DEFAULT_STRIDE, MetricsCollector
from repro.scheduling.registry import ALL_HEURISTICS, canonical_heuristic, create_scheduler
from repro.simulation.engine import SAMPLERS, SimulationEngine
from repro.simulation.multirun import MultiHeuristicDriver
from repro.simulation.results import SimulationResult
from repro.telemetry.tracer import Tracer, active_tracer, shared_tracer
from repro.utils.rng import derive_run_streams

__all__ = [
    "InstanceResult",
    "CampaignResult",
    "CellProgress",
    "TraceBank",
    "run_instance",
    "run_scenario",
    "run_campaign",
    "run_campaign_spec",
]


@dataclass(frozen=True)
class InstanceResult:
    """Outcome of one (scenario, trial, heuristic) problem instance."""

    heuristic: str
    m: int
    ncom: int
    wmin: int
    scenario_index: int
    trial_index: int
    success: bool
    makespan: Optional[int]
    completed_iterations: int
    total_restarts: int
    total_configuration_changes: int
    wall_time_seconds: float = 0.0
    #: Platform size of the scenario (the paper's grid is always 20; spec
    #: campaigns may sweep it).  Not part of the legacy scenario/instance
    #: keys — reports group by it explicitly instead.
    num_processors: int = 20
    #: Sampled per-slot series of the run as a JSON-ready payload
    #: (:meth:`~repro.metrics.collector.RunMetrics.as_dict`), present only
    #: when the campaign ran with a metrics collector attached.  Volatile
    #: like the wall time: stores treat records with and without series as
    #: the same result.
    metrics: Optional[dict] = None

    # ------------------------------------------------------------------
    def scenario_key(self) -> Tuple[int, int, int, int]:
        """Identifies the scenario (platform) this instance ran on."""
        return (self.m, self.ncom, self.wmin, self.scenario_index)

    def instance_key(self) -> Tuple[int, int, int, int, int]:
        """Identifies the (scenario, trial) problem instance."""
        return (self.m, self.ncom, self.wmin, self.scenario_index, self.trial_index)

    def as_dict(self) -> dict:
        payload = {
            "heuristic": self.heuristic,
            "m": self.m,
            "ncom": self.ncom,
            "wmin": self.wmin,
            "scenario_index": self.scenario_index,
            "trial_index": self.trial_index,
            "success": self.success,
            "makespan": self.makespan,
            "completed_iterations": self.completed_iterations,
            "total_restarts": self.total_restarts,
            "total_configuration_changes": self.total_configuration_changes,
            "wall_time_seconds": self.wall_time_seconds,
            "num_processors": self.num_processors,
        }
        # Omitted (not null) when absent, so records written before the
        # metrics layer existed serialise byte-identically.
        if self.metrics is not None:
            payload["metrics"] = self.metrics
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "InstanceResult":
        return cls(**payload)

    @classmethod
    def from_simulation(
        cls,
        scenario: ExperimentScenario,
        trial: int,
        result: SimulationResult,
        wall_time: float,
        metrics: Optional[dict] = None,
    ) -> "InstanceResult":
        return cls(
            metrics=metrics,
            heuristic=result.scheduler,
            m=scenario.params.m,
            ncom=scenario.params.ncom,
            wmin=scenario.params.wmin,
            scenario_index=scenario.scenario_index,
            trial_index=trial,
            success=result.success,
            makespan=result.makespan,
            completed_iterations=result.completed_iterations,
            total_restarts=result.total_restarts,
            total_configuration_changes=result.total_configuration_changes,
            wall_time_seconds=wall_time,
            num_processors=scenario.params.num_processors,
        )


@dataclass
class CampaignResult:
    """All instance results of one campaign plus its metadata."""

    label: str
    m: int
    heuristics: Tuple[str, ...]
    scale: CampaignScale
    results: List[InstanceResult] = field(default_factory=list)

    def by_heuristic(self) -> Dict[str, List[InstanceResult]]:
        grouped: Dict[str, List[InstanceResult]] = {name: [] for name in self.heuristics}
        for result in self.results:
            grouped.setdefault(result.heuristic, []).append(result)
        return grouped

    def num_instances(self) -> int:
        return len({result.instance_key() for result in self.results})

    def extend(self, results: Iterable[InstanceResult]) -> None:
        self.results.extend(results)


@dataclass(frozen=True)
class CellProgress:
    """Per-cell completion report for campaign progress callbacks.

    ``done``/``total`` count cells of the running process's share of the
    campaign (its shard), including cells skipped because the result store
    already held them — so a resumed run reports accurate remaining-work
    totals instead of restarting the count from zero.
    """

    done: int
    total: int
    scenario: str
    trial: int
    heuristic: str
    skipped: bool = False


# ----------------------------------------------------------------------
# Shared availability realisations
# ----------------------------------------------------------------------
class _BankTrace:
    """One lazily grown availability realisation, replayable by the engine.

    Implements the engine's trace protocol (``num_processors``, ``horizon``,
    ``block``).  States are materialised on demand in vectorised chunks from
    the platform's models, using exactly the stream-derivation and sampling
    order of a directly seeded :class:`SimulationEngine` run — so replaying
    this trace is bit-identical to sampling on the fly, while costing the
    sampling only once per (scenario, trial) instead of once per heuristic.

    The trajectory continues from the models' internal memory (semi-Markov
    sojourns, diurnal clocks) as it grows, so a bank trace must be fully
    consumed before the same model objects are used to sample anything else.
    """

    def __init__(self, platform: Platform, seed: int, horizon: int, chunk: int = 4096):
        if horizon < 1:
            raise ExperimentError(f"trace bank horizon must be >= 1, got {horizon}")
        self._models = [processor.availability for processor in platform.processors]
        # A platform-level hazard overlay is baked into the bank's states
        # during materialisation (its master stream is the extra hazard
        # child of the run's streams), so replaying this trace through an
        # engine reproduces a hazard-aware solo run bit-for-bit.
        self._hazard = platform.hazard
        if self._hazard is not None:
            self._rngs, _, self._hazard_rng = derive_run_streams(
                seed, platform.num_processors, hazard=True
            )
        else:
            self._rngs, _ = derive_run_streams(seed, platform.num_processors)
            self._hazard_rng = None
        self._base_last: Optional[np.ndarray] = None
        self._horizon = int(horizon)
        self._chunk = int(chunk)
        self._buffer = np.empty((platform.num_processors, 0), dtype=np.int8)
        self._filled = 0

    @property
    def num_processors(self) -> int:
        return len(self._models)

    @property
    def horizon(self) -> int:
        return self._horizon

    def block(self, start: int, stop: int) -> np.ndarray:
        """States for slots ``[start, stop)`` (sampling more chunks as needed)."""
        if not (0 <= start <= stop <= self._horizon):
            raise ExperimentError(
                f"requested block [{start}, {stop}) outside bank horizon {self._horizon}"
            )
        self._ensure(stop)
        return self._buffer[:, start:stop].copy()

    def _ensure(self, upto: int) -> None:
        if upto <= self._filled:
            return
        if self._buffer.shape[1] < upto:
            capacity = max(self._chunk, self._buffer.shape[1])
            while capacity < upto:
                capacity *= 2
            capacity = min(capacity, self._horizon)
            grown = np.empty((self.num_processors, capacity), dtype=np.int8)
            grown[:, : self._filled] = self._buffer[:, : self._filled]
            self._buffer = grown
        if self._filled == 0:
            self._buffer[:, 0] = sample_initial_states(self._models, self._rngs)
            if self._hazard is not None:
                self._hazard.reset(self._hazard_rng)
                self._base_last = self._buffer[:, 0].copy()
                self._hazard.overlay(0, self._buffer[:, 0:1])
            self._filled = 1
        capacity = self._buffer.shape[1]
        while self._filled < upto:
            length = min(self._chunk, self._horizon - self._filled, capacity - self._filled)
            # Base chains continue from the raw pre-overlay column (the
            # hazard realisation is chunk-boundary independent, so the bank's
            # chunking may differ from the engine's windows).
            current = (
                self._base_last
                if self._hazard is not None
                else self._buffer[:, self._filled - 1]
            )
            chunk = self._buffer[:, self._filled: self._filled + length]
            chunk[:] = sample_state_block(
                self._models,
                self._filled,
                length,
                self._rngs,
                current,
            )
            if self._hazard is not None:
                self._base_last = chunk[:, -1].copy()
                self._hazard.overlay(self._filled, chunk)
            self._filled += length


class TraceBank:
    """Factory for the shared per-(scenario, trial) availability realisations.

    One bank serves one platform; :meth:`trace_for` hands out the lazily
    materialised realisation of a trial seed.  Traces are not cached here —
    the scenario runner keeps each trial's trace alive exactly as long as
    its heuristics are being replayed, bounding memory at one realisation.
    """

    def __init__(self, platform: Platform, horizon: int, chunk: int = 4096):
        self.platform = platform
        self.horizon = int(horizon)
        self.chunk = int(chunk)

    def trace_for(self, seed: int) -> _BankTrace:
        return _BankTrace(self.platform, seed, self.horizon, self.chunk)


# ----------------------------------------------------------------------
# Single instance / scenario execution
# ----------------------------------------------------------------------
def _require_sampler(sampler: str) -> None:
    """Reject unknown sampler names with the registry-style message."""
    if sampler not in SAMPLERS:
        raise ExperimentError(
            f"unknown sampler {sampler!r}; available samplers: " + ", ".join(SAMPLERS)
        )


def _tracer_for(trace_dir: Optional[str]) -> Optional[Tracer]:
    """The process-wide :class:`Tracer` for *trace_dir* (``None`` -> ``None``).

    Delegates to :func:`repro.telemetry.shared_tracer` so the runner, the
    engines it drives and any enclosing service worker all append through
    one buffered handle per process.
    """
    if trace_dir is None:
        return None
    return shared_tracer(trace_dir)


def run_instance(
    scenario: ExperimentScenario,
    heuristic: str,
    trial: int,
    *,
    scale: Optional[CampaignScale] = None,
    analysis: Optional[AnalysisContext] = None,
    platform=None,
    trace=None,
    mode: ExpectationMode = ExpectationMode.PAPER,
    sampler: str = "kernel",
    collect_metrics: bool = False,
    metrics_stride: int = DEFAULT_STRIDE,
    tracer=None,
) -> InstanceResult:
    """Run one (scenario, trial, heuristic) instance.

    *platform*, *analysis* and *trace* may be supplied to share work across
    calls; when omitted they are rebuilt from the scenario
    (deterministically).  *trace* is the trial's shared availability
    realisation (see :class:`TraceBank`); passing it skips re-sampling the
    availability chains without changing the result.  *sampler* selects the
    engine's availability driver (results are sampler-independent by
    contract; see :data:`~repro.simulation.engine.SAMPLERS`).  With
    *collect_metrics* the run carries a
    :class:`~repro.metrics.collector.MetricsCollector` sampling per-slot
    series every *metrics_stride* slots into ``InstanceResult.metrics``;
    all scalar fields stay bit-identical either way.  *tracer* attaches a
    :class:`~repro.telemetry.tracer.Tracer` to the engine and the shared
    analysis context (spans carry the cell/trial correlation attributes);
    ``None`` is the exact untraced path.
    """
    scale = scale or CampaignScale.reduced()
    _require_sampler(sampler)
    if platform is None:
        platform = scenario.build_platform()
    if analysis is None:
        analysis = AnalysisContext(platform, mode=mode)
    tracer = active_tracer(tracer)
    if tracer is not None:
        analysis.tracer = tracer
    application = scenario.build_application(iterations=scale.iterations)
    scheduler = create_scheduler(heuristic)
    collector = MetricsCollector(metrics_stride) if collect_metrics else None
    engine = SimulationEngine(
        platform,
        application,
        scheduler,
        seed=scenario.trial_seed(trial),
        max_slots=scale.makespan_cap,
        trace=trace,
        analysis=analysis,
        sampler=sampler,
        metrics=collector,
        tracer=tracer,
    )
    start = time.perf_counter()
    if tracer is not None:
        with tracer.context(cell=scenario.label(), trial=trial, heuristic=heuristic):
            result = engine.run()
    else:
        result = engine.run()
    elapsed = time.perf_counter() - start
    metrics = collector.result().as_dict() if collector is not None else None
    return InstanceResult.from_simulation(scenario, trial, result, elapsed, metrics=metrics)


def run_scenario(
    scenario: ExperimentScenario,
    heuristics: Sequence[str],
    *,
    scale: Optional[CampaignScale] = None,
    mode: ExpectationMode = ExpectationMode.PAPER,
    share_availability: bool = True,
    sampler: str = "kernel",
    collect_metrics: bool = False,
    metrics_stride: int = DEFAULT_STRIDE,
    on_result: Optional[Callable[[InstanceResult], None]] = None,
) -> List[InstanceResult]:
    """Run all trials of all *heuristics* on one scenario.

    Platform and analysis context are built once and shared.  With
    *share_availability* (the default) each trial's availability realisation
    is materialised once through the :class:`TraceBank` batch sampler and
    replayed for every heuristic — the paired comparison the paper relies
    on, without re-sampling identical chains per heuristic.  Trials with two
    or more passive-contract heuristics additionally go through the one-pass
    :class:`~repro.simulation.multirun.MultiHeuristicDriver`.  Results are
    bit-identical either way.  *on_result* is invoked after every finished
    instance (per-cell progress reporting).
    """
    scale = scale or CampaignScale.reduced()
    work = [
        (trial, heuristic)
        for trial in range(scale.trials_per_scenario)
        for heuristic in heuristics
    ]
    return _run_scenario_work(
        scenario,
        work,
        scale=scale,
        mode=mode,
        share_availability=share_availability,
        sampler=sampler,
        collect_metrics=collect_metrics,
        metrics_stride=metrics_stride,
        on_result=on_result,
    )


def _run_scenario_work(
    scenario: ExperimentScenario,
    work: Sequence[Tuple[int, str]],
    *,
    scale: CampaignScale,
    mode: ExpectationMode = ExpectationMode.PAPER,
    share_availability: bool = True,
    sampler: str = "kernel",
    collect_metrics: bool = False,
    metrics_stride: int = DEFAULT_STRIDE,
    trace_dir: Optional[str] = None,
    on_result: Optional[Callable[[InstanceResult], None]] = None,
) -> List[InstanceResult]:
    """Run an ordered subset of one scenario's (trial, heuristic) pairs.

    The subset runner is what makes resume cheap: a partially-complete
    scenario re-runs only its missing cells, while the per-trial trace-bank
    replay keeps every result bit-identical to a full run (the realisation
    depends only on the trial seed, never on which heuristics consume it).

    When a trial's subset contains two or more passive-contract heuristics
    (and *sampler* is a block driver), those are advanced in one pass by a
    :class:`~repro.simulation.multirun.MultiHeuristicDriver` sharing the
    trial's availability blocks; the remaining heuristics run solo against
    the same realisation.  Either path yields bit-identical results — the
    split is purely a cost optimisation.

    *trace_dir*, when set, attaches a per-process
    :class:`~repro.telemetry.tracer.Tracer` writing span files into that
    directory (engine, allocator and analysis spans with cell/trial
    correlation attributes); ``None`` is the exact untraced path.
    """
    _require_sampler(sampler)
    platform = scenario.build_platform()
    analysis = AnalysisContext(platform, mode=mode)
    tracer = _tracer_for(trace_dir)
    if tracer is not None:
        analysis.tracer = tracer
    application = scenario.build_application(iterations=scale.iterations)
    bank = TraceBank(platform, horizon=scale.makespan_cap) if share_availability else None
    results: List[InstanceResult] = []
    trial_order: List[int] = []
    by_trial: Dict[int, List[str]] = {}
    for trial, heuristic in work:
        if trial not in by_trial:
            trial_order.append(trial)
            by_trial[trial] = []
        by_trial[trial].append(heuristic)
    for trial in trial_order:
        trace = bank.trace_for(scenario.trial_seed(trial)) if bank is not None else None
        names = by_trial[trial]
        one_pass: Dict[str, InstanceResult] = {}
        if sampler != "perslot" and len(names) >= 2:
            contract = [
                (name, scheduler)
                for name, scheduler in ((n, create_scheduler(n)) for n in names)
                if getattr(scheduler, "passive_between_rebuilds", False)
            ]
            if len(contract) >= 2:
                collectors = (
                    [MetricsCollector(metrics_stride) for _ in contract]
                    if collect_metrics
                    else None
                )
                driver = MultiHeuristicDriver(
                    platform,
                    application,
                    [scheduler for _, scheduler in contract],
                    seed=scenario.trial_seed(trial),
                    max_slots=scale.makespan_cap,
                    trace=trace,
                    analysis=analysis,
                    sampler=sampler,
                    metrics=collectors,
                    tracer=tracer,
                )
                if tracer is not None:
                    with tracer.context(cell=scenario.label(), trial=trial):
                        driver_results = driver.run()
                else:
                    driver_results = driver.run()
                for index, ((name, _), sim, wall) in enumerate(
                    zip(contract, driver_results, driver.wall_seconds)
                ):
                    metrics = (
                        collectors[index].result().as_dict()
                        if collectors is not None
                        else None
                    )
                    one_pass[name] = InstanceResult.from_simulation(
                        scenario, trial, sim, wall, metrics=metrics
                    )
        for heuristic in names:
            result = one_pass.get(heuristic)
            if result is None:
                result = run_instance(
                    scenario,
                    heuristic,
                    trial,
                    scale=scale,
                    analysis=analysis,
                    platform=platform,
                    trace=trace,
                    mode=mode,
                    sampler=sampler,
                    collect_metrics=collect_metrics,
                    metrics_stride=metrics_stride,
                    tracer=tracer,
                )
            results.append(result)
            if on_result is not None:
                on_result(result)
    if tracer is not None:
        # Make child-process span files durable before the pool hands the
        # results back to the parent.
        tracer.flush()
    return results


# ----------------------------------------------------------------------
# Campaign execution (optionally multi-process)
# ----------------------------------------------------------------------
def _run_scenario_payload(payload: dict) -> List[dict]:
    """Process-pool entry point: rebuild the scenario locally and run it."""
    scenario = ExperimentScenario(
        params=payload["params"],
        scenario_index=payload["scenario_index"],
        campaign=payload["campaign"],
        availability=payload.get("availability"),
    )
    results = _run_scenario_work(
        scenario,
        payload["work"],
        scale=payload["scale"],
        mode=ExpectationMode(payload["mode"]),
        sampler=payload.get("sampler", "kernel"),
        collect_metrics=payload.get("collect_metrics", False),
        metrics_stride=payload.get("metrics_stride", DEFAULT_STRIDE),
        trace_dir=payload.get("trace_dir"),
    )
    return [result.as_dict() for result in results]


def _scenario_payload(
    scenario: ExperimentScenario,
    work: Sequence[Tuple[int, str]],
    scale: CampaignScale,
    mode: ExpectationMode,
    sampler: str = "kernel",
    collect_metrics: bool = False,
    metrics_stride: int = DEFAULT_STRIDE,
    trace_dir: Optional[str] = None,
) -> dict:
    return {
        "params": scenario.params,
        "scenario_index": scenario.scenario_index,
        "campaign": scenario.campaign,
        "availability": scenario.availability,
        "work": list(work),
        "scale": scale,
        "mode": mode.value,
        "sampler": sampler,
        "collect_metrics": collect_metrics,
        "metrics_stride": metrics_stride,
        "trace_dir": trace_dir,
    }


def run_campaign(
    m: int,
    *,
    heuristics: Sequence[str] = ALL_HEURISTICS,
    scale: Optional[CampaignScale] = None,
    label: str = "campaign",
    n_jobs: int = 1,
    mode: ExpectationMode = ExpectationMode.PAPER,
    sampler: str = "kernel",
    progress: Optional[Callable[[int, int], None]] = None,
    cell_progress: Optional[Callable[[CellProgress], None]] = None,
) -> CampaignResult:
    """Run a full campaign for one value of ``m`` (Table I: m=5, Table II: m=10).

    Parameters
    ----------
    m:
        Tasks per iteration.
    heuristics:
        Heuristic names to evaluate (default: all seventeen).
    scale:
        Grid dimensions and caps; defaults to :meth:`CampaignScale.reduced`.
    label:
        Campaign label, folded into every derived seed.
    n_jobs:
        Number of worker processes (1 = run in-process).
    mode:
        Estimator variant used by the heuristics (paper formula vs renewal).
    sampler:
        Engine availability driver (``block``/``kernel``/``perslot``); a
        runtime option only — results are sampler-independent by contract.
    progress:
        Optional coarse callback ``(done_scenarios, total_scenarios)``.
    cell_progress:
        Optional fine-grained callback receiving one :class:`CellProgress`
        per finished (scenario, trial, heuristic) cell.
    """
    scale = scale or CampaignScale.reduced()
    _require_sampler(sampler)
    # Validate and canonicalize through the component registry — the single
    # source of truth shared with create_scheduler and CampaignSpec.
    resolved: List[str] = []
    unknown: List[str] = []
    for name in heuristics:
        try:
            resolved.append(canonical_heuristic(name))
        except ComponentError:
            unknown.append(name)
    if unknown:
        raise ExperimentError(f"unknown heuristics requested: {unknown}")
    heuristics = tuple(resolved)
    scenarios = generate_scenarios(scale, m, campaign=label)
    campaign = CampaignResult(label=label, m=m, heuristics=heuristics, scale=scale)

    total = len(scenarios)
    cells_per_scenario = scale.trials_per_scenario * len(heuristics)
    total_cells = total * cells_per_scenario
    done_cells = 0

    def emit_cell(scenario: ExperimentScenario, result: InstanceResult) -> None:
        nonlocal done_cells
        done_cells += 1
        if cell_progress is not None:
            cell_progress(
                CellProgress(
                    done=done_cells,
                    total=total_cells,
                    scenario=scenario.label(),
                    trial=result.trial_index,
                    heuristic=result.heuristic,
                )
            )

    if n_jobs <= 1:
        for index, scenario in enumerate(scenarios):
            campaign.extend(
                run_scenario(
                    scenario,
                    heuristics,
                    scale=scale,
                    mode=mode,
                    sampler=sampler,
                    on_result=lambda result, scenario=scenario: emit_cell(scenario, result),
                )
            )
            if progress is not None:
                progress(index + 1, total)
        return campaign

    work = [
        (trial, heuristic)
        for trial in range(scale.trials_per_scenario)
        for heuristic in heuristics
    ]
    payloads = [
        _scenario_payload(scenario, work, scale, mode, sampler) for scenario in scenarios
    ]
    done = 0
    with ProcessPoolExecutor(max_workers=n_jobs) as executor:
        for scenario, chunk in zip(scenarios, executor.map(_run_scenario_payload, payloads)):
            for entry in chunk:
                result = InstanceResult.from_dict(entry)
                campaign.results.append(result)
                emit_cell(scenario, result)
            done += 1
            if progress is not None:
                progress(done, total)
    return campaign


# ----------------------------------------------------------------------
# Spec-driven campaigns: resumable, shardable, store-backed
# ----------------------------------------------------------------------
def run_campaign_spec(
    spec: CampaignSpec,
    *,
    store=None,
    shard: Tuple[int, int] = (1, 1),
    n_jobs: int = 1,
    max_cells: Optional[int] = None,
    sampler: str = "kernel",
    collect_metrics: Optional[bool] = None,
    metrics_stride: Optional[int] = None,
    trace_dir: Optional[str] = None,
    cell_progress: Optional[Callable[[CellProgress], None]] = None,
) -> List[InstanceResult]:
    """Run (or resume) the campaign described by a :class:`CampaignSpec`.

    Parameters
    ----------
    spec:
        The declarative campaign description (grid, availability substrate,
        heuristics, repetitions).
    store:
        Optional :class:`~repro.experiments.store.ResultStore`.  Cells whose
        index is already recorded are skipped (resume); every newly finished
        cell is appended durably.  With ``n_jobs <= 1`` a kill loses at most
        the cell in flight; with ``n_jobs > 1`` results reach the store as
        whole scenario chunks return (in submission order), so a kill can
        lose the chunks still in flight — resume re-runs exactly those.
    shard:
        ``(i, N)`` — run only the i-th of N deterministic, disjoint,
        jointly-complete cell partitions (1-based).  Shards of the same spec
        may run on independent machines and be recombined with
        :func:`~repro.experiments.store.merge_stores`.
    n_jobs:
        Worker processes (1 = in-process).  Parallelism fans out whole
        scenarios; the store is only ever written by the parent process.
    max_cells:
        Stop after this many newly-run cells (used by smoke tests to
        simulate an interrupted campaign deterministically).
    sampler:
        Engine availability driver; a runtime option that never enters the
        spec identity (all samplers produce identical results by contract,
        so stored and freshly-run cells mix freely).
    collect_metrics, metrics_stride:
        Attach a per-run metrics collector sampling per-slot series into
        ``InstanceResult.metrics``.  ``None`` (the default) defers to the
        spec's own ``collect_metrics`` / ``metrics_stride`` settings.  Like
        the sampler, this is a runtime option outside the spec identity:
        the series are volatile store fields, so runs with and without them
        resume and merge interchangeably.
    trace_dir:
        Directory for :class:`~repro.telemetry.tracer.Tracer` span files
        (one ``spans-<pid>.jsonl`` per process; ``repro campaign --trace``
        points this at ``<store>/telemetry``).  Another runtime option
        outside the spec identity: tracing never changes any result.
    cell_progress:
        Per-cell callback; ``done``/``total`` cover this shard including
        store-skipped cells, so resumed runs report true remaining work.

    Returns the shard's results in canonical cell order — previously stored
    cells included, so a resumed single-shard campaign returns the complete
    result set.
    """
    mode = ExpectationMode(spec.estimator)
    _require_sampler(sampler)
    if collect_metrics is None:
        collect_metrics = spec.collect_metrics
    if metrics_stride is None:
        metrics_stride = spec.metrics_stride
    mine = spec.shard_cells(*shard)
    completed = store.completed_cells() if store is not None else set()
    skipped = [cell for cell in mine if cell.index in completed]
    todo = [cell for cell in mine if cell.index not in completed]
    if max_cells is not None:
        if max_cells < 0:
            raise ExperimentError(f"max_cells must be >= 0, got {max_cells}")
        todo = todo[:max_cells]
    total = len(mine)
    done = len(skipped)

    if skipped and cell_progress is not None:
        # One summary event for the resumed prefix; replaying every stored
        # cell through the callback would be noise.
        last = skipped[-1]
        cell_progress(
            CellProgress(
                done=done,
                total=total,
                scenario=last.scenario.label(),
                trial=last.trial,
                heuristic=last.heuristic,
                skipped=True,
            )
        )

    def emit(cell: CampaignCell, result: InstanceResult) -> None:
        nonlocal done
        done += 1
        if store is not None:
            store.append(cell, result)
        if cell_progress is not None:
            cell_progress(
                CellProgress(
                    done=done,
                    total=total,
                    scenario=cell.scenario.label(),
                    trial=cell.trial,
                    heuristic=cell.heuristic,
                )
            )

    # Group contiguous cells by scenario so platform/analysis/trace-bank
    # construction is shared exactly as in run_scenario.
    groups: List[Tuple[ExperimentScenario, List[CampaignCell]]] = []
    for cell in todo:
        if groups and groups[-1][0] == cell.scenario:
            groups[-1][1].append(cell)
        else:
            groups.append((cell.scenario, [cell]))

    fresh: Dict[int, InstanceResult] = {}
    if n_jobs <= 1:
        for scenario, cells in groups:
            scale = spec.scale_for(scenario.params.num_processors)
            work = [(cell.trial, cell.heuristic) for cell in cells]
            results = _run_scenario_work(
                scenario,
                work,
                scale=scale,
                mode=mode,
                sampler=sampler,
                collect_metrics=collect_metrics,
                metrics_stride=metrics_stride,
                trace_dir=trace_dir,
                on_result=None,
            )
            for cell, result in zip(cells, results):
                fresh[cell.index] = result
                emit(cell, result)
    else:
        payloads = [
            _scenario_payload(
                scenario,
                [(cell.trial, cell.heuristic) for cell in cells],
                spec.scale_for(scenario.params.num_processors),
                mode,
                sampler,
                collect_metrics,
                metrics_stride,
                trace_dir,
            )
            for scenario, cells in groups
        ]
        with ProcessPoolExecutor(max_workers=n_jobs) as executor:
            for (scenario, cells), chunk in zip(
                groups, executor.map(_run_scenario_payload, payloads)
            ):
                for cell, entry in zip(cells, chunk):
                    result = InstanceResult.from_dict(entry)
                    fresh[cell.index] = result
                    emit(cell, result)

    ordered: List[InstanceResult] = []
    if store is not None:
        stored = store.results_by_cell()
        for cell in mine:
            if cell.index in fresh:
                ordered.append(fresh[cell.index])
            elif cell.index in stored:
                ordered.append(stored[cell.index])
    else:
        ordered = [fresh[cell.index] for cell in mine if cell.index in fresh]
    return ordered
