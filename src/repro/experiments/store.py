"""Persistent campaign result stores.

A store is a directory holding one record per completed campaign *cell*
(``(scenario, trial, heuristic)`` triple, identified by its index in the
spec's canonical enumeration plus the deterministic instance key).  Records
are appended durably as cells finish, so

* a killed campaign resumes exactly where it stopped (``run_campaign_spec``
  skips cells already present), and
* independent shards can be merged (:func:`merge_stores`) into one store
  that feeds the existing metrics/tables/figures pipeline.

Two backends share the same record format:

* ``jsonl`` (default) — ``results.jsonl``, one canonical JSON object per
  line.  Appends are flushed per cell; a trailing half-written line (the
  signature of a kill mid-write) is ignored on open.
* ``sqlite`` — ``results.sqlite`` with one row per cell, committed per
  append.

Every store carries a ``manifest.json`` with the full spec snapshot and its
content hash; resuming or merging with a different spec is refused, which is
what makes "same campaign" checkable across machines.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.exceptions import ExperimentError
from repro.experiments.runner import InstanceResult
from repro.experiments.spec import CampaignCell, CampaignSpec
from repro.utils.serialization import canonical_json, jsonl_line

__all__ = ["ResultStore", "StoreStatus", "merge_stores", "store_status"]

STORE_FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"
BACKENDS = ("jsonl", "sqlite")

#: Record fields that are measurements of the run, not of the result; they
#: are ignored when checking records for equivalence (resume / merge).
VOLATILE_FIELDS = ("wall_time_seconds", "metrics")


def _record_payload(cell: CampaignCell, result: InstanceResult) -> dict:
    payload = result.as_dict()
    payload["cell"] = cell.index
    return payload


def _result_from_record(record: dict) -> InstanceResult:
    payload = {key: value for key, value in record.items() if key != "cell"}
    return InstanceResult.from_dict(payload)


def _stable_part(record: dict) -> dict:
    return {key: value for key, value in record.items() if key not in VOLATILE_FIELDS}


class ResultStore:
    """One campaign's persistent cell records (see module docstring)."""

    def __init__(self, directory: Union[str, Path], spec: CampaignSpec, backend: str):
        if backend not in BACKENDS:
            raise ExperimentError(f"unknown store backend {backend!r}; expected {BACKENDS}")
        self.directory = Path(directory)
        self.spec = spec
        self.backend = backend
        self._records: Dict[int, dict] = {}
        self._jsonl_handle = None
        self._sqlite_conn: Optional[sqlite3.Connection] = None

    # ------------------------------------------------------------------
    # Creation / opening
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: Union[str, Path],
        spec: CampaignSpec,
        *,
        backend: Optional[str] = None,
    ) -> "ResultStore":
        """Create a store for *spec* (or re-open a matching existing one).

        ``backend`` of ``None`` means "jsonl for a new store, whatever the
        existing store uses on re-open"; naming a backend that conflicts
        with an existing store is an error rather than a silent re-open.
        """
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if manifest_path.exists():
            store = cls.open(directory)
            if store.spec.spec_hash() != spec.spec_hash():
                raise ExperimentError(
                    f"store {directory} belongs to a different campaign "
                    f"(spec hash {store.spec.spec_hash()[:12]} != {spec.spec_hash()[:12]})"
                )
            if backend is not None and backend != store.backend:
                raise ExperimentError(
                    f"store {directory} uses backend {store.backend!r}; "
                    f"cannot re-open it as {backend!r}"
                )
            # Prefer the caller's spec object: it may carry runtime-only
            # context (e.g. the spec file's base_dir for trace resolution)
            # that the manifest snapshot cannot.
            store.spec = spec
            return store
        backend = backend or "jsonl"
        directory.mkdir(parents=True, exist_ok=True)
        manifest = {
            "format_version": STORE_FORMAT_VERSION,
            "backend": backend,
            "spec": spec.as_dict(),
            "spec_hash": spec.spec_hash(),
        }
        manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        store = cls(directory, spec, backend)
        store._load()
        return store

    @classmethod
    def open(cls, directory: Union[str, Path]) -> "ResultStore":
        """Open an existing store, recovering its spec from the manifest."""
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise ExperimentError(f"cannot open result store {directory}: {error}") from error
        version = manifest.get("format_version")
        if version != STORE_FORMAT_VERSION:
            raise ExperimentError(
                f"unsupported store format version {version!r} (expected {STORE_FORMAT_VERSION})"
            )
        spec = CampaignSpec.from_dict(manifest["spec"])
        if spec.spec_hash() != manifest.get("spec_hash"):
            raise ExperimentError(f"store {directory}: manifest spec hash mismatch (corrupt?)")
        store = cls(directory, spec, manifest.get("backend", "jsonl"))
        store._load()
        return store

    # ------------------------------------------------------------------
    # Backend plumbing
    # ------------------------------------------------------------------
    @property
    def _jsonl_path(self) -> Path:
        return self.directory / "results.jsonl"

    @property
    def _sqlite_path(self) -> Path:
        return self.directory / "results.sqlite"

    def _connection(self) -> sqlite3.Connection:
        if self._sqlite_conn is None:
            self._sqlite_conn = sqlite3.connect(self._sqlite_path)
            self._sqlite_conn.execute(
                "CREATE TABLE IF NOT EXISTS results"
                " (cell INTEGER PRIMARY KEY, payload TEXT NOT NULL)"
            )
            self._sqlite_conn.commit()
        return self._sqlite_conn

    def _load(self) -> None:
        self._records = {}
        if self.backend == "jsonl":
            if not self._jsonl_path.exists():
                return
            text = self._jsonl_path.read_text()
            lines = text.splitlines(keepends=True)
            for line_number, line in enumerate(lines, start=1):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    if line_number == len(lines) and not line.endswith("\n"):
                        # Half-written trailing record from a killed run: the
                        # cell never completed, so dropping it is the correct
                        # resume semantics.  Truncate the fragment away so a
                        # subsequent append starts on a fresh line instead of
                        # gluing onto it (which would corrupt the store).
                        self._jsonl_path.write_text(text[: len(text) - len(line)])
                        continue
                    raise ExperimentError(
                        f"corrupt record at {self._jsonl_path}:{line_number}"
                    )
                self._records[int(record["cell"])] = record
        else:
            for cell, payload in self._connection().execute(
                "SELECT cell, payload FROM results"
            ):
                self._records[int(cell)] = json.loads(payload)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def completed_cells(self) -> Set[int]:
        """Indices of cells already recorded."""
        return set(self._records)

    def records(self) -> List[dict]:
        """All records, in canonical cell order."""
        return [self._records[index] for index in sorted(self._records)]

    def results(self) -> List[InstanceResult]:
        """All records as :class:`InstanceResult`, in canonical cell order."""
        return [_result_from_record(record) for record in self.records()]

    def results_by_cell(self) -> Dict[int, InstanceResult]:
        """All records as cell-index -> :class:`InstanceResult`."""
        return {index: _result_from_record(record) for index, record in self._records.items()}

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, cell_index: int) -> bool:
        return cell_index in self._records

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def append(self, cell: CampaignCell, result: InstanceResult) -> None:
        """Durably record one completed cell (idempotent for identical results)."""
        record = _record_payload(cell, result)
        existing = self._records.get(cell.index)
        if existing is not None:
            if _stable_part(existing) != _stable_part(record):
                raise ExperimentError(
                    f"cell {cell.index} already recorded with a different result "
                    f"({cell.label()}); refusing to overwrite"
                )
            return
        if self.backend == "jsonl":
            if self._jsonl_handle is None:
                self._jsonl_handle = self._jsonl_path.open("a")
            self._jsonl_handle.write(jsonl_line(record))
            self._jsonl_handle.flush()
        else:
            connection = self._connection()
            connection.execute(
                "INSERT INTO results (cell, payload) VALUES (?, ?)",
                (cell.index, canonical_json(record)),
            )
            connection.commit()
        self._records[cell.index] = record

    def _rewrite(self, records: Sequence[dict]) -> None:
        """Replace the store contents with *records* (canonical order enforced)."""
        ordered = sorted(records, key=lambda record: int(record["cell"]))
        if self.backend == "jsonl":
            if self._jsonl_handle is not None:
                self._jsonl_handle.close()
                self._jsonl_handle = None
            self._jsonl_path.write_text("".join(jsonl_line(record) for record in ordered))
        else:
            connection = self._connection()
            connection.execute("DELETE FROM results")
            connection.executemany(
                "INSERT INTO results (cell, payload) VALUES (?, ?)",
                [(int(record["cell"]), canonical_json(record)) for record in ordered],
            )
            connection.commit()
        self._records = {int(record["cell"]): record for record in ordered}

    def close(self) -> None:
        if self._jsonl_handle is not None:
            self._jsonl_handle.close()
            self._jsonl_handle = None
        if self._sqlite_conn is not None:
            self._sqlite_conn.close()
            self._sqlite_conn = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Merging shard stores
# ----------------------------------------------------------------------
def merge_stores(
    sources: Sequence[Union[str, Path]],
    destination: Union[str, Path],
    *,
    backend: Optional[str] = None,
) -> ResultStore:
    """Merge shard stores into *destination* (``repro merge``).

    All sources (and the destination, if it already exists) must carry the
    same spec hash.  Overlapping cells are allowed only when their records
    agree (ignoring wall-time); the merged store is written in canonical
    cell order, so merging a complete shard set reproduces the unsharded
    store record-for-record.
    """
    if not sources:
        raise ExperimentError("merge needs at least one source store")
    opened = [ResultStore.open(source) for source in sources]
    spec = opened[0].spec
    reference_hash = spec.spec_hash()
    for store in opened[1:]:
        if store.spec.spec_hash() != reference_hash:
            raise ExperimentError(
                f"cannot merge {store.directory}: spec hash differs from {opened[0].directory}"
            )
    merged: Dict[int, dict] = {}
    for store in opened:
        for record in store.records():
            index = int(record["cell"])
            existing = merged.get(index)
            if existing is not None and _stable_part(existing) != _stable_part(record):
                raise ExperimentError(
                    f"conflicting records for cell {index} while merging {store.directory}"
                )
            merged.setdefault(index, record)
        store.close()
    if (Path(destination) / MANIFEST_NAME).exists():
        # Merging into an existing store: its backend governs unless the
        # caller explicitly named a conflicting one (create() errors then).
        destination_store = ResultStore.create(destination, spec, backend=backend)
    else:
        destination_store = ResultStore.create(
            destination, spec, backend=backend or opened[0].backend
        )
    for record in destination_store.records():
        index = int(record["cell"])
        existing = merged.get(index)
        if existing is not None and _stable_part(existing) != _stable_part(record):
            raise ExperimentError(f"conflicting records for cell {index} in {destination}")
        merged.setdefault(index, record)
    destination_store._rewrite(list(merged.values()))
    return destination_store


# ----------------------------------------------------------------------
# Completion status
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StoreStatus:
    """Completion summary of a store against its spec."""

    directory: str
    backend: str
    spec_name: str
    spec_hash: str
    total_cells: int
    completed: int
    by_heuristic: Tuple[Tuple[str, int, int], ...]  # (heuristic, done, total)

    @property
    def remaining(self) -> int:
        return self.total_cells - self.completed


def store_status(store: ResultStore) -> StoreStatus:
    """Compute how much of the spec's cell enumeration the store covers."""
    spec = store.spec
    completed = store.completed_cells()
    per_heuristic_total = spec.num_cells() // len(spec.heuristics)
    done_by_heuristic = {heuristic: 0 for heuristic in spec.heuristics}
    # Heuristics are the innermost loop of the cell enumeration, so a cell's
    # heuristic is its index modulo the heuristic count — no need to
    # materialise the (possibly 100k-cell) enumeration for a status query.
    for index in completed:
        done_by_heuristic[spec.heuristics[index % len(spec.heuristics)]] += 1
    return StoreStatus(
        directory=str(store.directory),
        backend=store.backend,
        spec_name=spec.name,
        spec_hash=spec.spec_hash(),
        total_cells=spec.num_cells(),
        completed=len(completed),
        by_heuristic=tuple(
            (heuristic, done_by_heuristic[heuristic], per_heuristic_total)
            for heuristic in spec.heuristics
        ),
    )
