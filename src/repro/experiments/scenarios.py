"""Scenario grid generation following Section VII-A.

An *experimental scenario* is one random instantiation of a platform for a
given cell ``(m, ncom, wmin)`` of the campaign grid:

* 20 processors, Markov availability with stay-probabilities uniform in
  [0.90, 0.99] and the remaining mass split evenly;
* speeds ``w_q`` uniform integers in ``[wmin, 10 · wmin]``;
* ``Tdata = wmin``, ``Tprog = 5 · wmin``.

Each scenario is then simulated for several *trials*, each trial being a
different realisation of the Markov chains (different seed) but the same
platform.  Every seed is derived deterministically from the campaign label
and the scenario coordinates, so any individual instance can be re-run in
isolation and reproduce the in-campaign realisation exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Optional, List, Tuple, Union

from repro.application.application import Application
from repro.availability.registry import AVAILABILITY_MODELS, model_factory_for
from repro.exceptions import ExperimentError
from repro.platform.builders import PlatformSpec, availability_platform, paper_platform
from repro.platform.platform import Platform
from repro.utils.rng import stable_hash_seed

__all__ = [
    "AvailabilitySpec",
    "ScenarioParameters",
    "ExperimentScenario",
    "CampaignScale",
    "generate_scenarios",
]

#: Availability substrates a scenario can request (snapshot of the registry
#: at import time; the registry itself is the live source of truth).
AVAILABILITY_KINDS = tuple(AVAILABILITY_MODELS.names())

#: Parameter values: a scalar (used as-is), a two-element range (drawn
#: uniformly per processor), or a string (paths, labels).
ParamValue = Union[int, float, str, bool, Tuple[float, ...]]


@dataclass(frozen=True)
class AvailabilitySpec:
    """Declarative choice of availability substrate for a scenario.

    ``kind`` selects the model family — any name registered in
    :data:`repro.availability.registry.AVAILABILITY_MODELS`; ``parameters``
    holds the family's knobs as a sorted tuple of ``(name, value)`` pairs so
    the spec is hashable and canonically serialisable.  Parameter names are
    validated against the registered model's catalogue.  Numeric two-element
    ranges are drawn uniformly *per processor* from the scenario's platform
    seed, which keeps every platform deterministic in ``(campaign,
    scenario)`` exactly like the paper's Markov grid.

    The default (Markov, paper parameters) reproduces Section VII-A
    bit-for-bit: :meth:`ExperimentScenario.build_platform` routes it through
    the unchanged :func:`~repro.platform.builders.paper_platform` path.
    """

    kind: str = "markov"
    parameters: Tuple[Tuple[str, ParamValue], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in AVAILABILITY_MODELS:
            raise ExperimentError(
                f"unknown availability kind {self.kind!r}; expected one of "
                f"{tuple(AVAILABILITY_MODELS.names())}"
            )
        info = AVAILABILITY_MODELS.get(self.kind)
        normalised = []
        seen = set()
        for name, value in sorted(self.parameters):
            parameter = info.parameter(str(name))
            if parameter is None:
                raise ExperimentError(
                    f"availability kind {self.kind!r} has no parameter {name!r} "
                    f"(accepted: {[p.name for p in info.parameters]})"
                )
            # Store the registered spelling so case/alias variants both
            # canonicalize and reach the builders' exact-match get() calls.
            name = parameter.name
            if name in seen:
                raise ExperimentError(
                    f"availability parameter {name!r} given more than once"
                )
            seen.add(name)
            if isinstance(value, list):
                value = tuple(value)
            if isinstance(value, tuple):
                if len(value) != 2 or not all(isinstance(v, (int, float)) for v in value):
                    raise ExperimentError(
                        f"availability parameter {name!r}: "
                        f"ranges must be two numbers, got {value!r}"
                    )
                value = (float(value[0]), float(value[1]))
            elif not isinstance(value, (int, float, str, bool)):
                raise ExperimentError(
                    f"availability parameter {name!r} has unsupported type {type(value).__name__}"
                )
            normalised.append((name, value))
        normalised.sort(key=lambda pair: pair[0])
        object.__setattr__(self, "parameters", tuple(normalised))
        missing = [p.name for p in info.parameters if p.required and self.get(p.name) is None]
        if missing:
            raise ExperimentError(
                f"availability kind {self.kind!r} requires a {missing[0]!r} parameter"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(cls, payload: Mapping) -> "AvailabilitySpec":
        """Build from a spec-file mapping such as ``{"kind": "markov", ...}``."""
        data = dict(payload)
        kind = str(data.pop("kind", "markov"))
        return cls(kind=kind, parameters=tuple(data.items()))

    def get(self, name: str, default: Optional[ParamValue] = None) -> Optional[ParamValue]:
        for key, value in self.parameters:
            if key == name:
                return value
        return default

    def as_dict(self) -> dict:
        payload = {"kind": self.kind}
        for name, value in self.parameters:
            payload[name] = list(value) if isinstance(value, tuple) else value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "AvailabilitySpec":
        return cls.from_mapping(payload)

    def is_default_markov(self) -> bool:
        return self.kind == "markov" and not self.parameters


@dataclass(frozen=True)
class ScenarioParameters:
    """One cell of the experimental grid."""

    m: int
    ncom: int
    wmin: int
    num_processors: int = 20

    def __post_init__(self) -> None:
        for name in ("m", "ncom", "wmin", "num_processors"):
            value = getattr(self, name)
            if int(value) != value or value < 1:
                raise ExperimentError(f"{name} must be a positive integer, got {value!r}")

    def platform_spec(self) -> PlatformSpec:
        return PlatformSpec(
            num_processors=self.num_processors, ncom=self.ncom, wmin=self.wmin
        )

    def label(self) -> str:
        return f"m{self.m}_ncom{self.ncom}_wmin{self.wmin}"


@dataclass(frozen=True)
class ExperimentScenario:
    """One random platform instantiation for a grid cell.

    ``availability`` selects the availability substrate; ``None`` (the
    default) is the paper's Markov recipe and keeps every seed and platform
    bit-identical to the pre-spec harness.
    """

    params: ScenarioParameters
    scenario_index: int
    campaign: str = "campaign"
    availability: Optional[AvailabilitySpec] = None

    # ------------------------------------------------------------------
    def platform_seed(self) -> int:
        return stable_hash_seed(self.campaign, "platform", self.params.label(), self.scenario_index)

    def trial_seed(self, trial: int) -> int:
        return stable_hash_seed(
            self.campaign, "trial", self.params.label(), self.scenario_index, int(trial)
        )

    def build_platform(self) -> Platform:
        """Materialise the scenario's platform (deterministic in the seed)."""
        spec = self.availability
        if spec is None or spec.is_default_markov():
            return paper_platform(
                self.params.platform_spec(),
                num_tasks=self.params.m,
                seed=self.platform_seed(),
            )
        return _build_availability_platform(
            self.params, spec, num_tasks=self.params.m, seed=self.platform_seed()
        )

    def build_application(self, iterations: int = 10) -> Application:
        return Application(
            tasks_per_iteration=self.params.m,
            iterations=iterations,
            name=f"{self.params.label()}_s{self.scenario_index}",
        )

    def label(self) -> str:
        return f"{self.params.label()}_s{self.scenario_index}"


@dataclass(frozen=True)
class CampaignScale:
    """How much of the paper's campaign to run.

    ``CampaignScale.paper()`` is the full grid (6,000 instances per the
    paper); the default :meth:`reduced` grid keeps the sweep structure but
    shrinks the number of scenarios, trials and wmin values so a full
    17-heuristic campaign finishes on a laptop; :meth:`smoke` is for tests.
    """

    ncom_values: Tuple[int, ...] = (5, 10, 20)
    wmin_values: Tuple[int, ...] = tuple(range(1, 11))
    scenarios_per_cell: int = 10
    trials_per_scenario: int = 10
    iterations: int = 10
    makespan_cap: int = 1_000_000
    num_processors: int = 20

    def __post_init__(self) -> None:
        if not self.ncom_values or not self.wmin_values:
            raise ExperimentError("ncom_values and wmin_values must be non-empty")
        if self.scenarios_per_cell < 1 or self.trials_per_scenario < 1:
            raise ExperimentError("scenarios_per_cell and trials_per_scenario must be >= 1")
        if self.iterations < 1:
            raise ExperimentError("iterations must be >= 1")
        if self.makespan_cap < 1:
            raise ExperimentError("makespan_cap must be >= 1")

    # ------------------------------------------------------------------
    @classmethod
    def paper(cls) -> "CampaignScale":
        """The paper's full campaign parameters."""
        return cls()

    @classmethod
    def reduced(cls) -> "CampaignScale":
        """Laptop-scale default: same sweep structure, fewer repetitions."""
        return cls(
            ncom_values=(5, 20),
            wmin_values=(1, 4, 7, 10),
            scenarios_per_cell=2,
            trials_per_scenario=2,
            iterations=10,
            makespan_cap=150_000,
        )

    @classmethod
    def smoke(cls) -> "CampaignScale":
        """Tiny grid for unit/integration tests and CI."""
        return cls(
            ncom_values=(5,),
            wmin_values=(1,),
            scenarios_per_cell=1,
            trials_per_scenario=1,
            iterations=3,
            makespan_cap=30_000,
            num_processors=10,
        )

    def with_overrides(self, **kwargs) -> "CampaignScale":
        """A copy with selected fields replaced (convenience for the CLI)."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    def num_instances(self, num_m_values: int = 1) -> int:
        """Number of (scenario, trial) problem instances in the campaign."""
        return (
            num_m_values
            * len(self.ncom_values)
            * len(self.wmin_values)
            * self.scenarios_per_cell
            * self.trials_per_scenario
        )


# ----------------------------------------------------------------------
# Availability substrates beyond the paper's Markov recipe
# ----------------------------------------------------------------------
def _build_availability_platform(
    params: ScenarioParameters,
    spec: AvailabilitySpec,
    *,
    num_tasks: int,
    seed: int,
) -> Platform:
    """Platform with paper speeds but a registry-built availability substrate.

    The substrate is looked up in
    :data:`repro.availability.registry.AVAILABILITY_MODELS` and its model
    factory handed to :func:`~repro.platform.builders.availability_platform`,
    which draws models first and speeds second from the scenario's seeded
    generator — for ``markov`` this reproduces the
    :func:`~repro.platform.builders.paper_platform` draws bit-for-bit.
    """
    factory = model_factory_for(spec)
    return availability_platform(
        params.platform_spec(), num_tasks=num_tasks, seed=seed, model_factory=factory
    )


def generate_scenarios(
    scale: CampaignScale,
    m: int,
    *,
    campaign: str = "campaign",
    availability: Optional[AvailabilitySpec] = None,
) -> List[ExperimentScenario]:
    """All scenarios of the grid for a given ``m`` (Table I uses m=5, Table II m=10)."""
    if m < 1:
        raise ExperimentError(f"m must be >= 1, got {m}")
    scenarios: List[ExperimentScenario] = []
    for ncom in scale.ncom_values:
        for wmin in scale.wmin_values:
            params = ScenarioParameters(
                m=m, ncom=ncom, wmin=wmin, num_processors=scale.num_processors
            )
            for index in range(scale.scenarios_per_cell):
                scenarios.append(
                    ExperimentScenario(
                        params=params,
                        scenario_index=index,
                        campaign=campaign,
                        availability=availability,
                    )
                )
    return scenarios
