"""Scenario grid generation following Section VII-A.

An *experimental scenario* is one random instantiation of a platform for a
given cell ``(m, ncom, wmin)`` of the campaign grid:

* 20 processors, Markov availability with stay-probabilities uniform in
  [0.90, 0.99] and the remaining mass split evenly;
* speeds ``w_q`` uniform integers in ``[wmin, 10 · wmin]``;
* ``Tdata = wmin``, ``Tprog = 5 · wmin``.

Each scenario is then simulated for several *trials*, each trial being a
different realisation of the Markov chains (different seed) but the same
platform.  Every seed is derived deterministically from the campaign label
and the scenario coordinates, so any individual instance can be re-run in
isolation and reproduce the in-campaign realisation exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, List, Sequence, Tuple

from repro.application.application import Application
from repro.exceptions import ExperimentError
from repro.platform.builders import PlatformSpec, paper_platform
from repro.platform.platform import Platform
from repro.utils.rng import stable_hash_seed

__all__ = [
    "ScenarioParameters",
    "ExperimentScenario",
    "CampaignScale",
    "generate_scenarios",
]


@dataclass(frozen=True)
class ScenarioParameters:
    """One cell of the experimental grid."""

    m: int
    ncom: int
    wmin: int
    num_processors: int = 20

    def __post_init__(self) -> None:
        for name in ("m", "ncom", "wmin", "num_processors"):
            value = getattr(self, name)
            if int(value) != value or value < 1:
                raise ExperimentError(f"{name} must be a positive integer, got {value!r}")

    def platform_spec(self) -> PlatformSpec:
        return PlatformSpec(
            num_processors=self.num_processors, ncom=self.ncom, wmin=self.wmin
        )

    def label(self) -> str:
        return f"m{self.m}_ncom{self.ncom}_wmin{self.wmin}"


@dataclass(frozen=True)
class ExperimentScenario:
    """One random platform instantiation for a grid cell."""

    params: ScenarioParameters
    scenario_index: int
    campaign: str = "campaign"

    # ------------------------------------------------------------------
    def platform_seed(self) -> int:
        return stable_hash_seed(self.campaign, "platform", self.params.label(), self.scenario_index)

    def trial_seed(self, trial: int) -> int:
        return stable_hash_seed(
            self.campaign, "trial", self.params.label(), self.scenario_index, int(trial)
        )

    def build_platform(self) -> Platform:
        """Materialise the scenario's platform (deterministic in the seed)."""
        return paper_platform(
            self.params.platform_spec(),
            num_tasks=self.params.m,
            seed=self.platform_seed(),
        )

    def build_application(self, iterations: int = 10) -> Application:
        return Application(
            tasks_per_iteration=self.params.m,
            iterations=iterations,
            name=f"{self.params.label()}_s{self.scenario_index}",
        )

    def label(self) -> str:
        return f"{self.params.label()}_s{self.scenario_index}"


@dataclass(frozen=True)
class CampaignScale:
    """How much of the paper's campaign to run.

    ``CampaignScale.paper()`` is the full grid (6,000 instances per the
    paper); the default :meth:`reduced` grid keeps the sweep structure but
    shrinks the number of scenarios, trials and wmin values so a full
    17-heuristic campaign finishes on a laptop; :meth:`smoke` is for tests.
    """

    ncom_values: Tuple[int, ...] = (5, 10, 20)
    wmin_values: Tuple[int, ...] = tuple(range(1, 11))
    scenarios_per_cell: int = 10
    trials_per_scenario: int = 10
    iterations: int = 10
    makespan_cap: int = 1_000_000
    num_processors: int = 20

    def __post_init__(self) -> None:
        if not self.ncom_values or not self.wmin_values:
            raise ExperimentError("ncom_values and wmin_values must be non-empty")
        if self.scenarios_per_cell < 1 or self.trials_per_scenario < 1:
            raise ExperimentError("scenarios_per_cell and trials_per_scenario must be >= 1")
        if self.iterations < 1:
            raise ExperimentError("iterations must be >= 1")
        if self.makespan_cap < 1:
            raise ExperimentError("makespan_cap must be >= 1")

    # ------------------------------------------------------------------
    @classmethod
    def paper(cls) -> "CampaignScale":
        """The paper's full campaign parameters."""
        return cls()

    @classmethod
    def reduced(cls) -> "CampaignScale":
        """Laptop-scale default: same sweep structure, fewer repetitions."""
        return cls(
            ncom_values=(5, 20),
            wmin_values=(1, 4, 7, 10),
            scenarios_per_cell=2,
            trials_per_scenario=2,
            iterations=10,
            makespan_cap=150_000,
        )

    @classmethod
    def smoke(cls) -> "CampaignScale":
        """Tiny grid for unit/integration tests and CI."""
        return cls(
            ncom_values=(5,),
            wmin_values=(1,),
            scenarios_per_cell=1,
            trials_per_scenario=1,
            iterations=3,
            makespan_cap=30_000,
            num_processors=10,
        )

    def with_overrides(self, **kwargs) -> "CampaignScale":
        """A copy with selected fields replaced (convenience for the CLI)."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    def num_instances(self, num_m_values: int = 1) -> int:
        """Number of (scenario, trial) problem instances in the campaign."""
        return (
            num_m_values
            * len(self.ncom_values)
            * len(self.wmin_values)
            * self.scenarios_per_cell
            * self.trials_per_scenario
        )


def generate_scenarios(
    scale: CampaignScale,
    m: int,
    *,
    campaign: str = "campaign",
) -> List[ExperimentScenario]:
    """All scenarios of the grid for a given ``m`` (Table I uses m=5, Table II m=10)."""
    if m < 1:
        raise ExperimentError(f"m must be >= 1, got {m}")
    scenarios: List[ExperimentScenario] = []
    for ncom in scale.ncom_values:
        for wmin in scale.wmin_values:
            params = ScenarioParameters(
                m=m, ncom=ncom, wmin=wmin, num_processors=scale.num_processors
            )
            for index in range(scale.scenarios_per_cell):
                scenarios.append(
                    ExperimentScenario(params=params, scenario_index=index, campaign=campaign)
                )
    return scenarios
