"""Comparing a measured campaign against the paper's published tables.

Absolute makespans cannot be compared across simulators (different cap,
different Monte-Carlo realisations, reduced grids), so the comparison focuses
on the *shape* of the result, which is what the reproduction is expected to
preserve:

* the ranking of heuristics by %diff (Spearman rank correlation against the
  paper's ranking);
* sign agreement: which heuristics beat the IE reference (negative %diff)
  and which do not;
* the magnitude class of RANDOM (an order of magnitude worse than everything
  else).

These comparisons are what EXPERIMENTS.md records for every table, and the
:func:`compare_with_paper` report is printed by the table benchmarks so a
reader can judge the reproduction quality at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.experiments.metrics import HeuristicSummary
from repro.experiments.store import StoreStatus
from repro.utils.tables import format_table

__all__ = [
    "PaperComparison",
    "compare_with_paper",
    "format_comparison",
    "format_store_status",
]


@dataclass(frozen=True)
class PaperComparison:
    """Shape comparison between measured summaries and a paper table."""

    #: Heuristics present in both the measurement and the paper table.
    common_heuristics: Tuple[str, ...]
    #: Spearman rank correlation between the two %diff orderings (None when
    #: fewer than three heuristics are comparable).
    rank_correlation: Optional[float]
    #: Fraction of heuristics whose %diff sign (beats IE / does not) agrees.
    sign_agreement: Optional[float]
    #: Heuristics that beat IE in the measurement.
    measured_winners: Tuple[str, ...]
    #: Heuristics that beat IE in the paper.
    paper_winners: Tuple[str, ...]
    #: Per-heuristic (measured %diff, paper %diff) pairs.
    diffs: Dict[str, Tuple[Optional[float], float]]

    def agrees_on_shape(self, *, min_rank_correlation: float = 0.3,
                        min_sign_agreement: float = 0.6) -> bool:
        """A lenient overall verdict used by the benchmarks' sanity checks."""
        checks: List[bool] = []
        if self.rank_correlation is not None:
            checks.append(self.rank_correlation >= min_rank_correlation)
        if self.sign_agreement is not None:
            checks.append(self.sign_agreement >= min_sign_agreement)
        return all(checks) if checks else False


def compare_with_paper(
    summaries: Sequence[HeuristicSummary],
    paper_table: Mapping[str, Tuple[float, float, float, float, float]],
    *,
    reference: str = "IE",
) -> PaperComparison:
    """Compare measured summaries with a paper table (``PAPER_TABLE1``/``2``)."""
    measured: Dict[str, Optional[float]] = {s.heuristic: s.pct_diff for s in summaries}
    common = [
        name
        for name in paper_table
        if name in measured and name != reference and measured[name] is not None
    ]
    diffs = {
        name: (measured.get(name), float(paper_table[name][1]))
        for name in paper_table
        if name in measured
    }

    rank_correlation: Optional[float] = None
    if len(common) >= 3:
        measured_values = [measured[name] for name in common]
        paper_values = [paper_table[name][1] for name in common]
        correlation = stats.spearmanr(measured_values, paper_values).correlation
        rank_correlation = None if np.isnan(correlation) else float(correlation)

    if common:
        agreements = sum(
            1
            for name in common
            if (measured[name] < 0) == (paper_table[name][1] < 0)
        )
        sign_agreement = agreements / len(common)
    else:
        sign_agreement = None

    measured_winners = tuple(
        sorted(name for name in common if measured[name] is not None and measured[name] < 0)
    )
    paper_winners = tuple(
        sorted(name for name in paper_table if name != reference and paper_table[name][1] < 0)
    )
    return PaperComparison(
        common_heuristics=tuple(common),
        rank_correlation=rank_correlation,
        sign_agreement=sign_agreement,
        measured_winners=measured_winners,
        paper_winners=paper_winners,
        diffs=diffs,
    )


def format_store_status(status: StoreStatus) -> str:
    """Human-readable completion report of a campaign result store."""
    percent = 100.0 * status.completed / status.total_cells if status.total_cells else 0.0
    lines = [
        f"Campaign {status.spec_name!r} (spec {status.spec_hash[:12]}, "
        f"{status.backend} store at {status.directory})",
        f"  cells: {status.completed}/{status.total_cells} complete "
        f"({percent:.1f}%), {status.remaining} remaining",
    ]
    rows = [
        [heuristic, done, total, f"{100.0 * done / total:.1f}%" if total else "n/a"]
        for heuristic, done, total in status.by_heuristic
    ]
    lines.append(format_table(rows, headers=["heuristic", "done", "total", "%"]))
    return "\n".join(lines)


def format_comparison(comparison: PaperComparison) -> str:
    """Human-readable rendering of a :class:`PaperComparison`."""
    rows = []
    for name, (measured, paper) in sorted(comparison.diffs.items(), key=lambda kv: kv[1][1]):
        rows.append([
            name,
            "n/a" if measured is None else round(measured, 2),
            round(paper, 2),
        ])
    table = format_table(rows, headers=["heuristic", "measured %diff", "paper %diff"])
    lines = [table, ""]
    if comparison.rank_correlation is not None:
        lines.append(f"Spearman rank correlation of %diff orderings: "
                     f"{comparison.rank_correlation:.2f}")
    if comparison.sign_agreement is not None:
        lines.append(f"Sign agreement (beats IE or not): {100 * comparison.sign_agreement:.0f}%")
    lines.append(f"Beat IE in this run : {', '.join(comparison.measured_winners) or '(none)'}")
    lines.append(f"Beat IE in the paper: {', '.join(comparison.paper_winners) or '(none)'}")
    return "\n".join(lines)
