"""Rebuilding Table I and Table II of the paper.

Table I reports #fails, %diff, %wins, %wins30 and stdv for all seventeen
heuristics with ``m = 5``; Table II reports the best eight heuristics with
``m = 10``.  The builders here wrap the campaign runner and the metrics
module and render the same columns as the paper.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.group import ExpectationMode
from repro.experiments.metrics import (
    DEFAULT_REFERENCE,
    HeuristicSummary,
    filter_results,
    summarize_results,
)
from repro.experiments.runner import InstanceResult, run_campaign
from repro.experiments.scenarios import CampaignScale
from repro.experiments.spec import CampaignSpec
from repro.scheduling.registry import ALL_HEURISTICS, TABLE2_HEURISTICS
from repro.utils.tables import format_table

__all__ = [
    "build_table",
    "format_summaries",
    "format_spec_report",
    "format_table1",
    "format_table2",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
]

#: Paper-reported Table I rows (m = 5): heuristic -> (fails, %diff, %wins, %wins30, stdv).
PAPER_TABLE1 = {
    "Y-IE": (2, -11.82, 72.58, 92.09, 0.42),
    "P-IE": (2, -10.50, 70.98, 91.19, 0.44),
    "E-IAY": (4, -10.40, 64.75, 85.15, 0.77),
    "E-IY": (4, -3.40, 59.91, 81.64, 0.80),
    "IE": (1, 0.00, 100.00, 100.00, 0.00),
    "IAY": (2, 13.59, 51.07, 76.42, 1.93),
    "E-IP": (4, 19.35, 47.73, 69.69, 0.98),
    "IY": (2, 24.22, 45.26, 70.85, 1.96),
    "IP": (2, 52.03, 34.79, 58.54, 2.11),
    "E-IE": (5, 53.93, 39.57, 64.51, 2.57),
    "Y-IAY": (3, 99.75, 53.89, 70.77, 5.55),
    "Y-IY": (3, 113.01, 49.22, 66.80, 5.73),
    "P-IAY": (3, 125.27, 50.28, 67.33, 6.08),
    "Y-IP": (2, 145.05, 38.56, 55.54, 5.90),
    "P-IY": (3, 145.78, 42.54, 59.66, 6.22),
    "P-IP": (2, 176.92, 36.92, 52.00, 6.61),
    "RANDOM": (0, 2124.42, 0.00, 0.20, 22.54),
}

#: Paper-reported Table II rows (m = 10, best eight heuristics).
PAPER_TABLE2 = {
    "Y-IE": (141, -10.33, 71.35, 88.42, 0.54),
    "P-IE": (141, -8.62, 69.64, 87.23, 0.55),
    "E-IAY": (178, -6.10, 66.62, 81.93, 1.58),
    "E-IY": (176, 8.04, 61.90, 77.87, 3.07),
    "E-IP": (168, 29.68, 55.12, 71.86, 3.01),
    "IAY": (152, 136.65, 46.98, 69.31, 14.76),
    "IY": (152, 147.77, 42.06, 64.47, 14.76),
    "IE": (0, 0.00, 100.00, 100.00, 0.00),
}

_HEADERS = ["Heuristic", "#fails", "%diff", "%wins", "%wins30", "stdv"]


def build_table(
    m: int,
    *,
    heuristics: Sequence[str] = ALL_HEURISTICS,
    scale: Optional[CampaignScale] = None,
    label: Optional[str] = None,
    n_jobs: int = 1,
    mode: ExpectationMode = ExpectationMode.PAPER,
) -> tuple:
    """Run the campaign for a table and return ``(campaign, summaries)``."""
    label = label or f"table_m{m}"
    campaign = run_campaign(
        m,
        heuristics=heuristics,
        scale=scale,
        label=label,
        n_jobs=n_jobs,
        mode=mode,
    )
    summaries = summarize_results(campaign.results)
    return campaign, summaries


def format_summaries(summaries: Sequence[HeuristicSummary], *, title: str = "") -> str:
    """Render summaries as a Table I/II style text table."""
    rows = [summary.as_row() for summary in summaries]
    table = format_table(rows, headers=_HEADERS)
    if title:
        return f"{title}\n{table}"
    return table


def format_spec_report(results: Sequence[InstanceResult], spec: CampaignSpec) -> str:
    """Render a spec campaign as one Table-I-style section per grid slice.

    The comparison metrics pair instances through the legacy scenario keys,
    which do not separate platform sizes — so a multi-``m`` /
    multi-``num_processors`` campaign is reported slice by slice.  The
    reference heuristic is the paper's IE when the spec includes it,
    otherwise the spec's first heuristic.

    A slice whose completed cells do not yet include the reference (a
    partially-run or sharded store) is reported as pending instead of
    raising, so ``--report`` stays usable mid-campaign.
    """
    reference = DEFAULT_REFERENCE if DEFAULT_REFERENCE in spec.heuristics else spec.heuristics[0]
    sections: List[str] = []
    for m in spec.m_values:
        for num_processors in spec.num_processors_values:
            subset = filter_results(results, m=m, num_processors=num_processors)
            if not subset:
                continue
            title = f"Campaign {spec.name!r} — m = {m}"
            if len(spec.num_processors_values) > 1:
                title += f", p = {num_processors}"
            title += f" ({len(subset)} results, reference {reference})"
            if not any(result.heuristic == reference for result in subset):
                sections.append(
                    f"{title}\n  no completed {reference} cells yet — "
                    "comparison metrics pending"
                )
                continue
            summaries = summarize_results(subset, reference=reference)
            sections.append(format_summaries(summaries, title=title))
    if not sections:
        return f"Campaign {spec.name!r}: no completed cells to report"
    return "\n\n".join(sections)


def format_table1(
    *,
    scale: Optional[CampaignScale] = None,
    n_jobs: int = 1,
    mode: ExpectationMode = ExpectationMode.PAPER,
) -> tuple:
    """Reproduce Table I (m = 5, all heuristics); returns ``(campaign, summaries, text)``."""
    campaign, summaries = build_table(
        5, heuristics=ALL_HEURISTICS, scale=scale, label="table1", n_jobs=n_jobs, mode=mode
    )
    text = format_summaries(summaries, title="Table I — results with m = 5 tasks")
    return campaign, summaries, text


def format_table2(
    *,
    scale: Optional[CampaignScale] = None,
    n_jobs: int = 1,
    mode: ExpectationMode = ExpectationMode.PAPER,
) -> tuple:
    """Reproduce Table II (m = 10, best heuristics); returns ``(campaign, summaries, text)``."""
    campaign, summaries = build_table(
        10, heuristics=TABLE2_HEURISTICS, scale=scale, label="table2", n_jobs=n_jobs, mode=mode
    )
    text = format_summaries(
        summaries, title="Table II — results with m = 10 tasks (best heuristics)"
    )
    return campaign, summaries, text
