"""The paper's comparison metrics (#fails, %diff, %wins, %wins30, stdv).

All metrics compare a heuristic ``H`` against the reference heuristic ``IE``
(the most robust one in the paper), exactly as in Section VII-A:

* **#fails** — number of (scenario, trial) instances on which ``H`` hit the
  makespan cap;
* **%diff** — for every scenario, ``H``'s makespan averaged over its
  successful trials is compared to ``IE``'s average on the same scenario via
  ``(makespan_H − makespan_IE) / min(makespan_H, makespan_IE)``; %diff is the
  mean of this relative difference over scenarios, in percent (negative
  means ``H`` beats the reference on average);
* **%wins** — fraction of trials on which ``H``'s makespan is smaller than or
  equal to ``IE``'s (a failed ``H`` trial counts as a loss; trials where the
  reference itself failed are skipped);
* **%wins30** — fraction of trials on which ``H``'s makespan does not exceed
  ``IE``'s by more than 30 %;
* **stdv** — standard deviation over scenarios of the per-scenario relative
  difference (not in percent, matching the paper's table scale).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.components import ComponentError
from repro.exceptions import ExperimentError
from repro.experiments.runner import InstanceResult
from repro.scheduling.registry import canonical_heuristic

__all__ = [
    "HeuristicSummary",
    "MetricBands",
    "aggregate_metric_bands",
    "summarize_results",
    "relative_difference",
    "filter_results",
]

#: The reference heuristic of the paper's tables.
DEFAULT_REFERENCE = "IE"


def relative_difference(makespan: float, reference: float) -> float:
    """``(makespan − reference) / min(makespan, reference)`` (the paper's %diff core)."""
    if makespan <= 0 or reference <= 0:
        raise ValueError("makespans must be positive")
    return (makespan - reference) / min(makespan, reference)


@dataclass(frozen=True)
class HeuristicSummary:
    """One row of Table I / Table II."""

    heuristic: str
    fails: int
    pct_diff: Optional[float]
    pct_wins: Optional[float]
    pct_wins30: Optional[float]
    stdv: Optional[float]
    num_scenarios: int
    num_trials: int

    def as_row(self) -> list:
        return [
            self.heuristic,
            self.fails,
            None if self.pct_diff is None else round(self.pct_diff, 2),
            None if self.pct_wins is None else round(self.pct_wins, 2),
            None if self.pct_wins30 is None else round(self.pct_wins30, 2),
            None if self.stdv is None else round(self.stdv, 2),
        ]

    def as_dict(self) -> dict:
        return {
            "heuristic": self.heuristic,
            "fails": self.fails,
            "pct_diff": self.pct_diff,
            "pct_wins": self.pct_wins,
            "pct_wins30": self.pct_wins30,
            "stdv": self.stdv,
            "num_scenarios": self.num_scenarios,
            "num_trials": self.num_trials,
        }


def filter_results(
    results: Iterable[InstanceResult],
    *,
    m: Optional[int] = None,
    ncom: Optional[int] = None,
    wmin: Optional[int] = None,
    num_processors: Optional[int] = None,
    heuristics: Optional[Sequence[str]] = None,
) -> List[InstanceResult]:
    """Select one slice of a (possibly multi-``m``, multi-platform) result set.

    Spec-driven campaigns sweep grids wider than a single paper table; the
    comparison metrics are only meaningful within one ``(m, num_processors)``
    slice (the legacy scenario keys do not separate platform sizes), so
    reports filter before summarising.
    """
    wanted: Optional[set] = None
    if heuristics is not None:
        # Canonicalize through the registry so any spelling of a
        # (possibly parameterized) heuristic matches the stored results;
        # unregistered names fall back to plain upper-casing and simply
        # select nothing.
        wanted = set()
        for name in heuristics:
            try:
                wanted.add(canonical_heuristic(name))
            except ComponentError:
                wanted.add(str(name).upper())
    selected: List[InstanceResult] = []
    for result in results:
        if m is not None and result.m != m:
            continue
        if ncom is not None and result.ncom != ncom:
            continue
        if wmin is not None and result.wmin != wmin:
            continue
        if num_processors is not None and result.num_processors != num_processors:
            continue
        if wanted is not None and result.heuristic not in wanted:
            continue
        selected.append(result)
    return selected


def _group_by_heuristic(results: Iterable[InstanceResult]) -> Dict[str, List[InstanceResult]]:
    grouped: Dict[str, List[InstanceResult]] = defaultdict(list)
    for result in results:
        grouped[result.heuristic].append(result)
    return grouped


def _index_by_instance(results: Iterable[InstanceResult]) -> Dict[Tuple, InstanceResult]:
    return {result.instance_key(): result for result in results}


def summarize_results(
    results: Sequence[InstanceResult],
    *,
    reference: str = DEFAULT_REFERENCE,
    wins_margin: float = 0.30,
) -> List[HeuristicSummary]:
    """Compute the Table I/II rows for every heuristic present in *results*.

    Rows are sorted best-first (ascending %diff, reference pinned where its
    %diff of 0.0 lands, heuristics with no comparable scenarios last).
    """
    grouped = _group_by_heuristic(results)
    if reference not in grouped:
        raise ExperimentError(
            f"reference heuristic {reference!r} not present in the results "
            f"(available: {sorted(grouped)})"
        )
    reference_by_instance = _index_by_instance(grouped[reference])

    summaries: List[HeuristicSummary] = []
    for heuristic, entries in grouped.items():
        fails = sum(1 for entry in entries if not entry.success)
        num_trials = len(entries)

        # --- per-scenario mean makespans (successful trials only) ----------
        per_scenario: Dict[Tuple, Dict[str, List[float]]] = defaultdict(
            lambda: {"h": [], "ref": []}
        )
        wins = 0
        wins30 = 0
        comparable_trials = 0
        for entry in entries:
            ref_entry = reference_by_instance.get(entry.instance_key())
            if ref_entry is None or not ref_entry.success:
                continue  # the reference itself failed: skip the trial, as the paper does
            comparable_trials += 1
            if entry.success and entry.makespan is not None:
                per_scenario[entry.scenario_key()]["h"].append(float(entry.makespan))
                per_scenario[entry.scenario_key()]["ref"].append(float(ref_entry.makespan))
                if entry.makespan <= ref_entry.makespan:
                    wins += 1
                if entry.makespan <= (1.0 + wins_margin) * ref_entry.makespan:
                    wins30 += 1
            # A failed heuristic trial counts as a loss for both win metrics.

        scenario_diffs: List[float] = []
        for data in per_scenario.values():
            if not data["h"] or not data["ref"]:
                continue
            mean_h = float(np.mean(data["h"]))
            mean_ref = float(np.mean(data["ref"]))
            scenario_diffs.append(relative_difference(mean_h, mean_ref))

        if scenario_diffs:
            pct_diff = 100.0 * float(np.mean(scenario_diffs))
            stdv = float(np.std(scenario_diffs))
        else:
            pct_diff = None
            stdv = None
        if comparable_trials > 0:
            pct_wins = 100.0 * wins / comparable_trials
            pct_wins30 = 100.0 * wins30 / comparable_trials
        else:
            pct_wins = None
            pct_wins30 = None

        summaries.append(
            HeuristicSummary(
                heuristic=heuristic,
                fails=fails,
                pct_diff=pct_diff,
                pct_wins=pct_wins,
                pct_wins30=pct_wins30,
                stdv=stdv,
                num_scenarios=len(per_scenario),
                num_trials=num_trials,
            )
        )

    summaries.sort(
        key=lambda s: (s.pct_diff is None, s.pct_diff if s.pct_diff is not None else math.inf)
    )
    return summaries


# ----------------------------------------------------------------------
# Monte Carlo confidence bands over sampled per-slot series
# ----------------------------------------------------------------------
#: Default band quantiles: an 80% interval around the median.
DEFAULT_BAND_QUANTILES = (0.1, 0.5, 0.9)


@dataclass(frozen=True)
class MetricBands:
    """Per-slot quantile bands of one ``(grid cell, heuristic)`` group.

    Aggregates the :class:`~repro.metrics.collector.RunMetrics` series of
    every repetition (scenario × trial) of one grid cell run under one
    heuristic.  ``series[name][q]`` is the per-grid-point *q*-quantile of
    metric ``name`` across repetitions; runs end at different slots, so
    shorter series are NaN-padded and each grid point aggregates only the
    runs still alive there (``alive`` counts them).  ``makespan_quantiles``
    holds the same quantiles of the successful repetitions' makespans.
    """

    m: int
    ncom: int
    wmin: int
    num_processors: int
    heuristic: str
    stride: int
    num_runs: int
    quantiles: Tuple[float, ...]
    #: metric name -> quantile -> per-grid-point values.
    series: Dict[str, Dict[float, List[float]]]
    #: Number of runs still alive (not yet ended) at each grid point.
    alive: List[int]
    makespan_quantiles: Dict[float, Optional[float]]
    successes: int
    failures: int

    def slots(self) -> List[int]:
        """The sampled slot indices (shared x axis of every band)."""
        return [index * self.stride for index in range(len(self.alive))]

    def cell_label(self) -> str:
        return (
            f"m={self.m} ncom={self.ncom} wmin={self.wmin} "
            f"p={self.num_processors}"
        )


def aggregate_metric_bands(
    results: Sequence[InstanceResult],
    *,
    quantiles: Sequence[float] = DEFAULT_BAND_QUANTILES,
) -> List[MetricBands]:
    """Aggregate per-run metric series into Monte Carlo bands.

    Results without a ``metrics`` payload are skipped (a store may mix runs
    recorded with and without the collector).  Groups are the report's
    natural unit: one ``(m, ncom, wmin, num_processors, heuristic)`` cell
    aggregated over its scenario × trial repetitions.  All series of a
    group must share one sampling stride; mixing strides raises
    :class:`~repro.exceptions.ExperimentError`.
    """
    quantiles = tuple(float(q) for q in quantiles)
    if not quantiles or any(not (0.0 <= q <= 1.0) for q in quantiles):
        raise ExperimentError(f"band quantiles must lie in [0, 1], got {quantiles}")
    groups: Dict[Tuple, List[InstanceResult]] = defaultdict(list)
    for result in results:
        if result.metrics:
            key = (result.m, result.ncom, result.wmin, result.num_processors, result.heuristic)
            groups[key].append(result)

    bands: List[MetricBands] = []
    for key in sorted(groups):
        entries = groups[key]
        strides = {int(entry.metrics["stride"]) for entry in entries}
        if len(strides) != 1:
            raise ExperimentError(
                f"cannot band cell {key}: series sampled at mixed strides {sorted(strides)}"
            )
        stride = strides.pop()
        names = list(entries[0].metrics["series"])
        lengths = [
            max(len(values) for values in entry.metrics["series"].values())
            for entry in entries
        ]
        width = max(lengths)
        series: Dict[str, Dict[float, List[float]]] = {}
        for name in names:
            stacked = np.full((len(entries), width), np.nan)
            for row, entry in enumerate(entries):
                values = entry.metrics["series"].get(name, [])
                stacked[row, : len(values)] = values
            levels = np.nanquantile(stacked, quantiles, axis=0)
            series[name] = {
                q: [float(v) for v in levels[i]] for i, q in enumerate(quantiles)
            }
        alive = np.zeros(width, dtype=np.int64)
        for length in lengths:
            alive[:length] += 1
        makespans = [
            float(entry.makespan)
            for entry in entries
            if entry.success and entry.makespan is not None
        ]
        makespan_quantiles: Dict[float, Optional[float]] = {
            q: (float(np.quantile(makespans, q)) if makespans else None)
            for q in quantiles
        }
        bands.append(
            MetricBands(
                m=key[0],
                ncom=key[1],
                wmin=key[2],
                num_processors=key[3],
                heuristic=key[4],
                stride=stride,
                num_runs=len(entries),
                quantiles=quantiles,
                series=series,
                alive=[int(v) for v in alive],
                makespan_quantiles=makespan_quantiles,
                successes=len(makespans),
                failures=len(entries) - len(makespans),
            )
        )
    return bands
