"""Rebuilding Figure 2 of the paper: %diff vs wmin for m = 10.

Figure 2 plots, for each of the eight best heuristics, the mean relative
distance to the IE reference as a function of the synthetic difficulty
parameter ``wmin`` (larger ``wmin`` means longer tasks and transfers, i.e.
harder instances).  The qualitative shape to reproduce: Y-IE is the best (or
near-best) heuristic up to ``wmin ≈ 8`` and is overtaken by IE (and P-IE)
for the hardest instances.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ExperimentError
from repro.experiments.metrics import relative_difference
from repro.experiments.runner import InstanceResult
from repro.utils.tables import format_table

__all__ = ["figure2_series", "format_figure2"]


def figure2_series(
    results: Sequence[InstanceResult],
    *,
    reference: str = "IE",
) -> Dict[str, List[Tuple[int, float]]]:
    """Per-heuristic series of (wmin, mean relative distance to the reference).

    The relative distance is the same per-scenario quantity as %diff but
    expressed as a fraction (the paper's Figure 2 y-axis spans roughly
    [-0.6, 0.6]), averaged over the scenarios sharing one ``wmin`` value.
    """
    reference_means: Dict[Tuple, float] = {}
    per_scenario: Dict[str, Dict[Tuple, List[float]]] = defaultdict(lambda: defaultdict(list))
    for result in results:
        if not result.success or result.makespan is None:
            continue
        per_scenario[result.heuristic][result.scenario_key()].append(float(result.makespan))

    if reference not in per_scenario:
        raise ExperimentError(f"reference heuristic {reference!r} absent from results")
    for key, makespans in per_scenario[reference].items():
        reference_means[key] = float(np.mean(makespans))

    series: Dict[str, List[Tuple[int, float]]] = {}
    for heuristic, scenarios in per_scenario.items():
        by_wmin: Dict[int, List[float]] = defaultdict(list)
        for key, makespans in scenarios.items():
            ref_mean = reference_means.get(key)
            if ref_mean is None:
                continue
            wmin = key[2]  # scenario_key = (m, ncom, wmin, scenario_index)
            by_wmin[wmin].append(relative_difference(float(np.mean(makespans)), ref_mean))
        series[heuristic] = [
            (wmin, float(np.mean(values))) for wmin, values in sorted(by_wmin.items())
        ]
    return series


def format_figure2(
    series: Dict[str, List[Tuple[int, float]]],
    *,
    heuristics: Optional[Sequence[str]] = None,
) -> str:
    """Render the Figure 2 data as a text table (wmin rows, heuristic columns)."""
    if heuristics is None:
        heuristics = sorted(series)
    wmin_values = sorted({wmin for name in heuristics for wmin, _ in series.get(name, [])})
    rows = []
    for wmin in wmin_values:
        row: List = [wmin]
        for name in heuristics:
            lookup = dict(series.get(name, []))
            value = lookup.get(wmin)
            row.append(None if value is None else round(value, 3))
        rows.append(row)
    headers = ["wmin"] + list(heuristics)
    return format_table(rows, headers=headers, float_fmt=".3f")
