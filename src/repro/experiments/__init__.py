"""Experiment harness reproducing the campaign of Section VII.

The paper's campaign sweeps ``(m, ncom, wmin)`` over
``{5, 10} × {5, 10, 20} × {1..10}``, draws 10 random scenarios per cell and
runs 10 Markov-realisation trials per scenario, for 6,000 problem instances,
each executed under all 17 heuristics.  The harness reproduces that grid (or
a configurable subset — see :class:`CampaignScale`), computes the paper's
metrics (#fails, %diff, %wins, %wins30, stdv against the IE reference) and
rebuilds Table I, Table II and the Figure 2 series.

Beyond the paper's grid, campaigns can be *declarative*: a
:class:`CampaignSpec` (TOML/JSON file or named built-in) describes grid
ranges over ``m``/``ncom``/``wmin``/``num_processors``, the availability
substrate (Markov, semi-Markov, diurnal, trace) and the heuristic subset.
Spec campaigns run against a persistent :class:`ResultStore` (JSONL or
sqlite), so interrupted runs resume exactly where they stopped, and the
deterministic cell enumeration can be sharded across machines
(``--shard i/N``) and recombined with :func:`merge_stores`.
"""

from repro.experiments.figures import figure2_series, format_figure2
from repro.experiments.io import load_campaign, load_results, save_campaign, save_results
from repro.experiments.metrics import (
    HeuristicSummary,
    filter_results,
    summarize_results,
)
from repro.experiments.report import (
    PaperComparison,
    compare_with_paper,
    format_comparison,
    format_store_status,
)
from repro.experiments.runner import (
    CampaignResult,
    CellProgress,
    InstanceResult,
    run_campaign,
    run_campaign_spec,
    run_instance,
    run_scenario,
)
from repro.experiments.scenarios import (
    AvailabilitySpec,
    CampaignScale,
    ExperimentScenario,
    ScenarioParameters,
    generate_scenarios,
)
from repro.experiments.spec import (
    BUILTIN_SPEC_NAMES,
    CampaignCell,
    CampaignSpec,
    builtin_spec,
    load_spec,
)
from repro.experiments.store import ResultStore, StoreStatus, merge_stores, store_status
from repro.experiments.tables import build_table, format_spec_report, format_table1, format_table2

__all__ = [
    "CampaignScale",
    "ScenarioParameters",
    "ExperimentScenario",
    "AvailabilitySpec",
    "generate_scenarios",
    "InstanceResult",
    "CampaignResult",
    "CellProgress",
    "run_instance",
    "run_scenario",
    "run_campaign",
    "run_campaign_spec",
    "CampaignSpec",
    "CampaignCell",
    "BUILTIN_SPEC_NAMES",
    "builtin_spec",
    "load_spec",
    "ResultStore",
    "StoreStatus",
    "merge_stores",
    "store_status",
    "HeuristicSummary",
    "summarize_results",
    "filter_results",
    "PaperComparison",
    "compare_with_paper",
    "format_comparison",
    "format_store_status",
    "build_table",
    "format_spec_report",
    "format_table1",
    "format_table2",
    "figure2_series",
    "format_figure2",
    "save_campaign",
    "load_campaign",
    "save_results",
    "load_results",
]
