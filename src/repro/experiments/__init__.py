"""Experiment harness reproducing the campaign of Section VII.

The paper's campaign sweeps ``(m, ncom, wmin)`` over
``{5, 10} × {5, 10, 20} × {1..10}``, draws 10 random scenarios per cell and
runs 10 Markov-realisation trials per scenario, for 6,000 problem instances,
each executed under all 17 heuristics.  The harness reproduces that grid (or
a configurable subset — see :class:`CampaignScale`), computes the paper's
metrics (#fails, %diff, %wins, %wins30, stdv against the IE reference) and
rebuilds Table I, Table II and the Figure 2 series.
"""

from repro.experiments.figures import figure2_series, format_figure2
from repro.experiments.io import load_campaign, save_campaign
from repro.experiments.metrics import HeuristicSummary, summarize_results
from repro.experiments.report import PaperComparison, compare_with_paper, format_comparison
from repro.experiments.runner import (
    CampaignResult,
    InstanceResult,
    run_campaign,
    run_instance,
    run_scenario,
)
from repro.experiments.scenarios import (
    CampaignScale,
    ExperimentScenario,
    ScenarioParameters,
    generate_scenarios,
)
from repro.experiments.tables import build_table, format_table1, format_table2

__all__ = [
    "CampaignScale",
    "ScenarioParameters",
    "ExperimentScenario",
    "generate_scenarios",
    "InstanceResult",
    "CampaignResult",
    "run_instance",
    "run_scenario",
    "run_campaign",
    "HeuristicSummary",
    "summarize_results",
    "PaperComparison",
    "compare_with_paper",
    "format_comparison",
    "build_table",
    "format_table1",
    "format_table2",
    "figure2_series",
    "format_figure2",
    "save_campaign",
    "load_campaign",
]
