"""Declarative campaign specifications.

A :class:`CampaignSpec` describes a whole experiment campaign as data: the
grid ranges (``m``, ``ncom``, ``wmin``, ``num_processors``), the availability
substrate (Markov / semi-Markov / diurnal / trace, with per-processor
parameter distributions), the heuristic subset, and the repetition counts.
Specs are loaded from TOML or JSON files (``repro campaign --spec``), or
looked up from the named built-ins (``--builtin paper`` is the paper's
Section VII-A grid).

The spec fully determines the campaign's *cells* — the flat, deterministic
enumeration of every ``(scenario, trial, heuristic)`` triple.  The cell list
is the contract shared by the runner, the persistent result store and the
sharding logic: cell ``i`` means the same work on every machine, which is
what makes campaigns resumable and shardable.

The user-facing file format groups keys into three tables::

    [campaign]
    name = "my-sweep"
    m = [5, 10]
    heuristics = ["IE", "Y-IE", "RANDOM"]
    scenarios_per_cell = 2
    trials = 3
    iterations = 10
    makespan_cap = 150000

    [grid]
    ncom = [5, 20]
    wmin = [1, 4, 7, 10]
    num_processors = [20]

    [availability]
    kind = "semi-markov"
    mean_up = [25.0, 60.0]     # range: drawn uniformly per processor

Flat payloads (as produced by :meth:`CampaignSpec.as_dict`, e.g. in store
manifests) are accepted by :meth:`CampaignSpec.from_dict` as well.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import List, Mapping, Optional, Tuple, Union

from repro.exceptions import ExperimentError
from repro.experiments.scenarios import (
    AvailabilitySpec,
    CampaignScale,
    ExperimentScenario,
    generate_scenarios,
)
from repro.components import ComponentError
from repro.scheduling.registry import (
    ALL_HEURISTICS,
    TABLE2_HEURISTICS,
    canonical_heuristic,
)
from repro.utils.serialization import content_hash

__all__ = [
    "CampaignCell",
    "CampaignSpec",
    "BUILTIN_SPEC_NAMES",
    "builtin_spec",
    "load_spec",
]

SPEC_FORMAT_VERSION = 1

#: The cell key type: (m, ncom, wmin, num_processors, scenario, trial, heuristic).
CellKey = Tuple[int, int, int, int, int, int, str]


@dataclass(frozen=True)
class CampaignCell:
    """One unit of campaign work: a (scenario, trial, heuristic) triple.

    ``index`` is the cell's position in the spec's canonical enumeration —
    the identity used by the result store (resume) and by sharding.
    """

    index: int
    scenario: ExperimentScenario
    trial: int
    heuristic: str

    def key(self) -> CellKey:
        params = self.scenario.params
        return (
            params.m,
            params.ncom,
            params.wmin,
            params.num_processors,
            self.scenario.scenario_index,
            self.trial,
            self.heuristic,
        )

    def label(self) -> str:
        return f"{self.scenario.label()} trial {self.trial} {self.heuristic}"


def _int_tuple(values, name: str) -> Tuple[int, ...]:
    if isinstance(values, (int, float)):
        values = (values,)
    result = tuple(int(v) for v in values)
    if not result:
        raise ExperimentError(f"{name} must be non-empty")
    if any(v < 1 for v in result):
        raise ExperimentError(f"{name} entries must be positive, got {result}")
    return result


@dataclass(frozen=True)
class CampaignSpec:
    """A complete, declarative description of one experiment campaign."""

    name: str = "campaign"
    m_values: Tuple[int, ...] = (5,)
    ncom_values: Tuple[int, ...] = (5, 10, 20)
    wmin_values: Tuple[int, ...] = tuple(range(1, 11))
    num_processors_values: Tuple[int, ...] = (20,)
    heuristics: Tuple[str, ...] = ALL_HEURISTICS
    scenarios_per_cell: int = 10
    trials_per_scenario: int = 10
    iterations: int = 10
    makespan_cap: int = 1_000_000
    availability: AvailabilitySpec = AvailabilitySpec()
    estimator: str = "paper"
    #: Directory the spec file was loaded from, used only to resolve relative
    #: trace paths at run time.  Runtime context, not campaign identity: it
    #: is excluded from equality, ``as_dict`` and ``spec_hash``, so the same
    #: spec file checked out at different locations on different shard
    #: machines still hashes (and therefore merges) identically.
    base_dir: Optional[str] = field(default=None, compare=False)
    #: Observability toggles: attach a per-run metrics collector sampling
    #: per-slot series every ``metrics_stride`` slots.  Runtime options, not
    #: campaign identity (excluded from equality, ``as_dict`` and
    #: ``spec_hash`` like ``base_dir``): the series are volatile store
    #: fields, so stores written with and without them resume and merge
    #: interchangeably.
    collect_metrics: bool = field(default=False, compare=False)
    metrics_stride: int = field(default=64, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "m_values", _int_tuple(self.m_values, "m_values"))
        object.__setattr__(self, "ncom_values", _int_tuple(self.ncom_values, "ncom_values"))
        object.__setattr__(self, "wmin_values", _int_tuple(self.wmin_values, "wmin_values"))
        object.__setattr__(
            self,
            "num_processors_values",
            _int_tuple(self.num_processors_values, "num_processors_values"),
        )
        if not self.name:
            raise ExperimentError("spec name must be non-empty")
        # Heuristic expressions are validated against the component registry
        # and canonicalized (case, aliases, argument order), so equivalent
        # spellings of a parameterized heuristic produce identical cell
        # enumerations and spec content hashes.
        canonical: List[str] = []
        unknown: List[str] = []
        for heuristic in self.heuristics:
            try:
                canonical.append(canonical_heuristic(str(heuristic)))
            except ComponentError:
                unknown.append(str(heuristic))
        if unknown:
            raise ExperimentError(f"unknown heuristics in spec: {unknown}")
        if not canonical:
            raise ExperimentError("spec must name at least one heuristic")
        object.__setattr__(self, "heuristics", tuple(canonical))
        counts = ("scenarios_per_cell", "trials_per_scenario", "iterations", "makespan_cap")
        for field_name in counts:
            if int(getattr(self, field_name)) < 1:
                raise ExperimentError(f"{field_name} must be >= 1")
        if self.estimator not in ("paper", "renewal"):
            raise ExperimentError(
                f"estimator must be 'paper' or 'renewal', got {self.estimator!r}"
            )
        if int(self.metrics_stride) < 1:
            raise ExperimentError(
                f"metrics_stride must be >= 1, got {self.metrics_stride}"
            )
        if not isinstance(self.availability, AvailabilitySpec):
            object.__setattr__(
                self, "availability", AvailabilitySpec.from_mapping(self.availability)
            )

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def scale_for(self, num_processors: int) -> CampaignScale:
        """The :class:`CampaignScale` equivalent for one processor-count slice."""
        return CampaignScale(
            ncom_values=self.ncom_values,
            wmin_values=self.wmin_values,
            scenarios_per_cell=self.scenarios_per_cell,
            trials_per_scenario=self.trials_per_scenario,
            iterations=self.iterations,
            makespan_cap=self.makespan_cap,
            num_processors=num_processors,
        )

    def _runtime_availability(self) -> Optional[AvailabilitySpec]:
        """The availability spec as the runner needs it (trace paths resolved).

        Any registered substrate with a ``path`` parameter (``trace``,
        ``trace-catalog``, ``trace-bootstrap``, ``fitted``, custom ones) gets
        relative paths resolved against the spec file's directory.
        """
        if self.availability.is_default_markov():
            return None
        availability = self.availability
        raw_path = availability.get("path")
        if raw_path is not None and self.base_dir is not None:
            path = Path(str(raw_path))
            if not path.is_absolute():
                resolved = str((Path(self.base_dir) / path).resolve())
                availability = AvailabilitySpec(
                    kind=availability.kind,
                    parameters=tuple(
                        (key, resolved if key == "path" else value)
                        for key, value in availability.parameters
                    ),
                )
        return availability

    def scenarios(self) -> List[ExperimentScenario]:
        """All scenarios, in canonical (m, num_processors, ncom, wmin, index) order."""
        availability = self._runtime_availability()
        scenarios: List[ExperimentScenario] = []
        for m in self.m_values:
            for num_processors in self.num_processors_values:
                scenarios.extend(
                    generate_scenarios(
                        self.scale_for(num_processors),
                        m,
                        campaign=self.name,
                        availability=availability,
                    )
                )
        return scenarios

    def cells(self) -> List[CampaignCell]:
        """The canonical flat cell enumeration (scenario-major, then trial, heuristic)."""
        cells: List[CampaignCell] = []
        index = 0
        for scenario in self.scenarios():
            for trial in range(self.trials_per_scenario):
                for heuristic in self.heuristics:
                    cells.append(CampaignCell(index, scenario, trial, heuristic))
                    index += 1
        return cells

    def num_cells(self) -> int:
        return (
            len(self.m_values)
            * len(self.num_processors_values)
            * len(self.ncom_values)
            * len(self.wmin_values)
            * self.scenarios_per_cell
            * self.trials_per_scenario
            * len(self.heuristics)
        )

    def shard_cells(self, shard_index: int, shard_count: int) -> List[CampaignCell]:
        """The cells owned by shard ``shard_index`` of ``shard_count`` (1-based).

        Cells are dealt round-robin, so shards are deterministic, disjoint,
        jointly complete and balanced to within one cell regardless of how
        scenario difficulty is ordered in the grid.
        """
        if shard_count < 1:
            raise ExperimentError(f"shard count must be >= 1, got {shard_count}")
        if not (1 <= shard_index <= shard_count):
            raise ExperimentError(
                f"shard index must be in [1, {shard_count}], got {shard_index}"
            )
        return self.cells()[shard_index - 1 :: shard_count]

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "format_version": SPEC_FORMAT_VERSION,
            "name": self.name,
            "m_values": list(self.m_values),
            "ncom_values": list(self.ncom_values),
            "wmin_values": list(self.wmin_values),
            "num_processors_values": list(self.num_processors_values),
            "heuristics": list(self.heuristics),
            "scenarios_per_cell": self.scenarios_per_cell,
            "trials_per_scenario": self.trials_per_scenario,
            "iterations": self.iterations,
            "makespan_cap": self.makespan_cap,
            "availability": self.availability.as_dict(),
            "estimator": self.estimator,
        }

    def spec_hash(self) -> str:
        """Content hash identifying "the same campaign" across stores/shards."""
        payload = self.as_dict()
        del payload["format_version"]
        return content_hash(payload)

    @classmethod
    def from_dict(cls, payload: Mapping, *, base_dir: Optional[Path] = None) -> "CampaignSpec":
        """Build a spec from a flat payload or a sectioned spec-file mapping."""
        if "campaign" in payload or "grid" in payload:
            return cls._from_file_dict(payload, base_dir=base_dir)
        data = dict(payload)
        data.pop("format_version", None)
        data.pop("base_dir", None)
        availability = data.pop("availability", None)
        spec = cls(**data)
        if availability is not None:
            spec = replace(spec, availability=AvailabilitySpec.from_mapping(availability))
        if base_dir is not None:
            spec = replace(spec, base_dir=str(base_dir))
        return spec

    @classmethod
    def _from_file_dict(
        cls, payload: Mapping, *, base_dir: Optional[Path] = None
    ) -> "CampaignSpec":
        campaign = dict(payload.get("campaign", {}))
        grid = dict(payload.get("grid", {}))
        availability = dict(payload.get("availability", {"kind": "markov"}))
        known_campaign = {
            "name": "name",
            "m": "m_values",
            "heuristics": "heuristics",
            "scenarios_per_cell": "scenarios_per_cell",
            "trials": "trials_per_scenario",
            "iterations": "iterations",
            "makespan_cap": "makespan_cap",
            "estimator": "estimator",
            "collect_metrics": "collect_metrics",
            "metrics_stride": "metrics_stride",
        }
        known_grid = {
            "ncom": "ncom_values",
            "wmin": "wmin_values",
            "num_processors": "num_processors_values",
        }
        kwargs = {}
        for source, mapping in ((campaign, known_campaign), (grid, known_grid)):
            for key, value in source.items():
                if key not in mapping:
                    section = "campaign" if mapping is known_campaign else "grid"
                    raise ExperimentError(
                        f"unknown key {key!r} in [{section}] "
                        f"(expected one of {sorted(mapping)})"
                    )
                kwargs[mapping[key]] = value
        kwargs["availability"] = AvailabilitySpec.from_mapping(availability)
        if base_dir is not None:
            kwargs["base_dir"] = str(base_dir)
        return cls(**kwargs)


# ----------------------------------------------------------------------
# Spec files and built-ins
# ----------------------------------------------------------------------
def load_spec(path: Union[str, Path]) -> CampaignSpec:
    """Load a campaign spec from a TOML or JSON file.

    The format is chosen by extension (``.toml`` needs Python >= 3.11's
    ``tomllib``; everything else is parsed as JSON).  Relative trace paths
    are resolved against the spec file's directory.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise ExperimentError(f"cannot read campaign spec {path}: {error}") from error
    if path.suffix.lower() == ".toml":
        try:
            import tomllib
        except ImportError as error:  # Python <= 3.10
            raise ExperimentError(
                "TOML specs need Python >= 3.11 (tomllib); use a JSON spec instead"
            ) from error
        try:
            payload = tomllib.loads(text)
        except tomllib.TOMLDecodeError as error:
            raise ExperimentError(f"invalid TOML in {path}: {error}") from error
    else:
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ExperimentError(f"invalid JSON in {path}: {error}") from error
    return CampaignSpec.from_dict(payload, base_dir=path.parent)


def _builtins() -> dict:
    paper_grid = dict(
        ncom_values=(5, 10, 20),
        wmin_values=tuple(range(1, 11)),
        num_processors_values=(20,),
        scenarios_per_cell=10,
        trials_per_scenario=10,
        iterations=10,
        makespan_cap=1_000_000,
    )
    return {
        # The full Section VII-A campaign: both tables' grids.
        "paper": CampaignSpec(
            name="paper", m_values=(5, 10), heuristics=ALL_HEURISTICS, **paper_grid
        ),
        "paper-table1": CampaignSpec(
            name="paper-table1", m_values=(5,), heuristics=ALL_HEURISTICS, **paper_grid
        ),
        "paper-table2": CampaignSpec(
            name="paper-table2", m_values=(10,), heuristics=TABLE2_HEURISTICS, **paper_grid
        ),
        # Laptop-scale counterpart of CampaignScale.reduced().
        "reduced": CampaignSpec(
            name="reduced",
            m_values=(5,),
            ncom_values=(5, 20),
            wmin_values=(1, 4, 7, 10),
            num_processors_values=(20,),
            heuristics=ALL_HEURISTICS,
            scenarios_per_cell=2,
            trials_per_scenario=2,
            iterations=10,
            makespan_cap=150_000,
        ),
        # Tiny end-to-end smoke grid (CI nightly, tests).
        "smoke": CampaignSpec(
            name="smoke",
            m_values=(4,),
            ncom_values=(5,),
            wmin_values=(1,),
            num_processors_values=(8,),
            heuristics=("IE", "RANDOM"),
            scenarios_per_cell=1,
            trials_per_scenario=2,
            iterations=3,
            makespan_cap=30_000,
        ),
    }


BUILTIN_SPEC_NAMES: Tuple[str, ...] = tuple(sorted(_builtins()))


def builtin_spec(name: str) -> CampaignSpec:
    """Look up a named built-in spec (``BUILTIN_SPEC_NAMES`` lists them)."""
    specs = _builtins()
    if name not in specs:
        raise ExperimentError(
            f"unknown built-in spec {name!r}; available: {list(BUILTIN_SPEC_NAMES)}"
        )
    return specs[name]
