"""JSON persistence for campaigns.

Campaigns can take a while; persisting the raw :class:`InstanceResult`
records lets tables/figures be rebuilt, re-sliced or compared across runs
without re-simulating.  The format is plain JSON so results can be inspected
or post-processed with any external tooling.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Union

from repro.exceptions import ExperimentError
from repro.experiments.runner import CampaignResult, InstanceResult
from repro.experiments.scenarios import CampaignScale

__all__ = ["save_campaign", "load_campaign", "save_results", "load_results"]

FORMAT_VERSION = 1

#: Raw result-list payloads (spec campaigns, where a single ``m`` /
#: :class:`CampaignScale` header does not apply).
RESULTS_FORMAT_VERSION = 1


def save_campaign(campaign: CampaignResult, path: Union[str, Path]) -> Path:
    """Write *campaign* to *path* as JSON and return the path."""
    path = Path(path)
    payload = {
        "format_version": FORMAT_VERSION,
        "label": campaign.label,
        "m": campaign.m,
        "heuristics": list(campaign.heuristics),
        "scale": {
            "ncom_values": list(campaign.scale.ncom_values),
            "wmin_values": list(campaign.scale.wmin_values),
            "scenarios_per_cell": campaign.scale.scenarios_per_cell,
            "trials_per_scenario": campaign.scale.trials_per_scenario,
            "iterations": campaign.scale.iterations,
            "makespan_cap": campaign.scale.makespan_cap,
            "num_processors": campaign.scale.num_processors,
        },
        "results": [result.as_dict() for result in campaign.results],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2))
    return path


def load_campaign(path: Union[str, Path]) -> CampaignResult:
    """Load a campaign previously written by :func:`save_campaign`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ExperimentError(f"cannot load campaign from {path}: {error}") from error
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ExperimentError(
            f"unsupported campaign format version {version!r} (expected {FORMAT_VERSION})"
        )
    scale_payload = payload["scale"]
    scale = CampaignScale(
        ncom_values=tuple(scale_payload["ncom_values"]),
        wmin_values=tuple(scale_payload["wmin_values"]),
        scenarios_per_cell=scale_payload["scenarios_per_cell"],
        trials_per_scenario=scale_payload["trials_per_scenario"],
        iterations=scale_payload["iterations"],
        makespan_cap=scale_payload["makespan_cap"],
        num_processors=scale_payload.get("num_processors", 20),
    )
    campaign = CampaignResult(
        label=payload["label"],
        m=payload["m"],
        heuristics=tuple(payload["heuristics"]),
        scale=scale,
    )
    campaign.extend(InstanceResult.from_dict(entry) for entry in payload["results"])
    return campaign


def save_results(
    results: Sequence[InstanceResult], path: Union[str, Path], *, label: str = "campaign"
) -> Path:
    """Write a raw list of instance results (spec campaigns) as JSON.

    Unlike :func:`save_campaign` this makes no single-``m`` assumption: the
    payload is just the labelled record list, suitable for multi-``m``
    spec-driven campaigns and for feeding external tooling.
    """
    path = Path(path)
    payload = {
        "format_version": RESULTS_FORMAT_VERSION,
        "kind": "results",
        "label": label,
        "results": [result.as_dict() for result in results],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2))
    return path


def load_results(path: Union[str, Path]) -> List[InstanceResult]:
    """Load a raw result list previously written by :func:`save_results`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ExperimentError(f"cannot load results from {path}: {error}") from error
    if payload.get("kind") != "results" or payload.get("format_version") != RESULTS_FORMAT_VERSION:
        raise ExperimentError(f"{path} is not a raw results payload")
    return [InstanceResult.from_dict(entry) for entry in payload["results"]]
