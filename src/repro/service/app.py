"""The campaign service: shared endpoint handlers plus a stdlib WSGI app.

The HTTP surface is implemented once, framework-neutrally, in
:class:`ServiceState` — every handler takes plain data and returns
``(status, payload, content_type)``.  Two adapters expose it:

- :func:`create_wsgi_app` — a pure-stdlib WSGI application (served by
  ``wsgiref`` via :func:`serve`).  This is what the in-repo tests exercise;
  it has zero dependencies beyond the Python standard library.
- :func:`repro.service.fastapi_app.create_app` — a thin FastAPI adapter over
  the same handlers, for deployments that want uvicorn/ASGI (install the
  ``service`` extra).  Both adapters serve the identical routes and the
  identical ``/openapi.json`` bytes.

Start a service from Python::

    from repro.service.app import ServiceConfig, serve
    serve(ServiceConfig(root="/var/lib/repro", port=8000, workers=4))

or from the CLI: ``repro serve --root /var/lib/repro --workers 4``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, Optional, Tuple, Union
from urllib.parse import parse_qs

from repro.exceptions import ExperimentError, ReproError
from repro.experiments.spec import (
    BUILTIN_SPEC_NAMES,
    CampaignSpec,
    builtin_spec,
)
from repro.experiments.store import ResultStore, store_status
from repro.service import openapi as openapi_module
from repro.service.jobs import JobQueue, WorkerPool
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    process_rss_bytes,
)
from repro.telemetry.tracer import shared_tracer
from repro.service.schemas import (
    CampaignAccepted,
    CampaignCells,
    CampaignList,
    CampaignStatus,
    CampaignSubmission,
    CampaignSummary,
    ErrorResponse,
    HealthResponse,
    HeuristicProgress,
    ServiceError,
    ServiceInfo,
    cell_record_from_store,
)

__all__ = [
    "ServiceConfig",
    "ServiceState",
    "create_wsgi_app",
    "route_template",
    "serve",
]

#: A handler's raw result: HTTP status, payload (dict => JSON), content type.
Response = Tuple[int, Union[dict, str], str]

MAX_CELL_PAGE = 1000

ENDPOINTS = {
    "GET /": "service name, version and this route map",
    "GET /healthz": "liveness probe with queue depth and stale-job detection",
    "GET /metrics": "Prometheus text exposition (queue, workers, requests, RSS)",
    "GET /openapi.json": "the OpenAPI schema (matches docs/openapi.json)",
    "GET /campaigns": "all submitted campaigns",
    "POST /campaigns": "submit a campaign spec (idempotent on content hash)",
    "GET /campaigns/{id}": "job status plus store-backed completion counters",
    "GET /campaigns/{id}/cells": "per-cell progress from the result store",
    "GET /campaigns/{id}/report": "the HTML dashboard over the job's store",
    "GET /campaigns/{id}/events": "live progress as Server-Sent Events",
}

#: Terminal job statuses: the SSE stream emits ``end`` and stops on these.
_TERMINAL_STATUSES = ("completed", "failed")


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``repro serve`` needs to stand up a service.

    Example::

        >>> config = ServiceConfig(root="/tmp/repro-service", workers=4)
        >>> config.port
        8000
    """

    #: Durable service root: ``jobs/``, ``stores/`` and ``logs/`` live here.
    root: Union[str, Path] = "service-root"
    host: str = "127.0.0.1"
    port: int = 8000
    #: Concurrent worker processes (one campaign job each).
    workers: int = 2
    #: Default result-store backend for submitted jobs.
    backend: str = "jsonl"
    #: Abnormal worker deaths per job before it is marked failed.
    max_attempts: int = 3
    #: Dispatcher poll interval in seconds.
    poll_interval: float = 0.2
    #: HTTP stack: ``auto`` (FastAPI if importable, else stdlib),
    #: ``fastapi`` or ``stdlib``.
    framework: str = "auto"
    #: Attach a span tracer: the queue/pool emit ``job.*`` lifecycle events
    #: and every worker traces its runs into ``<root>/telemetry/``.
    trace: bool = False


class ServiceState:
    """The framework-neutral service core: a job queue, a worker pool, handlers.

    Handlers return ``(status, payload, content_type)`` tuples; adapters
    (WSGI below, FastAPI in :mod:`repro.service.fastapi_app`) only translate
    between their framework's request/response types and these tuples, so
    behaviour cannot diverge between stacks.
    """

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.queue = JobQueue(config.root, backend=config.backend)
        trace_dir = Path(config.root) / "telemetry" if config.trace else None
        if trace_dir is not None:
            self.queue.tracer = shared_tracer(trace_dir)
        self.pool = WorkerPool(
            self.queue,
            workers=config.workers,
            poll_interval=config.poll_interval,
            max_attempts=config.max_attempts,
            trace_dir=trace_dir,
        )
        self.metrics = MetricsRegistry()
        self._requests_total = self.metrics.counter(
            "repro_http_requests_total",
            "HTTP requests handled, by method, route template and status.",
        )
        self._request_latency = self.metrics.histogram(
            "repro_http_request_duration_seconds",
            "HTTP request latency in seconds, by method and route template.",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self._sse_streams = self.metrics.gauge(
            "repro_sse_streams_active",
            "Server-Sent-Event progress streams currently open.",
        )
        self._sse_streams.set(0)
        self._queue_depth = self.metrics.gauge(
            "repro_job_queue_depth",
            "Jobs waiting to run (status queued).",
        )
        self._jobs_gauge = self.metrics.gauge(
            "repro_jobs",
            "Jobs known to the queue, by status.",
        )
        self._workers_gauge = self.metrics.gauge(
            "repro_workers_active",
            "Worker processes currently running a job.",
        )
        self._stale_gauge = self.metrics.gauge(
            "repro_jobs_stale",
            "Jobs marked running whose recorded worker pid is dead.",
        )
        self._rss_gauge = self.metrics.gauge(
            "process_resident_memory_bytes",
            "Resident-set size of the service process in bytes.",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Recover orphaned jobs and start the worker pool."""
        self.pool.start()

    def stop(self) -> None:
        """Stop the pool (live workers are terminated and re-queued on recover)."""
        self.pool.stop()

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def handle_info(self) -> Response:
        """``GET /``."""
        import repro

        payload = ServiceInfo(
            name="repro campaign service",
            version=repro.__version__,
            description=(
                "Submit campaign specs, share deduplicated runs, poll "
                "per-cell progress and fetch HTML reports."
            ),
            endpoints=dict(ENDPOINTS),
        )
        return 200, payload.as_dict(), "application/json"

    def handle_health(self) -> Response:
        """``GET /healthz``."""
        counts = self.queue.counts()
        stale = self.queue.stale_jobs()
        payload = HealthResponse(
            status="degraded" if stale else "ok",
            workers=self.pool.active_workers,
            jobs=counts,
            queue_depth=counts.get("queued", 0),
            stale_jobs=len(stale),
        )
        return 200, payload.as_dict(), "application/json"

    def handle_metrics(self) -> Response:
        """``GET /metrics`` — Prometheus text exposition format 0.0.4.

        Point-in-time gauges (queue depth, jobs by status, workers, RSS)
        are refreshed at scrape time; the request counter/histogram
        accumulate across the process lifetime.
        """
        counts = self.queue.counts()
        for status, count in counts.items():
            self._jobs_gauge.set(count, status=status)
        self._queue_depth.set(counts.get("queued", 0))
        self._workers_gauge.set(self.pool.active_workers)
        self._stale_gauge.set(len(self.queue.stale_jobs()))
        rss = process_rss_bytes()
        if rss is not None:
            self._rss_gauge.set(rss)
        return 200, self.metrics.render(), "text/plain; version=0.0.4; charset=utf-8"

    def observe_request(
        self, method: str, route: str, status: int, seconds: float
    ) -> None:
        """Record one handled request into the service metrics.

        *route* must be a route template (``/campaigns/{id}``), never a raw
        path — label cardinality stays bounded by the route table.
        """
        self._requests_total.inc(method=method, route=route, status=str(status))
        self._request_latency.observe(seconds, method=method, route=route)

    def handle_openapi(self) -> Response:
        """``GET /openapi.json`` (byte-identical to ``docs/openapi.json``)."""
        return 200, openapi_module.openapi_json_text(), "application/json"

    def handle_submit(self, body: bytes) -> Response:
        """``POST /campaigns``: validate, deduplicate, queue."""
        try:
            payload = json.loads(body.decode("utf-8") if body else "")
        except (ValueError, UnicodeDecodeError) as error:
            raise ServiceError(f"request body is not valid JSON: {error}", status=400)
        submission = CampaignSubmission.from_payload(payload)
        spec = self._resolve_spec(submission)
        options = submission.options()
        # collect_metrics/metrics_stride are volatile spec fields excluded
        # from the persisted spec snapshot (and from its identity hash), so
        # resolve them into the job options here or a TOML submission with
        # `collect_metrics = true` would silently lose it.
        if options["collect_metrics"] is None:
            options["collect_metrics"] = spec.collect_metrics
        if options["metrics_stride"] is None:
            options["metrics_stride"] = spec.metrics_stride
        job, deduplicated = self.queue.submit(spec, options=options)
        accepted = CampaignAccepted(
            id=job["id"],
            name=job["name"],
            status=job["status"],
            deduplicated=deduplicated,
            total_cells=job["total_cells"],
            location=f"/campaigns/{job['id']}",
            report=f"/campaigns/{job['id']}/report",
        )
        return (200 if deduplicated else 201), accepted.as_dict(), "application/json"

    def handle_list(self) -> Response:
        """``GET /campaigns``."""
        summaries = []
        for job in self.queue.jobs():
            completed, _, _ = self._store_progress(job)
            summaries.append(
                CampaignSummary(
                    id=job["id"],
                    name=job.get("name", ""),
                    status=job.get("status", "queued"),
                    completed_cells=completed,
                    total_cells=job.get("total_cells", 0),
                    submitted_at=job.get("submitted_at"),
                )
            )
        payload = CampaignList(count=len(summaries), campaigns=summaries)
        return 200, payload.as_dict(), "application/json"

    def handle_status(self, job_id: str) -> Response:
        """``GET /campaigns/{id}``."""
        job = self._job_or_404(job_id)
        completed, total, by_heuristic = self._store_progress(job)
        payload = CampaignStatus(
            id=job["id"],
            name=job.get("name", ""),
            status=job.get("status", "queued"),
            attempts=job.get("attempts", 0),
            total_cells=total,
            completed_cells=completed,
            remaining_cells=max(0, total - completed),
            by_heuristic=by_heuristic,
            error=job.get("error"),
            submitted_at=job.get("submitted_at"),
            started_at=job.get("started_at"),
            finished_at=job.get("finished_at"),
            backend=job.get("backend", self.config.backend),
            options=job.get("options", {}),
        )
        return 200, payload.as_dict(), "application/json"

    def handle_cells(self, job_id: str, query: Dict[str, str]) -> Response:
        """``GET /campaigns/{id}/cells`` (paginated, straight from the store)."""
        job = self._job_or_404(job_id)
        offset = self._int_query(query, "offset", 0, minimum=0)
        limit = self._int_query(query, "limit", 100, minimum=1, maximum=MAX_CELL_PAGE)
        records = []
        store = self._open_store(job)
        if store is not None:
            try:
                records = store.records()
            finally:
                store.close()
        page = records[offset : offset + limit]
        payload = CampaignCells(
            id=job["id"],
            total_cells=job.get("total_cells", 0),
            completed_cells=len(records),
            offset=offset,
            limit=limit,
            count=len(page),
            cells=[cell_record_from_store(record) for record in page],
        )
        return 200, payload.as_dict(), "application/json"

    def handle_report(self, job_id: str, query: Dict[str, str]) -> Response:
        """``GET /campaigns/{id}/report`` — the PR 7 HTML dashboard."""
        from repro.metrics.html import render_html_report

        job = self._job_or_404(job_id)
        gantt = self._int_query(query, "gantt", 0, minimum=0)
        store = self._open_store(job)
        if store is None:
            raise ServiceError(
                f"campaign {job_id} has no completed cells yet "
                f"(status {job.get('status', 'queued')!r})",
                status=409,
            )
        try:
            results = store.results()
            spec = store.spec
        finally:
            store.close()
        if not results:
            raise ServiceError(
                f"campaign {job_id} has no completed cells yet "
                f"(status {job.get('status', 'queued')!r})",
                status=409,
            )
        html = render_html_report(results, spec, gantt_runs=gantt)
        return 200, html, "text/html; charset=utf-8"

    def handle_events(self, job_id: str, query: Dict[str, str]) -> Response:
        """``GET /campaigns/{id}/events`` — live progress as Server-Sent Events.

        The payload is a *generator of SSE chunks* (strings), not a JSON
        document; both adapters stream it without buffering.  Protocol:

        - ``event: snapshot`` — current status/progress, sent immediately.
        - ``event: progress`` — sent whenever the completed-cell count or
          job status changes (polled every ``poll`` seconds, default 0.5).
        - ``: heartbeat`` comment lines after ``heartbeat`` idle seconds
          (default 15) so proxies do not drop the connection.
        - ``event: end`` — final state once the job reaches a terminal
          status (or vanishes); the stream then closes.

        ``limit`` (default 0 = unbounded) caps the number of *events*
        (snapshot/progress/end, not heartbeats) before the stream closes —
        mainly for tests and one-shot curl probes.
        """
        self._job_or_404(job_id)
        poll = self._float_query(query, "poll", 0.5, minimum=0.05, maximum=30.0)
        heartbeat = self._float_query(query, "heartbeat", 15.0, minimum=0.1, maximum=300.0)
        limit = self._int_query(query, "limit", 0, minimum=0)
        stream = self._event_stream(job_id, poll=poll, heartbeat=heartbeat, limit=limit)
        return 200, stream, "text/event-stream; charset=utf-8"

    def _event_stream(
        self, job_id: str, *, poll: float, heartbeat: float, limit: int
    ) -> Iterator[str]:
        """The SSE chunk generator behind :meth:`handle_events`."""

        def _format(event: str, event_id: int, data: dict) -> str:
            return (
                f"event: {event}\nid: {event_id}\n"
                f"data: {json.dumps(data, sort_keys=True)}\n\n"
            )

        def _progress_payload(job: dict) -> dict:
            completed, total, _ = self._store_progress(job)
            return {
                "id": job["id"],
                "status": job.get("status", "queued"),
                "completed_cells": completed,
                "total_cells": total,
                "attempts": job.get("attempts", 0),
            }

        self._sse_streams.inc()
        try:
            event_id = 0
            emitted = 0
            yield "retry: 2000\n\n"
            job = self.queue.job(job_id)
            last = _progress_payload(job) if job is not None else None
            if last is not None:
                yield _format("snapshot", event_id, last)
                emitted += 1
            last_activity = time.monotonic()
            while True:
                if job is None:
                    yield _format("end", event_id + 1, {"id": job_id, "status": "gone"})
                    return
                if job.get("status") in _TERMINAL_STATUSES:
                    event_id += 1
                    yield _format("end", event_id, _progress_payload(job))
                    return
                if limit and emitted >= limit:
                    return
                time.sleep(poll)
                job = self.queue.job(job_id)
                current = _progress_payload(job) if job is not None else None
                if current is not None and current != last:
                    if job.get("status") not in _TERMINAL_STATUSES:
                        event_id += 1
                        yield _format("progress", event_id, current)
                        emitted += 1
                    last = current
                    last_activity = time.monotonic()
                elif time.monotonic() - last_activity >= heartbeat:
                    yield ": heartbeat\n\n"
                    last_activity = time.monotonic()
        finally:
            self._sse_streams.dec()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve_spec(self, submission: CampaignSubmission) -> CampaignSpec:
        """Coerce the submission's spec source into a validated CampaignSpec."""
        if submission.builtin is not None:
            if submission.builtin not in BUILTIN_SPEC_NAMES:
                raise ServiceError(
                    f"unknown built-in spec {submission.builtin!r}; "
                    f"available: {list(BUILTIN_SPEC_NAMES)}"
                )
            return builtin_spec(submission.builtin)
        if submission.spec_toml is not None:
            import tomllib

            try:
                data = tomllib.loads(submission.spec_toml)
            except tomllib.TOMLDecodeError as error:
                raise ServiceError(f"spec_toml is not valid TOML: {error}")
            return self._spec_from_mapping(data)
        return self._spec_from_mapping(submission.spec)

    @staticmethod
    def _spec_from_mapping(data: dict) -> CampaignSpec:
        try:
            return CampaignSpec.from_dict(data)
        except TypeError as error:
            # Flat payloads with unknown keys surface as constructor errors.
            raise ServiceError(f"invalid campaign spec: {error}")

    def _job_or_404(self, job_id: str) -> dict:
        job = self.queue.job(job_id)
        if job is None:
            raise ServiceError(f"unknown campaign {job_id!r}", status=404)
        return job

    def _open_store(self, job: dict) -> Optional[ResultStore]:
        directory = self.queue.store_dir(job["id"])
        if not (directory / "manifest.json").exists():
            return None
        return ResultStore.open(directory)

    def _store_progress(self, job: dict):
        """``(completed, total, by_heuristic)`` from the job's store, if any."""
        total = job.get("total_cells", 0)
        store = self._open_store(job)
        if store is None:
            return 0, total, []
        try:
            status = store_status(store)
        finally:
            store.close()
        by_heuristic = [
            HeuristicProgress(heuristic=name, done=done, total=per_total)
            for name, done, per_total in status.by_heuristic
        ]
        return status.completed, status.total_cells, by_heuristic

    @staticmethod
    def _int_query(
        query: Dict[str, str],
        name: str,
        default: int,
        *,
        minimum: int,
        maximum: Optional[int] = None,
    ) -> int:
        raw = query.get(name)
        if raw is None:
            return default
        try:
            value = int(raw)
        except ValueError:
            raise ServiceError(f"query parameter {name!r} must be an integer, got {raw!r}")
        if value < minimum or (maximum is not None and value > maximum):
            bound = f">= {minimum}" + (f" and <= {maximum}" if maximum else "")
            raise ServiceError(f"query parameter {name!r} must be {bound}, got {value}")
        return value

    @staticmethod
    def _float_query(
        query: Dict[str, str],
        name: str,
        default: float,
        *,
        minimum: float,
        maximum: Optional[float] = None,
    ) -> float:
        raw = query.get(name)
        if raw is None:
            return default
        try:
            value = float(raw)
        except ValueError:
            raise ServiceError(f"query parameter {name!r} must be a number, got {raw!r}")
        if value < minimum or (maximum is not None and value > maximum):
            bound = f">= {minimum}" + (f" and <= {maximum}" if maximum else "")
            raise ServiceError(f"query parameter {name!r} must be {bound}, got {value}")
        return value


# ----------------------------------------------------------------------
# WSGI adapter (stdlib-only)
# ----------------------------------------------------------------------
_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
}


def _first_values(query_string: str) -> Dict[str, str]:
    return {key: values[0] for key, values in parse_qs(query_string).items()}


def route_template(path: str) -> str:
    """The bounded-cardinality route label for *path* (metrics only).

    Raw paths would make every campaign id a distinct Prometheus label
    value; the template collapses them onto the route table.
    """
    parts = [part for part in path.split("/") if part]
    if not parts:
        return "/"
    if parts[0] in ("healthz", "metrics", "openapi.json") and len(parts) == 1:
        return "/" + parts[0]
    if parts[0] == "campaigns":
        if len(parts) == 1:
            return "/campaigns"
        if len(parts) == 2:
            return "/campaigns/{id}"
        if len(parts) == 3 and parts[2] in ("cells", "report", "events"):
            return "/campaigns/{id}/" + parts[2]
    return "<unmatched>"


class _ObservedStream:
    """WSGI response iterable over a chunk generator (SSE streaming).

    Encodes each string chunk, and on ``close()`` — which WSGI servers call
    even when the client disconnects mid-stream — closes the underlying
    generator (running its cleanup) and fires the observation callback
    exactly once.
    """

    def __init__(self, chunks: Iterator[str], on_close: Callable[[], None]):
        self._chunks = chunks
        self._on_close = on_close
        self._closed = False

    def __iter__(self) -> Iterator[bytes]:
        for chunk in self._chunks:
            yield chunk.encode("utf-8")

    def close(self) -> None:
        """Close the chunk generator and record the request once."""
        if self._closed:
            return
        self._closed = True
        closer = getattr(self._chunks, "close", None)
        if closer is not None:
            closer()
        self._on_close()


def create_wsgi_app(state: ServiceState) -> Callable:
    """A WSGI application over *state* (same routes as the FastAPI adapter)."""

    def dispatch(method: str, path: str, query: Dict[str, str], body: bytes) -> Response:
        """Route one request to the matching ServiceState handler."""
        parts = [part for part in path.split("/") if part]
        if not parts:
            route: Tuple[str, ...] = ()
        else:
            route = tuple(parts)
        if route == ():
            if method == "GET":
                return state.handle_info()
        elif route == ("healthz",):
            if method == "GET":
                return state.handle_health()
        elif route == ("metrics",):
            if method == "GET":
                return state.handle_metrics()
        elif route == ("openapi.json",):
            if method == "GET":
                return state.handle_openapi()
        elif route == ("campaigns",):
            if method == "GET":
                return state.handle_list()
            if method == "POST":
                return state.handle_submit(body)
        elif len(route) == 2 and route[0] == "campaigns":
            if method == "GET":
                return state.handle_status(route[1])
        elif len(route) == 3 and route[0] == "campaigns" and route[2] == "cells":
            if method == "GET":
                return state.handle_cells(route[1], query)
        elif len(route) == 3 and route[0] == "campaigns" and route[2] == "report":
            if method == "GET":
                return state.handle_report(route[1], query)
        elif len(route) == 3 and route[0] == "campaigns" and route[2] == "events":
            if method == "GET":
                return state.handle_events(route[1], query)
        else:
            raise ServiceError(f"no such endpoint {path!r}", status=404)
        raise ServiceError(f"method {method} not allowed on {path!r}", status=405)

    def application(environ, start_response):
        """The WSGI callable: dispatch, serialise, map errors to JSON.

        Streaming payloads (the SSE generator) are passed through without a
        Content-Length and observed into the request metrics when the
        stream closes; everything else is a buffered single-chunk body.
        """
        method = environ.get("REQUEST_METHOD", "GET").upper()
        path = environ.get("PATH_INFO", "/") or "/"
        query = _first_values(environ.get("QUERY_STRING", ""))
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            length = 0
        body = environ["wsgi.input"].read(length) if length > 0 else b""
        begin = time.perf_counter()
        try:
            status, payload, content_type = dispatch(method, path, query, body)
        except ServiceError as error:
            status = error.status
            payload = ErrorResponse(error=str(error)).as_dict()
            content_type = "application/json"
        except ReproError as error:
            # Spec/validation failures carry the registry's message verbatim.
            status = 422
            payload = ErrorResponse(error=str(error)).as_dict()
            content_type = "application/json"
        except Exception as error:  # pragma: no cover - defensive
            status = 500
            payload = ErrorResponse(
                error=f"internal error: {type(error).__name__}: {error}"
            ).as_dict()
            content_type = "application/json"
        reason = _REASONS.get(status, "Unknown")
        route = route_template(path)
        if isinstance(payload, (dict, list)):
            raw = json.dumps(payload).encode("utf-8")
        elif isinstance(payload, str):
            raw = payload.encode("utf-8")
        else:
            # Streaming response: no Content-Length, latency covers the
            # whole stream lifetime (close() fires on client disconnect too).
            start_response(
                f"{status} {reason}",
                [("Content-Type", content_type), ("Cache-Control", "no-cache")],
            )
            final_status = status
            return _ObservedStream(
                payload,
                lambda: state.observe_request(
                    method, route, final_status, time.perf_counter() - begin
                ),
            )
        state.observe_request(method, route, status, time.perf_counter() - begin)
        start_response(
            f"{status} {reason}",
            [
                ("Content-Type", content_type),
                ("Content-Length", str(len(raw))),
            ],
        )
        return [raw]

    return application


def serve(config: ServiceConfig) -> int:
    """Run a service until interrupted; returns a process exit code.

    With ``framework="auto"`` the FastAPI/uvicorn stack is used when the
    ``service`` extra is installed, otherwise the stdlib WSGI server — the
    routes and payloads are identical either way.
    """
    framework = config.framework
    if framework not in ("auto", "fastapi", "stdlib"):
        raise ExperimentError(
            f"unknown framework {framework!r}: expected auto, fastapi or stdlib"
        )
    if framework in ("auto", "fastapi"):
        try:
            import fastapi  # noqa: F401
            import uvicorn  # noqa: F401
        except ImportError:
            if framework == "fastapi":
                raise ExperimentError(
                    "the FastAPI stack is not installed; "
                    "pip install 'repro[service]' or use --framework stdlib"
                )
            framework = "stdlib"
        else:
            framework = "fastapi"

    state = ServiceState(config)
    state.start()
    try:
        if framework == "fastapi":
            import uvicorn

            from repro.service.fastapi_app import create_app

            uvicorn.run(create_app(state), host=config.host, port=config.port)
            return 0
        return _serve_stdlib(state, config)
    finally:
        state.stop()


def _serve_stdlib(state: ServiceState, config: ServiceConfig) -> int:
    """Serve the WSGI app on wsgiref's threading server until Ctrl-C."""
    server = make_server(state, config.host, config.port)
    host, port = server.server_address[:2]
    print(f"repro campaign service listening on http://{host}:{port}")
    print(f"  root: {Path(config.root).resolve()}  workers: {config.workers}")
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.server_close()
    return 0


def make_server(state: ServiceState, host: str, port: int):
    """A threading WSGI server over *state* (also used by the live tests)."""
    from socketserver import ThreadingMixIn
    from wsgiref.simple_server import WSGIRequestHandler, WSGIServer

    class ThreadingWSGIServer(ThreadingMixIn, WSGIServer):
        """One thread per request so polls never block a long submit."""

        daemon_threads = True

    class QuietHandler(WSGIRequestHandler):
        """Request handler with per-request access logging silenced."""

        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            """Drop access-log lines (tests and CI keep stdout clean)."""

    from wsgiref.simple_server import make_server as wsgiref_make_server

    return wsgiref_make_server(
        host, port, create_wsgi_app(state),
        server_class=ThreadingWSGIServer, handler_class=QuietHandler,
    )
