"""FastAPI adapter over the framework-neutral service core.

This module is a *thin translation layer*: every route delegates to the same
:class:`~repro.service.app.ServiceState` handlers the stdlib WSGI app uses,
so the two stacks cannot drift apart.  FastAPI is optional — install the
``service`` extra (``pip install 'repro[service]'``) — and this module
imports it lazily, so merely importing :mod:`repro.service` never requires
it.

Deployment (see ``docs/service.md`` for the full guide)::

    repro serve --root /var/lib/repro --framework fastapi --workers 4

or hand uvicorn the app factory directly::

    uvicorn --factory repro.service.fastapi_app:create_default_app

The adapter serves ``/openapi.json`` itself with the deterministic document
from :mod:`repro.service.openapi` (byte-identical to ``docs/openapi.json``),
instead of FastAPI's generated one, so clients see one schema regardless of
the stack.
"""

from __future__ import annotations

import json
import os
import time
from typing import Optional

from repro.exceptions import ReproError
from repro.service.app import ServiceConfig, ServiceState, route_template
from repro.service.schemas import ServiceError

__all__ = ["create_app", "create_default_app"]


def create_app(state: ServiceState):
    """Build the FastAPI application over an already-started *state*.

    Raises ``ImportError`` when FastAPI is not installed.
    """
    from fastapi import FastAPI, Request, Response

    # The deterministic schema is served below; FastAPI's own generator and
    # docs UI are disabled so there is exactly one contract.
    app = FastAPI(title="repro campaign service", openapi_url=None, docs_url=None,
                  redoc_url=None)

    def respond(result) -> Response:
        """Translate a handler (status, payload, content-type) tuple."""
        status, payload, content_type = result
        body = payload if isinstance(payload, str) else json.dumps(payload)
        return Response(content=body, status_code=status, media_type=content_type)

    @app.middleware("http")
    async def observe_requests(request: Request, call_next):
        """Record every request into the shared service metrics registry."""
        begin = time.perf_counter()
        response = await call_next(request)
        state.observe_request(
            request.method,
            route_template(request.url.path),
            response.status_code,
            time.perf_counter() - begin,
        )
        return response

    @app.exception_handler(ServiceError)
    async def service_error(request: Request, error: ServiceError) -> Response:
        """Map ServiceError to its carried HTTP status as JSON."""
        return Response(
            content=json.dumps({"error": str(error)}),
            status_code=error.status,
            media_type="application/json",
        )

    @app.exception_handler(ReproError)
    async def repro_error(request: Request, error: ReproError) -> Response:
        """Map domain validation errors to 422 with the registry message."""
        return Response(
            content=json.dumps({"error": str(error)}),
            status_code=422,
            media_type="application/json",
        )

    @app.get("/")
    async def service_info() -> Response:
        """Serve GET /: service name, version, endpoint map."""
        return respond(state.handle_info())

    @app.get("/healthz")
    async def health() -> Response:
        """Serve GET /healthz: liveness plus queue counters."""
        return respond(state.handle_health())

    @app.get("/metrics")
    async def metrics() -> Response:
        """Serve GET /metrics: Prometheus text exposition."""
        return respond(state.handle_metrics())

    @app.get("/openapi.json")
    async def openapi_schema() -> Response:
        """Serve GET /openapi.json: the committed deterministic schema."""
        return respond(state.handle_openapi())

    @app.get("/campaigns")
    async def list_campaigns() -> Response:
        """Serve GET /campaigns: summaries of every known job."""
        return respond(state.handle_list())

    @app.post("/campaigns")
    async def submit_campaign(request: Request) -> Response:
        """Serve POST /campaigns: validate, dedup by spec hash, enqueue."""
        body = await request.body()
        return respond(state.handle_submit(body))

    @app.get("/campaigns/{campaign_id}")
    async def campaign_status(campaign_id: str) -> Response:
        """Serve GET /campaigns/{id}: status and per-heuristic progress."""
        return respond(state.handle_status(campaign_id))

    @app.get("/campaigns/{campaign_id}/cells")
    async def campaign_cells(
        campaign_id: str, offset: Optional[str] = None, limit: Optional[str] = None
    ) -> Response:
        """Serve GET /campaigns/{id}/cells: paginated per-cell records."""
        query = {}
        if offset is not None:
            query["offset"] = offset
        if limit is not None:
            query["limit"] = limit
        return respond(state.handle_cells(campaign_id, query))

    @app.get("/campaigns/{campaign_id}/report")
    async def campaign_report(campaign_id: str, gantt: Optional[str] = None) -> Response:
        """Serve GET /campaigns/{id}/report: the HTML dashboard."""
        query = {"gantt": gantt} if gantt is not None else {}
        return respond(state.handle_report(campaign_id, query))

    @app.get("/campaigns/{campaign_id}/events")
    async def campaign_events(
        campaign_id: str,
        poll: Optional[str] = None,
        heartbeat: Optional[str] = None,
        limit: Optional[str] = None,
    ) -> Response:
        """Serve GET /campaigns/{id}/events: the SSE progress stream."""
        from fastapi.responses import StreamingResponse

        query = {}
        if poll is not None:
            query["poll"] = poll
        if heartbeat is not None:
            query["heartbeat"] = heartbeat
        if limit is not None:
            query["limit"] = limit
        status, stream, content_type = state.handle_events(campaign_id, query)
        return StreamingResponse(
            stream,
            status_code=status,
            media_type=content_type,
            headers={"Cache-Control": "no-cache"},
        )

    @app.on_event("shutdown")
    async def shutdown() -> None:
        """Stop the worker pool when the ASGI server shuts down."""
        state.stop()

    return app


def create_default_app():
    """App factory for ``uvicorn --factory``; configured via environment.

    Reads ``REPRO_SERVICE_ROOT`` (default ``service-root``),
    ``REPRO_SERVICE_WORKERS`` (default 2), ``REPRO_SERVICE_BACKEND``
    (default ``jsonl``) and ``REPRO_SERVICE_TRACE`` (``1`` enables span
    tracing into ``<root>/telemetry``), then starts the worker pool and
    returns the app.
    """
    config = ServiceConfig(
        root=os.environ.get("REPRO_SERVICE_ROOT", "service-root"),
        workers=int(os.environ.get("REPRO_SERVICE_WORKERS", "2")),
        backend=os.environ.get("REPRO_SERVICE_BACKEND", "jsonl"),
        trace=os.environ.get("REPRO_SERVICE_TRACE", "") in ("1", "true", "yes"),
    )
    state = ServiceState(config)
    state.start()
    return create_app(state)
