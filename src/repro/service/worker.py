"""Worker process: ``python -m repro.service.worker <job.json>``.

One invocation executes (or resumes) one job: it rebuilds the
:class:`~repro.experiments.spec.CampaignSpec` from the job document, opens
the job's :class:`~repro.experiments.store.ResultStore` and calls
:func:`~repro.experiments.runner.run_campaign_spec` — exactly the code path
of ``repro campaign --spec ... --store ...``.  All durability guarantees are
therefore the campaign runner's: cells append to the store as they finish,
completed cells are skipped on re-invocation, and a killed worker resumes to
byte-identical results (wall-clock measurements aside).

The worker communicates through the job file alone: it marks the job
``running`` (with its pid) on entry and ``completed`` / ``failed`` on exit.
If it dies without reaching a terminal status, the pool re-queues the job
(:class:`~repro.service.jobs.WorkerPool`), or — after a full service restart
— :meth:`~repro.service.jobs.JobQueue.recover` does, because the recorded
pid no longer exists.

The ``max_cells`` option makes the worker *stop early* after that many newly
run cells and hand the job back as ``queued``: a deterministic stand-in for
an interrupted worker, used by the service tests and useful for draining a
service gracefully.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

__all__ = ["main", "run_job"]


def run_job(job_path: Path) -> int:
    """Execute one job file; returns the process exit code."""
    from repro.exceptions import ReproError
    from repro.experiments.runner import run_campaign_spec
    from repro.experiments.spec import CampaignSpec
    from repro.experiments.store import ResultStore, store_status
    from repro.service.jobs import JobQueue
    from repro.telemetry import shared_tracer

    job = json.loads(job_path.read_text())
    root = job_path.parent.parent
    queue = JobQueue(root, backend=job.get("backend", "jsonl"))
    job_id = job["id"]
    queue.update(job_id, status="running", pid=os.getpid(), started_at=time.time())
    options = job.get("options", {})
    trace_dir = os.environ.get("REPRO_TRACE_DIR")
    tracer = shared_tracer(trace_dir) if trace_dir else None
    try:
        base_dir = job.get("base_dir")
        spec = CampaignSpec.from_dict(
            job["spec"], base_dir=Path(base_dir) if base_dir else None
        )
        store = ResultStore.create(
            queue.store_dir(job_id), spec, backend=job.get("backend")
        )
        try:
            start_ns = time.perf_counter_ns()
            run_campaign_spec(
                spec,
                store=store,
                n_jobs=int(options.get("n_jobs") or 1),
                max_cells=options.get("max_cells"),
                sampler=options.get("sampler") or "kernel",
                collect_metrics=options.get("collect_metrics"),
                metrics_stride=options.get("metrics_stride"),
                trace_dir=trace_dir,
            )
            remaining = store_status(store).remaining
            if tracer is not None:
                tracer.record(
                    "job.run", start_ns, job=job_id, campaign=job.get("name"),
                    remaining=remaining,
                )
        finally:
            store.close()
            if tracer is not None:
                # Shared per-process tracer: flush, never close (the runner
                # holds the same handle).  The process exits right after.
                tracer.flush()
    except ReproError as error:
        queue.update(
            job_id, status="failed", pid=None, finished_at=time.time(), error=str(error)
        )
        return 1
    if remaining > 0:
        # Cooperative yield (max_cells): progress is in the store; the pool
        # re-dispatches until the campaign is complete.
        queue.update(job_id, status="queued", pid=None)
        return 0
    queue.update(job_id, status="completed", pid=None, finished_at=time.time(), error=None)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line entry point (one positional argument: the job file)."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if len(arguments) != 1:
        print("usage: python -m repro.service.worker <job.json>", file=sys.stderr)
        return 2
    return run_job(Path(arguments[0]))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
