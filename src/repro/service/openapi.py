"""OpenAPI 3 document for the campaign service, generated from the schemas.

The document is built deterministically from the dataclasses in
:mod:`repro.service.schemas` — component schemas are derived from the typed
fields, so code and contract cannot drift apart — and the exact JSON text is
committed as ``docs/openapi.json``.  Both the stdlib WSGI app and the
FastAPI adapter serve these same bytes at ``GET /openapi.json``, and
``tests/service/test_openapi.py`` asserts the committed copy matches the
live app (regenerate with ``python -m repro.service.openapi --output
docs/openapi.json`` after a schema change).
"""

from __future__ import annotations

import argparse
import json
import sys
import typing
from dataclasses import MISSING, fields, is_dataclass
from pathlib import Path
from typing import Optional, Sequence

import repro
from repro.service import schemas

__all__ = ["openapi_document", "openapi_json_text", "main"]

OPENAPI_VERSION = "3.0.3"

#: The dataclasses exported as OpenAPI component schemas, in document order.
SCHEMA_CLASSES = (
    schemas.CampaignSubmission,
    schemas.CampaignAccepted,
    schemas.CampaignStatus,
    schemas.HeuristicProgress,
    schemas.CampaignSummary,
    schemas.CampaignList,
    schemas.CellRecord,
    schemas.CampaignCells,
    schemas.ServiceInfo,
    schemas.HealthResponse,
    schemas.ErrorResponse,
)


def _type_schema(annotation) -> dict:
    """Map one typing annotation to an OpenAPI schema fragment."""
    origin = typing.get_origin(annotation)
    arguments = typing.get_args(annotation)
    if origin is typing.Union:
        non_none = [arg for arg in arguments if arg is not type(None)]
        if len(non_none) == 1 and type(None) in arguments:
            inner = _type_schema(non_none[0])
            return {**inner, "nullable": True}
        raise TypeError(f"unsupported union {annotation!r} in a service schema")
    if origin in (list, typing.List):
        return {"type": "array", "items": _type_schema(arguments[0])}
    if origin in (dict, typing.Dict):
        value_schema = (
            _type_schema(arguments[1]) if arguments else {"type": "object"}
        )
        return {"type": "object", "additionalProperties": value_schema}
    if is_dataclass(annotation):
        return {"$ref": f"#/components/schemas/{annotation.__name__}"}
    scalars = {
        int: {"type": "integer"},
        float: {"type": "number"},
        str: {"type": "string"},
        bool: {"type": "boolean"},
        dict: {"type": "object"},
    }
    if annotation in scalars:
        return dict(scalars[annotation])
    raise TypeError(f"unsupported annotation {annotation!r} in a service schema")


def _component_schema(cls) -> dict:
    """The OpenAPI object schema of one schema dataclass."""
    hints = typing.get_type_hints(cls)
    properties = {}
    required = []
    for schema_field in fields(cls):
        properties[schema_field.name] = _type_schema(hints[schema_field.name])
        if (
            schema_field.default is MISSING
            and schema_field.default_factory is MISSING
        ):
            required.append(schema_field.name)
    schema: dict = {"type": "object", "properties": properties}
    if required:
        schema["required"] = required
    description = (cls.__doc__ or "").strip().splitlines()
    if description:
        schema["description"] = description[0]
    return schema


def _ref(name: str) -> dict:
    return {"$ref": f"#/components/schemas/{name}"}


def _json_response(description: str, schema_name: str) -> dict:
    return {
        "description": description,
        "content": {"application/json": {"schema": _ref(schema_name)}},
    }


def _paths() -> dict:
    """The route map (kept in lockstep with the WSGI and FastAPI apps)."""
    campaign_id = {
        "name": "campaign_id",
        "in": "path",
        "required": True,
        "schema": {"type": "string"},
        "description": "The campaign job id (the spec's content hash).",
    }
    return {
        "/": {
            "get": {
                "operationId": "service_info",
                "summary": "Service name, version and route map.",
                "responses": {"200": _json_response("Service description.", "ServiceInfo")},
            }
        },
        "/healthz": {
            "get": {
                "operationId": "health",
                "summary": "Liveness probe with queue depth and stale-job detection.",
                "description": (
                    "`status` is `degraded` (still 200) when any job is marked "
                    "running but its recorded worker pid is dead; the pool's "
                    "reaper re-queues such jobs on its next tick."
                ),
                "responses": {"200": _json_response("Service is up.", "HealthResponse")},
            }
        },
        "/metrics": {
            "get": {
                "operationId": "metrics",
                "summary": "Prometheus text exposition (format 0.0.4).",
                "description": (
                    "Queue depth, jobs by status, active workers, stale jobs, "
                    "process RSS, plus request counters and latency histograms "
                    "labelled by method and route template."
                ),
                "responses": {
                    "200": {
                        "description": "The metrics exposition.",
                        "content": {"text/plain": {"schema": {"type": "string"}}},
                    }
                },
            }
        },
        "/openapi.json": {
            "get": {
                "operationId": "openapi_schema",
                "summary": "This document (byte-identical to docs/openapi.json).",
                "responses": {
                    "200": {
                        "description": "The OpenAPI document.",
                        "content": {"application/json": {"schema": {"type": "object"}}},
                    }
                },
            }
        },
        "/campaigns": {
            "get": {
                "operationId": "list_campaigns",
                "summary": "All submitted campaigns, oldest first.",
                "responses": {"200": _json_response("Campaign summaries.", "CampaignList")},
            },
            "post": {
                "operationId": "submit_campaign",
                "summary": "Submit a campaign spec (idempotent on its content hash).",
                "description": (
                    "Exactly one of `spec`, `builtin` or `spec_toml` names the "
                    "campaign. Identical specs deduplicate onto one shared job "
                    "and one shared result store, whatever the submission "
                    "concurrency; the response says whether this submission "
                    "created the job (201) or attached to it (200)."
                ),
                "requestBody": {
                    "required": True,
                    "content": {
                        "application/json": {"schema": _ref("CampaignSubmission")}
                    },
                },
                "responses": {
                    "201": _json_response("Campaign created and queued.", "CampaignAccepted"),
                    "200": _json_response(
                        "Identical campaign already submitted; attached to it.",
                        "CampaignAccepted",
                    ),
                    "400": _json_response("Malformed JSON body.", "ErrorResponse"),
                    "422": _json_response(
                        "Invalid submission or campaign spec (the message is the "
                        "component registry's validation error).",
                        "ErrorResponse",
                    ),
                },
            },
        },
        "/campaigns/{campaign_id}": {
            "get": {
                "operationId": "campaign_status",
                "summary": "Job status plus store-backed completion counters.",
                "parameters": [campaign_id],
                "responses": {
                    "200": _json_response("Campaign status.", "CampaignStatus"),
                    "404": _json_response("Unknown campaign id.", "ErrorResponse"),
                },
            }
        },
        "/campaigns/{campaign_id}/cells": {
            "get": {
                "operationId": "campaign_cells",
                "summary": "Per-cell progress, straight from the result store.",
                "parameters": [
                    campaign_id,
                    {
                        "name": "offset",
                        "in": "query",
                        "required": False,
                        "schema": {"type": "integer", "default": 0},
                    },
                    {
                        "name": "limit",
                        "in": "query",
                        "required": False,
                        "schema": {"type": "integer", "default": 100, "maximum": 1000},
                    },
                ],
                "responses": {
                    "200": _json_response("Completed cells (paginated).", "CampaignCells"),
                    "404": _json_response("Unknown campaign id.", "ErrorResponse"),
                    "422": _json_response("Invalid pagination parameters.", "ErrorResponse"),
                },
            }
        },
        "/campaigns/{campaign_id}/report": {
            "get": {
                "operationId": "campaign_report",
                "summary": "The self-contained HTML dashboard over the job's store.",
                "parameters": [
                    campaign_id,
                    {
                        "name": "gantt",
                        "in": "query",
                        "required": False,
                        "schema": {"type": "integer", "default": 0},
                        "description": (
                            "Stored runs to re-simulate for the Gantt drill-down "
                            "(0 disables; re-simulation is CPU work per request)."
                        ),
                    },
                ],
                "responses": {
                    "200": {
                        "description": "The dashboard.",
                        "content": {"text/html": {"schema": {"type": "string"}}},
                    },
                    "404": _json_response("Unknown campaign id.", "ErrorResponse"),
                    "409": _json_response(
                        "The campaign has no completed cells yet.", "ErrorResponse"
                    ),
                },
            }
        },
        "/campaigns/{campaign_id}/events": {
            "get": {
                "operationId": "campaign_events",
                "summary": "Live campaign progress as Server-Sent Events.",
                "description": (
                    "Emits an immediate `snapshot` event, a `progress` event "
                    "whenever the completed-cell count or job status changes, "
                    "`: heartbeat` comments while idle, and a final `end` "
                    "event once the job reaches a terminal status. Event "
                    "`data` is the JSON progress payload (id, status, "
                    "completed_cells, total_cells, attempts)."
                ),
                "parameters": [
                    campaign_id,
                    {
                        "name": "poll",
                        "in": "query",
                        "required": False,
                        "schema": {"type": "number", "default": 0.5},
                        "description": "Store/job poll interval in seconds.",
                    },
                    {
                        "name": "heartbeat",
                        "in": "query",
                        "required": False,
                        "schema": {"type": "number", "default": 15.0},
                        "description": "Idle seconds between heartbeat comments.",
                    },
                    {
                        "name": "limit",
                        "in": "query",
                        "required": False,
                        "schema": {"type": "integer", "default": 0},
                        "description": (
                            "Close the stream after this many events "
                            "(0 = unbounded; heartbeats do not count)."
                        ),
                    },
                ],
                "responses": {
                    "200": {
                        "description": "The event stream.",
                        "content": {"text/event-stream": {"schema": {"type": "string"}}},
                    },
                    "404": _json_response("Unknown campaign id.", "ErrorResponse"),
                },
            }
        },
    }


def openapi_document() -> dict:
    """The complete OpenAPI document as plain data (deterministic)."""
    return {
        "openapi": OPENAPI_VERSION,
        "info": {
            "title": "repro campaign service",
            "version": repro.__version__,
            "description": (
                "Simulation-as-a-service over the repro campaign subsystem: "
                "submit declarative campaign specs, share cache-backed runs "
                "via content-hash deduplication, poll per-cell progress, and "
                "fetch the HTML dashboard."
            ),
        },
        "paths": _paths(),
        "components": {
            "schemas": {cls.__name__: _component_schema(cls) for cls in SCHEMA_CLASSES}
        },
    }


def openapi_json_text() -> str:
    """The exact JSON text served at ``/openapi.json`` and committed to docs."""
    return json.dumps(openapi_document(), indent=2, sort_keys=True) + "\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Write or check the committed schema copy (``--output`` / ``--check``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.openapi",
        description="Generate or verify the committed OpenAPI document.",
    )
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--output", default=None, help="write the document to this path")
    group.add_argument(
        "--check", default=None, metavar="PATH",
        help="fail (exit 1) unless PATH matches the generated document",
    )
    arguments = parser.parse_args(argv)
    text = openapi_json_text()
    if arguments.output:
        Path(arguments.output).write_text(text)
        print(f"OpenAPI document written to {arguments.output}")
        return 0
    committed = Path(arguments.check).read_text()
    if committed != text:
        print(
            f"{arguments.check} is out of date; regenerate with "
            "python -m repro.service.openapi --output docs/openapi.json",
            file=sys.stderr,
        )
        return 1
    print(f"{arguments.check} matches the live schema")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
