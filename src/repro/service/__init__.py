"""Simulation-as-a-service: an HTTP API + durable job queue over campaigns.

``repro.service`` turns the campaign subsystem into a shared, cache-backed
service.  Clients ``POST /campaigns`` a spec (inline mapping, TOML text, or
a built-in name); the service validates it through the same registry/grammar
as ``repro campaign``, persists a job keyed by the spec's content hash, and
a process-based worker pool drains the queue into ordinary
:class:`~repro.experiments.store.ResultStore` directories.  Identical specs
— submitted concurrently or days apart — deduplicate onto one shared run;
progress, per-cell results and the HTML dashboard are read straight from the
store.  Durability is the campaign runner's resume contract: kill any worker
(or the whole service) and the next dispatch resumes from the store to
byte-identical results.

Quick start (no extra dependencies; the stdlib stack is always available)::

    $ repro serve --root /tmp/repro-service --port 8000 &
    $ curl -s -X POST localhost:8000/campaigns \\
          -d '{"builtin": "smoke"}' | python -m json.tool

With the ``service`` extra installed (``pip install 'repro[service]'``) the
same command serves the identical routes through FastAPI/uvicorn.  See
``docs/service.md`` for the deployment guide and a full curl walkthrough.
"""

from repro.service.app import ServiceConfig, ServiceState, create_wsgi_app, serve
from repro.service.jobs import JOB_STATUSES, JobQueue, WorkerPool
from repro.service.schemas import (
    CampaignAccepted,
    CampaignCells,
    CampaignList,
    CampaignStatus,
    CampaignSubmission,
    CampaignSummary,
    CellRecord,
    ErrorResponse,
    HealthResponse,
    HeuristicProgress,
    ServiceError,
    ServiceInfo,
)

__all__ = [
    "ServiceConfig",
    "ServiceState",
    "create_wsgi_app",
    "serve",
    "JOB_STATUSES",
    "JobQueue",
    "WorkerPool",
    "ServiceError",
    "CampaignSubmission",
    "CampaignAccepted",
    "CampaignStatus",
    "HeuristicProgress",
    "CampaignSummary",
    "CampaignList",
    "CellRecord",
    "CampaignCells",
    "ServiceInfo",
    "HealthResponse",
    "ErrorResponse",
]
