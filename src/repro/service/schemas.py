"""Typed request/response schemas of the campaign service.

Every payload the HTTP API accepts or returns corresponds to exactly one
dataclass here; the OpenAPI component schemas (:mod:`repro.service.openapi`,
committed as ``docs/openapi.json``) are generated from these classes, and
the service surface test pins their field names — adding a field is a
deliberate, reviewable API change, exactly like ``tests/test_api_surface.py``
for the library facade.

Example round trip::

    >>> from repro.service.schemas import CampaignAccepted
    >>> accepted = CampaignAccepted(id="abc", name="smoke", status="queued",
    ...                             deduplicated=False, total_cells=4,
    ...                             location="/campaigns/abc",
    ...                             report="/campaigns/abc/report")
    >>> accepted.as_dict()["deduplicated"]
    False
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Dict, List, Optional

from repro.exceptions import ReproError

__all__ = [
    "ServiceError",
    "CampaignSubmission",
    "CampaignAccepted",
    "CampaignStatus",
    "HeuristicProgress",
    "CampaignSummary",
    "CampaignList",
    "CellRecord",
    "CampaignCells",
    "ServiceInfo",
    "HealthResponse",
    "ErrorResponse",
]


class ServiceError(ReproError):
    """A request the service must reject (carries the HTTP status to use)."""

    def __init__(self, message: str, status: int = 422):
        super().__init__(message)
        self.status = int(status)


class _Schema:
    """Shared ``as_dict`` for all schema dataclasses (JSON-ready payloads)."""

    def as_dict(self) -> dict:
        """The payload as plain JSON-compatible data."""
        return asdict(self)


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignSubmission(_Schema):
    """Body of ``POST /campaigns``.

    Exactly one of *spec* (an inline campaign-spec mapping, the same shape
    as a TOML/JSON spec file), *builtin* (a named built-in like ``"smoke"``)
    or *spec_toml* (TOML text) names the campaign.  The remaining fields are
    runtime options — none of them enter the campaign's identity, so two
    submissions differing only in options deduplicate onto one job.

    Example::

        >>> submission = CampaignSubmission.from_payload({"builtin": "smoke"})
        >>> submission.builtin
        'smoke'
    """

    spec: Optional[dict] = None
    builtin: Optional[str] = None
    spec_toml: Optional[str] = None
    #: Engine availability driver (``kernel``/``block``/``perslot``).
    sampler: str = "kernel"
    #: Attach the per-slot metrics collector (``None`` = the spec's setting).
    collect_metrics: Optional[bool] = None
    metrics_stride: Optional[int] = None
    #: Worker processes the job's worker fans scenarios out over.
    n_jobs: int = 1
    #: Stop the worker after this many newly run cells (the job re-queues
    #: until complete) — a deterministic interrupted-worker stand-in.
    max_cells: Optional[int] = None

    @classmethod
    def from_payload(cls, payload: dict) -> "CampaignSubmission":
        """Parse and validate a request body (unknown keys are rejected)."""
        if not isinstance(payload, dict):
            raise ServiceError("request body must be a JSON object")
        known = {schema_field.name for schema_field in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ServiceError(
                f"unknown submission fields {unknown}; expected a subset of {sorted(known)}"
            )
        submission = cls(**payload)
        sources = [
            name
            for name in ("spec", "builtin", "spec_toml")
            if getattr(submission, name) is not None
        ]
        if len(sources) != 1:
            raise ServiceError(
                "exactly one of 'spec', 'builtin' or 'spec_toml' must be provided"
                + (f" (got {sources})" if sources else "")
            )
        if submission.spec is not None and not isinstance(submission.spec, dict):
            raise ServiceError("'spec' must be a JSON object (a campaign spec mapping)")
        for name in ("builtin", "spec_toml"):
            value = getattr(submission, name)
            if value is not None and not isinstance(value, str):
                raise ServiceError(f"'{name}' must be a string")
        if int(submission.n_jobs) < 1:
            raise ServiceError(f"n_jobs must be >= 1, got {submission.n_jobs}")
        if submission.max_cells is not None and int(submission.max_cells) < 1:
            raise ServiceError(f"max_cells must be >= 1, got {submission.max_cells}")
        if submission.metrics_stride is not None and int(submission.metrics_stride) < 1:
            raise ServiceError(
                f"metrics_stride must be >= 1, got {submission.metrics_stride}"
            )
        return submission

    def options(self) -> dict:
        """The runtime options to persist in the job document."""
        return {
            "sampler": self.sampler,
            "collect_metrics": self.collect_metrics,
            "metrics_stride": self.metrics_stride,
            "n_jobs": int(self.n_jobs),
            "max_cells": self.max_cells,
        }


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignAccepted(_Schema):
    """Response of ``POST /campaigns`` (201 created, 200 deduplicated)."""

    id: str
    name: str
    status: str
    #: ``True`` when an identical spec was already submitted: the client
    #: attached to the existing shared job instead of creating a new one.
    deduplicated: bool
    total_cells: int
    location: str
    report: str


@dataclass(frozen=True)
class HeuristicProgress(_Schema):
    """Per-heuristic completion slice inside :class:`CampaignStatus`."""

    heuristic: str
    done: int
    total: int


@dataclass(frozen=True)
class CampaignStatus(_Schema):
    """Response of ``GET /campaigns/{id}``."""

    id: str
    name: str
    status: str
    attempts: int
    total_cells: int
    completed_cells: int
    remaining_cells: int
    by_heuristic: List[HeuristicProgress]
    error: Optional[str]
    submitted_at: Optional[float]
    started_at: Optional[float]
    finished_at: Optional[float]
    backend: str
    options: dict


@dataclass(frozen=True)
class CampaignSummary(_Schema):
    """One row of ``GET /campaigns``."""

    id: str
    name: str
    status: str
    completed_cells: int
    total_cells: int
    submitted_at: Optional[float]


@dataclass(frozen=True)
class CampaignList(_Schema):
    """Response of ``GET /campaigns``."""

    count: int
    campaigns: List[CampaignSummary]


@dataclass(frozen=True)
class CellRecord(_Schema):
    """One completed campaign cell, as stored (scalar fields only)."""

    cell: int
    heuristic: str
    m: int
    ncom: int
    wmin: int
    num_processors: int
    scenario_index: int
    trial_index: int
    success: bool
    makespan: Optional[int]
    completed_iterations: int
    total_restarts: int
    total_configuration_changes: int
    wall_time_seconds: float
    #: Whether the stored record carries per-slot metric series (the series
    #: themselves are served by the HTML report, not this listing).
    has_metrics: bool


@dataclass(frozen=True)
class CampaignCells(_Schema):
    """Response of ``GET /campaigns/{id}/cells`` (paginated cell progress)."""

    id: str
    total_cells: int
    completed_cells: int
    offset: int
    limit: int
    count: int
    cells: List[CellRecord]


@dataclass(frozen=True)
class ServiceInfo(_Schema):
    """Response of ``GET /`` — name, version and the route map."""

    name: str
    version: str
    description: str
    endpoints: Dict[str, str]


@dataclass(frozen=True)
class HealthResponse(_Schema):
    """Response of ``GET /healthz``.

    *queue_depth* counts jobs waiting to run (queued + requeued); *stale_jobs*
    counts jobs marked ``running`` whose recorded worker pid is no longer
    alive — when any exist the overall *status* degrades from ``"ok"`` to
    ``"degraded"`` (the pool's reaper will requeue them on its next tick).
    """

    status: str
    workers: int
    jobs: Dict[str, int]
    queue_depth: int
    stale_jobs: int


@dataclass(frozen=True)
class ErrorResponse(_Schema):
    """Every non-2xx JSON response: one human-readable error message."""

    error: str


def cell_record_from_store(record: dict) -> CellRecord:
    """Build a :class:`CellRecord` from one raw store record."""
    return CellRecord(
        cell=int(record["cell"]),
        heuristic=record["heuristic"],
        m=int(record["m"]),
        ncom=int(record["ncom"]),
        wmin=int(record["wmin"]),
        num_processors=int(record.get("num_processors", 20)),
        scenario_index=int(record["scenario_index"]),
        trial_index=int(record["trial_index"]),
        success=bool(record["success"]),
        makespan=record.get("makespan"),
        completed_iterations=int(record["completed_iterations"]),
        total_restarts=int(record["total_restarts"]),
        total_configuration_changes=int(record["total_configuration_changes"]),
        wall_time_seconds=float(record.get("wall_time_seconds", 0.0)),
        has_metrics="metrics" in record,
    )
