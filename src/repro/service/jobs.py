"""Durable campaign jobs: the queue behind ``POST /campaigns``.

A *job* is one submitted campaign.  Its identity is the campaign spec's
content hash (:meth:`~repro.experiments.spec.CampaignSpec.spec_hash`), which
is what makes submission idempotent: any number of clients POSTing the same
spec — concurrently or days apart — attach to the same job and therefore to
the same result store.  Everything is persisted as plain files next to the
stores, so a restarted service resumes exactly like ``repro campaign`` does:

.. code-block:: text

    <root>/
      jobs/<id>.json     one JSON document per job (status, options, spec)
      stores/<id>/       the job's ResultStore (manifest + results.jsonl)
      logs/<id>.log      combined stdout/stderr of the job's worker runs

Job files are written atomically (write-to-temp + ``os.link``/``os.replace``),
so concurrent submitters race safely: exactly one creates the job, everyone
else reads the existing document.  Workers are separate processes
(:mod:`repro.service.worker`); a killed worker loses at most the cell in
flight, because results land durably in the store per cell — re-dispatching
the job resumes from the store and reproduces the uninterrupted results
bit-for-bit (the campaign runner's resume contract).

Job lifecycle::

    queued -> running -> completed
                  |         ^
                  v         |  (worker died: re-queued up to max_attempts,
    failed  <- queued ------+   then failed)
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.exceptions import ExperimentError
from repro.experiments.spec import CampaignSpec

__all__ = [
    "JOB_STATUSES",
    "JobQueue",
    "WorkerPool",
    "spawn_worker",
]

JOB_FORMAT_VERSION = 1
JOB_STATUSES = ("queued", "running", "completed", "failed")

#: Job-file fields every document carries (pinned by the service tests).
JOB_FIELDS = (
    "id",
    "format_version",
    "name",
    "spec",
    "spec_hash",
    "base_dir",
    "backend",
    "status",
    "attempts",
    "pid",
    "submitted_at",
    "started_at",
    "finished_at",
    "error",
    "options",
    "total_cells",
)


def _pid_alive(pid: Optional[int]) -> bool:
    """Whether *pid* names a live process (best effort; 0 perms count as alive)."""
    if not pid:
        return False
    try:
        os.kill(int(pid), 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


class JobQueue:
    """The durable job directory: submit, read, update, recover.

    One queue owns one *root* directory.  All state lives in the job files —
    the queue keeps no caches, so any number of readers (HTTP handler
    threads, the dispatcher, ``repro campaign --status`` pointed at a job's
    store) observe a consistent view through atomic file replacement.

    Example (no HTTP involved)::

        queue = JobQueue("/tmp/service-root")
        job, deduplicated = queue.submit(builtin_spec("smoke"))
        assert not deduplicated
        again, deduplicated = queue.submit(builtin_spec("smoke"))
        assert deduplicated and again["id"] == job["id"]
    """

    def __init__(self, root: Union[str, Path], *, backend: str = "jsonl"):
        self.root = Path(root)
        self.backend = backend
        #: Optional :class:`repro.telemetry.Tracer` — when set, the queue and
        #: pool emit ``job.*`` lifecycle events (enqueue/claim/finish/requeue).
        self.tracer = None
        # Re-entrant: update() holds the lock while minting a temp path.
        self._lock = threading.RLock()
        self._counter = 0
        for sub in ("jobs", "stores", "logs"):
            (self.root / sub).mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def jobs_dir(self) -> Path:
        """Directory holding one JSON file per job."""
        return self.root / "jobs"

    def job_path(self, job_id: str) -> Path:
        """Path of the job file for *job_id* (existing or not)."""
        return self.jobs_dir / f"{job_id}.json"

    def store_dir(self, job_id: str) -> Path:
        """Directory of the job's ResultStore (created by the worker)."""
        return self.root / "stores" / job_id

    def log_path(self, job_id: str) -> Path:
        """Path of the job's worker stdout/stderr log."""
        return self.root / "logs" / f"{job_id}.log"

    # ------------------------------------------------------------------
    # Submission (idempotent on the spec content hash)
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: CampaignSpec,
        *,
        options: Optional[dict] = None,
        backend: Optional[str] = None,
    ) -> Tuple[dict, bool]:
        """Submit *spec*; returns ``(job, deduplicated)``.

        The job id is the spec's content hash.  If a job with that id
        already exists — whatever its status — the existing document is
        returned with ``deduplicated=True`` and nothing is written: the
        submitting client simply attaches to the shared run.  Creation is
        atomic (temp file + hard link), so exactly one of any number of
        concurrent identical submissions creates the job.
        """
        job_id = spec.spec_hash()
        path = self.job_path(job_id)
        existing = self.job(job_id)
        if existing is not None:
            return existing, True
        job = {
            "id": job_id,
            "format_version": JOB_FORMAT_VERSION,
            "name": spec.name,
            "spec": spec.as_dict(),
            "spec_hash": job_id,
            "base_dir": spec.base_dir,
            "backend": backend or self.backend,
            "status": "queued",
            "attempts": 0,
            "pid": None,
            "submitted_at": time.time(),
            "started_at": None,
            "finished_at": None,
            "error": None,
            "options": dict(options or {}),
            "total_cells": spec.num_cells(),
        }
        temp = self._temp_path(path)
        temp.write_text(json.dumps(job, indent=2, sort_keys=True) + "\n")
        try:
            os.link(temp, path)
        except FileExistsError:
            # Another submitter won the race; their document is canonical.
            existing = self.job(job_id)
            if existing is None:  # pragma: no cover - narrow re-race window
                raise ExperimentError(f"job {job_id} vanished during submission")
            return existing, True
        finally:
            temp.unlink(missing_ok=True)
        if self.tracer is not None:
            self.tracer.event(
                "job.enqueue", job=job_id, campaign=spec.name, cells=job["total_cells"]
            )
        return job, False

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def job(self, job_id: str) -> Optional[dict]:
        """The job document for *job_id*, or ``None``."""
        path = self.job_path(job_id)
        try:
            return json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except json.JSONDecodeError as error:
            raise ExperimentError(f"corrupt job file {path}: {error}") from error

    def jobs(self) -> List[dict]:
        """All jobs, oldest submission first (id breaks ties)."""
        documents = []
        for path in self.jobs_dir.glob("*.json"):
            try:
                documents.append(json.loads(path.read_text()))
            except (OSError, json.JSONDecodeError):
                continue
        documents.sort(key=lambda job: (job.get("submitted_at", 0.0), job.get("id", "")))
        return documents

    def counts(self) -> Dict[str, int]:
        """Jobs per status (all statuses present, zero-filled)."""
        totals = {status: 0 for status in JOB_STATUSES}
        for job in self.jobs():
            totals[job.get("status", "queued")] = totals.get(job.get("status", "queued"), 0) + 1
        return totals

    def stale_jobs(self) -> List[str]:
        """Ids of jobs marked ``running`` whose recorded pid is dead.

        These are jobs orphaned by a crashed worker that the pool's reaper
        (or :meth:`recover` after a restart) has not picked up yet — the
        health endpoint surfaces them as a degradation signal.
        """
        return [
            job["id"]
            for job in self.jobs()
            if job.get("status") == "running" and not _pid_alive(job.get("pid"))
        ]

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update(self, job_id: str, **fields) -> dict:
        """Atomically merge *fields* into the job document and return it."""
        with self._lock:
            job = self.job(job_id)
            if job is None:
                raise ExperimentError(f"unknown job {job_id!r}")
            job.update(fields)
            path = self.job_path(job_id)
            temp = self._temp_path(path)
            temp.write_text(json.dumps(job, indent=2, sort_keys=True) + "\n")
            os.replace(temp, path)
            return job

    def recover(self) -> List[str]:
        """Re-queue jobs whose worker died while the service was down.

        A job marked ``running`` whose recorded pid no longer exists was
        orphaned by a crash or restart; its store already holds every cell
        that completed, so re-queueing it resumes rather than restarts.
        Returns the re-queued job ids.
        """
        requeued = []
        for job in self.jobs():
            if job.get("status") == "running" and not _pid_alive(job.get("pid")):
                self.update(job["id"], status="queued", pid=None)
                requeued.append(job["id"])
        return requeued

    def _temp_path(self, path: Path) -> Path:
        with self._lock:
            self._counter += 1
            counter = self._counter
        return path.with_name(f".{path.name}.tmp-{os.getpid()}-{counter}")


# ----------------------------------------------------------------------
# Worker processes
# ----------------------------------------------------------------------
def _worker_environment() -> dict:
    """Child env with the running ``repro`` package importable."""
    import repro

    source_root = str(Path(repro.__file__).resolve().parent.parent)
    environment = dict(os.environ)
    existing = environment.get("PYTHONPATH", "")
    if source_root not in existing.split(os.pathsep):
        environment["PYTHONPATH"] = (
            source_root + os.pathsep + existing if existing else source_root
        )
    return environment


def spawn_worker(
    job_path: Union[str, Path],
    log_path: Union[str, Path],
    *,
    trace_dir: Optional[Union[str, Path]] = None,
) -> subprocess.Popen:
    """Start one worker process over *job_path* (stdout+stderr appended to the log).

    *trace_dir* (if given) is exported as ``REPRO_TRACE_DIR``: the worker
    opens a span tracer there and wraps the whole run in a ``job.run`` span,
    so service-side traces line up with the engine spans the run emits.
    """
    log_handle = open(log_path, "ab")
    environment = _worker_environment()
    if trace_dir is not None:
        environment["REPRO_TRACE_DIR"] = str(trace_dir)
    try:
        return subprocess.Popen(
            [sys.executable, "-m", "repro.service.worker", str(job_path)],
            stdout=log_handle,
            stderr=subprocess.STDOUT,
            env=environment,
        )
    finally:
        log_handle.close()


class WorkerPool:
    """Process-based pool draining a :class:`JobQueue`.

    A dispatcher thread polls the queue, keeps at most *workers* worker
    processes alive, and reaps them as they exit.  A worker that exits
    without reaching a terminal status (killed, crashed) has its job
    re-queued — up to *max_attempts* abnormal deaths, after which the job is
    failed.  A worker may also exit zero with the job back in ``queued``
    (cooperative yield, e.g. the ``max_cells`` testing option); that is
    re-dispatched without counting as a failure.
    """

    def __init__(
        self,
        queue: JobQueue,
        *,
        workers: int = 2,
        poll_interval: float = 0.2,
        max_attempts: int = 3,
        trace_dir: Optional[Union[str, Path]] = None,
    ):
        if workers < 1:
            raise ExperimentError(f"worker pool needs >= 1 worker, got {workers}")
        if max_attempts < 1:
            raise ExperimentError(f"max_attempts must be >= 1, got {max_attempts}")
        self.queue = queue
        self.workers = int(workers)
        self.poll_interval = float(poll_interval)
        self.max_attempts = int(max_attempts)
        #: Forwarded to every spawned worker as ``REPRO_TRACE_DIR``.
        self.trace_dir = trace_dir
        self._procs: Dict[str, subprocess.Popen] = {}
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Recover orphaned jobs, then start the dispatcher thread."""
        if self._thread is not None:
            return
        self.queue.recover()
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, name="repro-service-pool", daemon=True)
        self._thread.start()

    def stop(self, *, terminate_workers: bool = True, timeout: float = 10.0) -> None:
        """Stop dispatching; optionally terminate live workers (re-queued on recover)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=timeout)
        self._thread = None
        if terminate_workers:
            for proc in self._procs.values():
                if proc.poll() is None:
                    proc.terminate()
            for proc in self._procs.values():
                try:
                    proc.wait(timeout=timeout)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    proc.kill()
        self._reap()

    @property
    def active_workers(self) -> int:
        """Number of worker processes currently running a job."""
        return sum(1 for proc in self._procs.values() if proc.poll() is None)

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.tick()
            except Exception:  # pragma: no cover - keep the dispatcher alive
                pass
            self._stop.wait(self.poll_interval)

    def tick(self) -> None:
        """One dispatcher round: reap exited workers, then fill free slots."""
        self._reap()
        free = self.workers - len(self._procs)
        if free <= 0:
            return
        for job in self.queue.jobs():
            if free <= 0:
                break
            if job.get("status") != "queued" or job["id"] in self._procs:
                continue
            self._procs[job["id"]] = spawn_worker(
                self.queue.job_path(job["id"]),
                self.queue.log_path(job["id"]),
                trace_dir=self.trace_dir,
            )
            if self.queue.tracer is not None:
                self.queue.tracer.event(
                    "job.claim", job=job["id"], attempts=job.get("attempts", 0)
                )
            free -= 1

    def _reap(self) -> None:
        tracer = self.queue.tracer
        for job_id in list(self._procs):
            proc = self._procs[job_id]
            if proc.poll() is None:
                continue
            del self._procs[job_id]
            job = self.queue.job(job_id)
            if job is None or job.get("status") in ("completed", "failed"):
                if tracer is not None and job is not None:
                    tracer.event(
                        "job.finish", job=job_id, status=job.get("status"),
                        exit_code=proc.returncode,
                    )
                continue
            if proc.returncode == 0 and job.get("status") == "queued":
                if tracer is not None:
                    tracer.event("job.requeue", job=job_id, reason="yield")
                continue  # cooperative yield: progress made, more to do
            attempts = int(job.get("attempts", 0)) + 1
            if attempts >= self.max_attempts:
                self.queue.update(
                    job_id,
                    status="failed",
                    attempts=attempts,
                    pid=None,
                    finished_at=time.time(),
                    error=(
                        f"worker died (exit code {proc.returncode}) "
                        f"after {attempts} attempts"
                    ),
                )
                if tracer is not None:
                    tracer.event(
                        "job.finish", job=job_id, status="failed",
                        exit_code=proc.returncode, attempts=attempts,
                    )
            else:
                self.queue.update(job_id, status="queued", attempts=attempts, pid=None)
                if tracer is not None:
                    tracer.event(
                        "job.requeue", job=job_id, reason="died",
                        exit_code=proc.returncode, attempts=attempts,
                    )
