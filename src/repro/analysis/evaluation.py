"""Turning a candidate configuration into probability / time / yield estimates.

This is the glue between the raw Theorem 5.1 quantities and the heuristics of
Section VI: given a configuration (which workers, how many tasks each), the
communication still needed per worker and the computation still to be done,
produce the estimated

* probability of success of the iteration
  (``P = P_comm × P_comp``),
* expected completion time (``E = E_comm + E_comp``),
* yield (``P / (t + E)``) and apparent yield (``P / E``).

These estimates are what the incremental heuristics maximise/minimise when
assigning tasks, and what the proactive heuristics compare when deciding
whether to abandon the current configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from repro.analysis.communication import CommunicationEstimate, estimate_communication
from repro.analysis.group import ExpectationMode, GroupAnalysis
from repro.application.configuration import Configuration
from repro.platform.platform import Platform

__all__ = ["ConfigurationEstimate", "evaluate_configuration"]


@dataclass(frozen=True)
class ConfigurationEstimate:
    """Probability / time / yield estimates for one candidate configuration.

    All quantities refer to the *remaining* work of the current iteration
    under this configuration, assuming (as the paper's estimators do) that
    the enrolled workers are UP at the instant of evaluation.
    """

    configuration: Configuration
    #: Remaining workload ``W`` in slots of simultaneous computation.
    workload: int
    #: Communication-phase estimate (Section V-B).
    communication: CommunicationEstimate
    #: ``P_comp`` — probability the computation phase completes with no failure.
    computation_probability: float
    #: ``E_comp`` — expected duration of the computation phase, given success.
    computation_time: float
    #: Slots already spent in the current iteration (the ``t`` of the yield).
    elapsed: int

    # ------------------------------------------------------------------
    @property
    def success_probability(self) -> float:
        """``P = P_comm × P_comp``."""
        return self.communication.success_probability * self.computation_probability

    @property
    def expected_time(self) -> float:
        """``E = E_comm + E_comp`` (remaining time, in slots)."""
        return self.communication.expected_time + self.computation_time

    @property
    def yield_value(self) -> float:
        """``Y = P / (t + E)`` — the expected inverse iteration duration."""
        denominator = self.elapsed + self.expected_time
        if denominator <= 0.0:
            return math.inf if self.success_probability > 0 else 0.0
        return self.success_probability / denominator

    @property
    def apparent_yield(self) -> float:
        """``AY = P / E`` — yield of the remaining work only."""
        if self.expected_time <= 0.0:
            return math.inf if self.success_probability > 0 else 0.0
        return self.success_probability / self.expected_time

    def describe(self) -> str:
        return (
            f"Estimate(P={self.success_probability:.4f}, E={self.expected_time:.2f}, "
            f"Y={self.yield_value:.5f}, AY={self.apparent_yield:.5f})"
        )


def evaluate_configuration(
    analysis: GroupAnalysis,
    platform: Platform,
    configuration: Configuration,
    *,
    comm_slots: Optional[Mapping[int, int]] = None,
    has_program: Iterable[int] = (),
    received_data: Optional[Mapping[int, int]] = None,
    workload: Optional[int] = None,
    completed_work: int = 0,
    elapsed: int = 0,
    mode: ExpectationMode = ExpectationMode.PAPER,
) -> ConfigurationEstimate:
    """Estimate probability, duration and yield of *configuration*.

    Parameters
    ----------
    analysis:
        The platform's :class:`GroupAnalysis`.
    platform:
        Supplies ``ncom``, ``Tprog``, ``Tdata`` and processor speeds.
    configuration:
        The candidate worker -> task-count mapping.
    comm_slots:
        Remaining per-worker communication slots ``n_q``.  When omitted it is
        derived from *has_program* / *received_data* via
        :meth:`Configuration.communication_slots` (the "fresh configuration"
        case of the passive heuristics).
    has_program, received_data:
        Used only when *comm_slots* is omitted: workers already holding the
        program, and data messages already received this iteration.
    workload:
        Total workload ``W = max_q x_q w_q`` of the configuration; computed
        from the configuration when omitted.
    completed_work:
        Slots of simultaneous computation already performed (proactive
        re-evaluation of a running configuration); subtracted from the
        workload.
    elapsed:
        Slots already spent in the current iteration (enters the yield).
    mode:
        Which ``E^(S)(W)`` estimator to use (paper formula or strict renewal).
    """
    if completed_work < 0:
        raise ValueError(f"completed_work must be >= 0, got {completed_work}")
    if elapsed < 0:
        raise ValueError(f"elapsed must be >= 0, got {elapsed}")

    if comm_slots is None:
        comm_slots = configuration.communication_slots(
            platform, has_program=has_program, received_data=received_data
        )
    if workload is None:
        workload = configuration.workload(platform)
    remaining_workload = max(int(workload) - int(completed_work), 0)

    communication = estimate_communication(
        analysis, comm_slots, ncom=platform.ncom, mode=mode
    )

    workers = configuration.workers
    if remaining_workload == 0 or not workers:
        computation_probability = 1.0
        computation_time = 0.0
    else:
        quantities = analysis.quantities(workers)
        computation_probability = quantities.success_probability(remaining_workload)
        computation_time = quantities.expected_time(remaining_workload, mode)

    return ConfigurationEstimate(
        configuration=configuration,
        workload=remaining_workload,
        communication=communication,
        computation_probability=computation_probability,
        computation_time=computation_time,
        elapsed=int(elapsed),
    )
