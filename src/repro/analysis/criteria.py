"""The four scheduling criteria of Section VI.

Each criterion maps a :class:`~repro.analysis.evaluation.ConfigurationEstimate`
to a scalar figure of merit:

* **P** — probability of success of the iteration (higher is better);
* **E** — expected completion time of the iteration (lower is better);
* **Y** — expected yield ``P / (t + E)`` where ``t`` is the time already
  spent in the current iteration (higher is better);
* **AY** — apparent yield ``P / E``, i.e. the yield of the *remaining* work
  only (higher is better).

Criteria are used in two roles:

1. as the *selection* rule of the incremental passive heuristics (assign the
   next task to the worker that optimises the criterion), and
2. as the *switching* rule of the proactive heuristics (abandon the current
   configuration when a freshly computed one scores strictly better).

The paper only retains P, E and Y for the proactive role because AY does not
satisfy the anti-divergence constraint (a configuration that has been running
longer must never score worse than the same configuration started later).
"""

from __future__ import annotations

import abc
import math
from typing import TYPE_CHECKING, Dict, Type

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.evaluation import ConfigurationEstimate

__all__ = [
    "Criterion",
    "ProbabilityCriterion",
    "ExpectedTimeCriterion",
    "YieldCriterion",
    "ApparentYieldCriterion",
    "get_criterion",
    "PROACTIVE_CRITERIA",
]


class Criterion(abc.ABC):
    """A scalar figure of merit over configuration estimates."""

    #: Short name used in heuristic identifiers ("P", "E", "Y", "AY").
    name: str = "?"
    #: Whether larger values are preferable.
    higher_is_better: bool = True
    #: Whether the criterion satisfies the proactive anti-divergence
    #: constraint of Section VI-B (a configuration's score must not degrade
    #: as it accumulates progress).
    proactive_safe: bool = True

    @abc.abstractmethod
    def value(self, estimate: "ConfigurationEstimate") -> float:
        """The criterion value of *estimate*."""

    # ------------------------------------------------------------------
    def better(self, candidate: float, incumbent: float) -> bool:
        """Whether the scalar *candidate* is strictly better than *incumbent*."""
        if math.isnan(candidate):
            return False
        if math.isnan(incumbent):
            return True
        if self.higher_is_better:
            return candidate > incumbent
        return candidate < incumbent

    def better_estimate(
        self, candidate: "ConfigurationEstimate", incumbent: "ConfigurationEstimate"
    ) -> bool:
        """Whether *candidate* is strictly better than *incumbent* under this criterion."""
        return self.better(self.value(candidate), self.value(incumbent))

    def worst(self) -> float:
        """A value strictly worse than any achievable criterion value."""
        return -math.inf if self.higher_is_better else math.inf

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Criterion {self.name}>"


class ProbabilityCriterion(Criterion):
    """P — probability of successfully completing the iteration."""

    name = "P"
    higher_is_better = True
    proactive_safe = True

    def value(self, estimate: "ConfigurationEstimate") -> float:
        return estimate.success_probability


class ExpectedTimeCriterion(Criterion):
    """E — expected (remaining) completion time of the iteration."""

    name = "E"
    higher_is_better = False
    proactive_safe = True

    def value(self, estimate: "ConfigurationEstimate") -> float:
        return estimate.expected_time


class YieldCriterion(Criterion):
    """Y — expected yield ``P / (t + E)`` with ``t`` the elapsed iteration time."""

    name = "Y"
    higher_is_better = True
    proactive_safe = True

    def value(self, estimate: "ConfigurationEstimate") -> float:
        return estimate.yield_value


class ApparentYieldCriterion(Criterion):
    """AY — apparent yield ``P / E`` (remaining work only).

    Not proactive-safe: as a configuration nears completion its apparent
    yield can oscillate in a way that lets a lower-ranked configuration
    displace it repeatedly, so the paper excludes it from the proactive
    criteria.
    """

    name = "AY"
    higher_is_better = True
    proactive_safe = False

    def value(self, estimate: "ConfigurationEstimate") -> float:
        return estimate.apparent_yield


_CRITERIA: Dict[str, Type[Criterion]] = {
    "P": ProbabilityCriterion,
    "E": ExpectedTimeCriterion,
    "Y": YieldCriterion,
    "AY": ApparentYieldCriterion,
}

#: The criteria the paper allows as proactive switching rules.
PROACTIVE_CRITERIA = ("P", "E", "Y")


def get_criterion(name: str) -> Criterion:
    """Instantiate a criterion by its short name (case-insensitive)."""
    key = str(name).strip().upper()
    try:
        return _CRITERIA[key]()
    except KeyError:
        raise ValueError(
            f"unknown criterion {name!r}; expected one of {sorted(_CRITERIA)}"
        ) from None
