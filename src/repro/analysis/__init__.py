"""Analytical approximations of Section V and the derived scheduling criteria.

Under the 3-state Markov availability model, this subpackage computes (up to
an arbitrary precision ``ε``, per Theorem 5.1):

* ``P₊^(S)`` — the probability that a set ``S`` of workers, all UP now, will
  all be simultaneously UP again before any of them goes DOWN;
* ``E^(S)(W)`` — the conditional expectation of the number of slots needed to
  complete ``W`` slots of simultaneous computation, given success;
* the coarser communication-phase estimates ``E_comm^(S)`` and
  ``P_comm^(S)`` of Section V-B;
* the four scheduling criteria built on top of these quantities
  (probability of success, expected completion time, yield, apparent yield).

The entry point used by the schedulers is :class:`AnalysisContext`, which
caches per-worker spectra and per-set group quantities, plus
:func:`evaluate_configuration` which turns a candidate configuration into a
:class:`ConfigurationEstimate` (probability / expected time / yield).
"""

from repro.analysis.batch import BatchGroupAnalysis, BatchGroupQuantities
from repro.analysis.cache import AnalysisContext, EvaluationRequest
from repro.analysis.communication import (
    CommunicationEstimate,
    estimate_communication,
    estimate_communication_batch,
)
from repro.analysis.criteria import (
    ApparentYieldCriterion,
    Criterion,
    ExpectedTimeCriterion,
    ProbabilityCriterion,
    YieldCriterion,
    get_criterion,
)
from repro.analysis.evaluation import ConfigurationEstimate, evaluate_configuration
from repro.analysis.exact import (
    ExactGroupQuantities,
    exact_expected_time,
    exact_group_quantities,
)
from repro.analysis.group import ExpectationMode, GroupAnalysis, GroupQuantities
from repro.analysis.single import WorkerAnalysis

__all__ = [
    "AnalysisContext",
    "EvaluationRequest",
    "WorkerAnalysis",
    "GroupAnalysis",
    "GroupQuantities",
    "BatchGroupAnalysis",
    "BatchGroupQuantities",
    "ExpectationMode",
    "ExactGroupQuantities",
    "exact_group_quantities",
    "exact_expected_time",
    "CommunicationEstimate",
    "estimate_communication",
    "estimate_communication_batch",
    "ConfigurationEstimate",
    "evaluate_configuration",
    "Criterion",
    "ProbabilityCriterion",
    "ExpectedTimeCriterion",
    "YieldCriterion",
    "ApparentYieldCriterion",
    "get_criterion",
]
