"""Exact joint-chain computation of the Theorem 5.1 quantities (small sets).

The approximations of :mod:`repro.analysis.group` rest on two ingredients:
(i) the truncation of the series ``Eu(S)`` / ``A(S)`` at a finite horizon and
(ii) the renewal argument turning the first-return quantities into
``P₊ = Eu/(1+Eu)`` and the closed-form ``E^(S)(W)``.  Both can be validated
against an *exact* computation on the joint Markov chain of the worker set:

* the joint state space is the product of the per-worker non-failure states
  ``{UP, RECLAIMED}`` plus one absorbing FAILED state (any worker DOWN);
* the probability of hitting the all-UP state before FAILED, and the expected
  hitting time conditioned on success, follow from standard linear systems on
  that chain (size ``2^|S| + 1`` — exact but exponential, hence "small sets");
* the conditional expectation of a ``W``-slot workload follows by the renewal
  argument, which is exact because the all-UP state is a regeneration point.

This module is used by the test-suite as a ground truth and is exposed
publicly because it is also handy for users who want exact numbers on small
worker sets (up to ~12 workers).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.availability.markov import MarkovAvailabilityModel

__all__ = ["ExactGroupQuantities", "exact_group_quantities", "exact_expected_time"]

#: Safety bound on the joint state-space size (2^n states).
MAX_EXACT_WORKERS = 14


@dataclass(frozen=True)
class ExactGroupQuantities:
    """Exact counterparts of the Theorem 5.1 quantities for one worker set."""

    #: Probability that the set is simultaneously UP again before any failure.
    p_plus: float
    #: Conditional expectation of the gap until that happens (given success).
    expected_gap: float

    def success_probability(self, workload: int) -> float:
        """Exact probability that a *workload*-slot computation sees no failure."""
        if workload <= 1:
            return 1.0
        return self.p_plus ** (workload - 1)

    def expected_time(self, workload: int) -> float:
        """Exact conditional expected duration of a *workload*-slot computation."""
        if workload <= 0:
            return 0.0
        if self.p_plus == 0.0 and workload > 1:
            return math.inf
        return 1.0 + (workload - 1) * self.expected_gap


def _joint_transition_system(
    models: Sequence[MarkovAvailabilityModel],
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Build the joint {UP, RECLAIMED}^n chain with an absorbing failure state.

    Returns ``(transition, failure_probability, all_up_index)`` where
    ``transition[i, j]`` is the one-step probability of moving from joint
    state *i* to joint state *j* without any worker failing, and
    ``failure_probability[i]`` the probability of at least one worker going
    DOWN from joint state *i*.
    """
    n = len(models)
    submatrices = [model.up_reclaimed_submatrix() for model in models]
    failure_rows = [
        1.0 - model.up_reclaimed_submatrix().sum(axis=1) for model in models
    ]  # per-worker probability of failing from UP (index 0) / RECLAIMED (index 1)

    states = list(itertools.product((0, 1), repeat=n))  # 0 = UP, 1 = RECLAIMED
    index_of = {state: i for i, state in enumerate(states)}
    size = len(states)
    transition = np.zeros((size, size))
    failure = np.zeros(size)

    for i, state in enumerate(states):
        survive = 1.0
        for worker, worker_state in enumerate(state):
            survive *= 1.0 - failure_rows[worker][worker_state]
        failure[i] = 1.0 - survive
        # Enumerate joint successor states among the non-failure states.
        for successor in states:
            probability = 1.0
            for worker, (from_state, to_state) in enumerate(zip(state, successor)):
                probability *= submatrices[worker][from_state, to_state]
                if probability == 0.0:
                    break
            transition[i, index_of[successor]] = probability
    all_up_index = index_of[tuple([0] * n)]
    return transition, failure, all_up_index


def exact_group_quantities(
    models: Sequence[MarkovAvailabilityModel],
) -> ExactGroupQuantities:
    """Exact ``P₊`` and conditional expected gap for a set of Markov workers.

    All workers are assumed UP at time 0 (the setting of Definition 1/2 of
    the paper).  Complexity is ``O(4^n)`` in the number of workers; a
    :class:`ValueError` is raised beyond :data:`MAX_EXACT_WORKERS`.
    """
    if not models:
        return ExactGroupQuantities(p_plus=1.0, expected_gap=1.0)
    if len(models) > MAX_EXACT_WORKERS:
        raise ValueError(
            f"exact computation supports at most {MAX_EXACT_WORKERS} workers, "
            f"got {len(models)}"
        )
    transition, _failure, all_up = _joint_transition_system(models)
    size = transition.shape[0]

    # First-passage analysis to the all-UP state, with failure absorbing.
    # Let h[i] = P(hit all-UP before failure | current joint state i, one step
    # already taken from the conditioning instant).  For the quantity P+ we
    # start *at* all-UP and take at least one step, so
    #   P+ = sum_j T[all_up, j] * g[j]
    # where g[j] = 1 if j == all_up else h[j], and for j != all_up
    #   h[j] = sum_k T[j, k] * g[k].
    # Solve the linear system for h over the non-all-UP states.
    other = [i for i in range(size) if i != all_up]
    if other:
        t_oo = transition[np.ix_(other, other)]
        t_oa = transition[np.ix_(other, [all_up])].ravel()
        identity = np.eye(len(other))
        # lstsq instead of solve: joint states that are unreachable from the
        # all-UP state (e.g. "everybody reclaimed" for processors that never
        # leave UP) can make the system singular, but their values do not
        # influence P+ because the corresponding transition weights are zero.
        h_other, *_ = np.linalg.lstsq(identity - t_oo, t_oa, rcond=None)
    else:
        h_other = np.empty(0)
    g = np.empty(size)
    g[all_up] = 1.0
    for position, index in enumerate(other):
        g[index] = h_other[position]
    p_plus = float(transition[all_up] @ g)

    # Expected hitting time conditioned on success: use the standard
    # h-transform.  Define u[i] = E[steps to reach all-UP * 1{success} | i].
    # Then for i != all_up:  u[i] = sum_k T[i,k] * (g[k] + u[k])  with
    # u[all_up] = 0, and the conditional expected gap is
    #   E[gap | success] = (sum_j T[all_up, j] (g[j] + u[j])) / P+.
    if other:
        rhs = transition[np.ix_(other, range(size))] @ g
        u_other, *_ = np.linalg.lstsq(identity - t_oo, rhs, rcond=None)
    else:
        u_other = np.empty(0)
    u = np.zeros(size)
    for position, index in enumerate(other):
        u[index] = u_other[position]
    numerator = float(transition[all_up] @ (g + u))
    expected_gap = numerator / p_plus if p_plus > 0 else math.inf

    return ExactGroupQuantities(p_plus=p_plus, expected_gap=expected_gap)


def exact_expected_time(
    models: Sequence[MarkovAvailabilityModel], workload: int
) -> float:
    """Exact conditional expected duration of a *workload*-slot computation."""
    return exact_group_quantities(models).expected_time(workload)
