"""Group-level quantities of Theorem 5.1.

Given a set ``S`` of workers all UP at the current slot and a workload of
``W`` slots of *simultaneous* computation, Section V-A derives (under the
Markov availability model):

* ``Eu(S) = Σ_{t>0} P^{(S)}_{u →t u}`` — the expected number of future slots
  at which all workers of ``S`` are simultaneously UP before any of them goes
  DOWN, where ``P^{(S)}_{u →t u} = Π_q P^{(q)}_{u →t u}``;
* ``A(S) = Σ_{t>0} t · P^{(S)}_{u →t u}``;
* ``P₊^(S) = Eu(S) / (1 + Eu(S))`` — the probability that all workers are
  simultaneously UP again before any failure (1 when no worker can fail);
* ``E_c^(S) = A(S)(1 − P₊^(S)) / (1 + Eu(S))`` — the paper's (unnormalised)
  first-return quantity ``Σ_t t · P₊^(S)(t)``;
* ``E^(S)(W)`` — the expected completion time of a ``W``-slot workload,
  conditioned on success.

Both series are truncated at a horizon ``T`` chosen from the paper's tail
bounds so the truncation error is below ``ε`` (fully polynomial
approximation): with ``Λ = Π_q λ₁^{(q)}``,

* ``Σ_{t ≥ T} P^{(S)}_{u→u}(t) ≤ Λ^T / (1 − Λ) ≤ ε`` as soon as
  ``T ≥ ln(ε (1 − Λ)) / ln Λ``;
* ``Σ_{t ≥ T} t · P^{(S)}_{u→u}(t) ≤ Λ^T (T / (1 − Λ) + Λ / (1 − Λ)²) ≤ ε``.

Two estimators of ``E^(S)(W)`` are provided (see ``ExpectationMode``):

* ``PAPER`` — the paper's formula
  ``E(W) = (1 + (W − 1) E_c) / P₊^{W−1}``;
* ``RENEWAL`` — the strict renewal-argument conditional expectation
  ``E(W) = 1 + (W − 1) E_c / P₊`` (the two coincide when ``P₊ = 1``).

The ablation benchmark ``benchmarks/bench_ablation_estimator.py`` compares
the heuristic rankings obtained under each estimator.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Optional, Sequence

import numpy as np

from repro.analysis.single import WorkerAnalysis

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.batch import BatchGroupAnalysis

__all__ = ["ExpectationMode", "GroupQuantities", "GroupAnalysis", "truncation_horizon"]

#: Hard ceiling on the truncation horizon, protecting against nearly-reliable
#: worker sets for which the tail bound would demand astronomically many terms.
DEFAULT_MAX_HORIZON = 200_000

#: Smallest failure "leak" below which a worker set is treated as unable to fail.
_NO_FAILURE_TOLERANCE = 1e-15

#: Below this many cache misses, `prefetch` uses the per-set kernel: the
#: batched kernel's fixed grouping overhead only pays off for real frontiers.
_BATCH_KERNEL_THRESHOLD = 3


class ExpectationMode(enum.Enum):
    """Which estimator of ``E^(S)(W)`` to use (see module docstring)."""

    PAPER = "paper"
    RENEWAL = "renewal"


def truncation_horizon(dominant_eigenvalue: float, epsilon: float,
                       *, max_horizon: int = DEFAULT_MAX_HORIZON) -> int:
    """Truncation horizon ``T`` for the series of Theorem 5.1.

    Satisfies both tail bounds (for ``Eu`` and for ``A``) given the product
    ``Λ`` of the dominant eigenvalues, capping the result at *max_horizon*.
    """
    if not (0.0 < epsilon):
        raise ValueError(f"epsilon must be > 0, got {epsilon}")
    lam = float(dominant_eigenvalue)
    if lam <= 0.0:
        return 1
    if lam >= 1.0:
        return max_horizon
    # Bound for Eu: Λ^T / (1 - Λ) <= ε.
    horizon = math.log(epsilon * (1.0 - lam)) / math.log(lam)
    horizon = max(1, int(math.ceil(horizon)))
    # Bound for A: Λ^T (T / (1-Λ) + Λ / (1-Λ)^2) <= ε — grow T until satisfied.
    one_minus = 1.0 - lam
    while horizon < max_horizon:
        tail = lam**horizon * (horizon / one_minus + lam / one_minus**2)
        if tail <= epsilon:
            break
        horizon = min(max_horizon, horizon * 2)
    return min(horizon, max_horizon)


@dataclass(frozen=True)
class GroupQuantities:
    """The Theorem 5.1 quantities for one worker set ``S``.

    Attributes
    ----------
    eu:
        ``Eu(S)`` (may be ``inf`` when no worker can fail).
    a:
        ``A(S)`` (may be ``inf`` when no worker can fail).
    p_plus:
        ``P₊^(S)`` — probability of all being simultaneously UP again before
        any failure.
    e_c:
        ``E_c^(S)`` — the paper's unnormalised first-return sum
        ``Σ_t t·P₊(t)``; equals the mean recurrence time of the all-UP state
        when no worker can fail.
    horizon:
        Truncation horizon actually used (0 for the closed-form no-failure
        case).
    can_fail:
        Whether at least one worker of the set can go DOWN.
    """

    eu: float
    a: float
    p_plus: float
    e_c: float
    horizon: int
    can_fail: bool

    # ------------------------------------------------------------------
    def success_probability(self, workload: int) -> float:
        """Probability that a *workload*-slot computation completes with no failure.

        The first slot executes immediately (all workers are UP now); each of
        the remaining ``W − 1`` slots requires a successful "simultaneously UP
        again before any failure" event of probability ``P₊`` (renewal
        argument), hence ``P₊^{W−1}``.
        """
        if workload < 0:
            raise ValueError(f"workload must be >= 0, got {workload}")
        if workload <= 1:
            return 1.0
        return float(self.p_plus ** (workload - 1))

    def expected_time(self, workload: int,
                      mode: ExpectationMode = ExpectationMode.PAPER) -> float:
        """``E^(S)(W)`` — expected slots to finish *workload*, conditioned on success."""
        if workload < 0:
            raise ValueError(f"workload must be >= 0, got {workload}")
        if workload == 0:
            return 0.0
        if workload == 1:
            return 1.0
        if self.p_plus <= 0.0:
            return math.inf
        extra = workload - 1
        if mode is ExpectationMode.PAPER:
            return float((1.0 + extra * self.e_c) / (self.p_plus**extra))
        if mode is ExpectationMode.RENEWAL:
            return float(1.0 + extra * self.e_c / self.p_plus)
        raise ValueError(f"unknown expectation mode {mode!r}")

    def expected_gap(self) -> float:
        """Conditional expected gap between consecutive compute slots (``E_c / P₊``)."""
        if self.p_plus <= 0.0:
            return math.inf
        return float(self.e_c / self.p_plus)


class GroupAnalysis:
    """Computes and caches :class:`GroupQuantities` for worker sets.

    Parameters
    ----------
    workers:
        Per-worker analysis objects, indexed by worker id (position in the
        sequence = worker id).
    epsilon:
        Target precision of the truncated series (Theorem 5.1).
    max_horizon:
        Hard cap on the truncation horizon.
    """

    def __init__(
        self,
        workers: Sequence[WorkerAnalysis],
        *,
        epsilon: float = 1e-6,
        max_horizon: int = DEFAULT_MAX_HORIZON,
    ) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be > 0, got {epsilon}")
        if max_horizon < 1:
            raise ValueError(f"max_horizon must be >= 1, got {max_horizon}")
        self._workers = list(workers)
        self.epsilon = float(epsilon)
        self.max_horizon = int(max_horizon)
        self._cache: Dict[FrozenSet[int], GroupQuantities] = {}
        self._batch_engine: Optional["BatchGroupAnalysis"] = None

    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return len(self._workers)

    def worker(self, worker_id: int) -> WorkerAnalysis:
        return self._workers[worker_id]

    # ------------------------------------------------------------------
    def quantities(self, workers: Iterable[int]) -> GroupQuantities:
        """The Theorem 5.1 quantities for the worker set *workers* (cached)."""
        key = frozenset(int(w) for w in workers)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._compute(key)
            self._cache[key] = cached
        return cached

    def quantities_batch(self, sets: Sequence[Iterable[int]]) -> List[GroupQuantities]:
        """Quantities for many worker sets at once (shared cache, batched kernels).

        Uncached sets are computed together by
        :class:`~repro.analysis.batch.BatchGroupAnalysis` (bit-identical to
        :meth:`quantities`, see that module's docstring) and stored in the
        same per-set cache, so the scalar and batched entry points are fully
        interchangeable.
        """
        keys = [
            workers if type(workers) is frozenset else frozenset(int(w) for w in workers)
            for workers in sets
        ]
        self.prefetch(keys)
        return [self._cache[key] for key in keys]

    def prefetch(self, sets: Sequence[Iterable[int]]) -> None:
        """Ensure every set of *sets* is cached, computing the misses batched.

        The cheap entry point of the per-slot hot paths: when every candidate
        of a frontier is already cached (the steady state of a long
        simulation) this is a dictionary sweep with no allocation.
        """
        cache = self._cache
        missing: List[FrozenSet[int]] = []
        seen = set()
        for workers in sets:
            key = (
                workers
                if type(workers) is frozenset
                else frozenset(int(w) for w in workers)
            )
            if key not in cache and key not in seen:
                seen.add(key)
                missing.append(key)
        if not missing:
            return
        if len(missing) <= _BATCH_KERNEL_THRESHOLD:
            # A cold *trickle* (typical of long simulations, where one or two
            # new sets appear per slot): the per-set kernel is cheaper than
            # the batch kernel's fixed grouping overhead.
            for key in missing:
                cache[key] = self._compute(key)
            return
        results = self._batch().quantities([sorted(key) for key in missing])
        for index, key in enumerate(missing):
            cache[key] = results[index]

    def _batch(self) -> "BatchGroupAnalysis":
        if self._batch_engine is None:
            from repro.analysis.batch import BatchGroupAnalysis

            self._batch_engine = BatchGroupAnalysis(
                self._workers, epsilon=self.epsilon, max_horizon=self.max_horizon
            )
        return self._batch_engine

    # ------------------------------------------------------------------
    def _compute(self, workers: FrozenSet[int]) -> GroupQuantities:
        if not workers:
            # Empty set: "all workers UP" holds vacuously at every slot.
            return GroupQuantities(
                eu=math.inf, a=math.inf, p_plus=1.0, e_c=1.0, horizon=0, can_fail=False
            )
        for worker_id in workers:
            if worker_id < 0 or worker_id >= len(self._workers):
                raise IndexError(
                    f"worker id {worker_id} out of range for {len(self._workers)} workers"
                )
        analyses = [self._workers[worker_id] for worker_id in sorted(workers)]
        if not any(analysis.can_fail() for analysis in analyses):
            return self._compute_no_failure(analyses)
        return self._compute_with_failures(analyses)

    def _compute_no_failure(self, analyses: Sequence[WorkerAnalysis]) -> GroupQuantities:
        """Closed form when no worker of the set can go DOWN.

        ``P₊ = 1`` and, by Kac's recurrence-time formula applied to the joint
        chain restricted to {UP, RECLAIMED} states, the mean time between
        consecutive all-UP slots is the inverse of the stationary probability
        of the all-UP joint state.
        """
        stationary_all_up = 1.0
        for analysis in analyses:
            stationary_all_up *= analysis.up_stationary_no_failure()
        if stationary_all_up <= 0.0:
            # Degenerate: some worker is never UP in steady state; the
            # workload can start (workers are UP now) but the expected wait
            # for the next simultaneous UP slot is unbounded.
            e_c = math.inf
        else:
            e_c = 1.0 / stationary_all_up
        return GroupQuantities(
            eu=math.inf, a=math.inf, p_plus=1.0, e_c=e_c, horizon=0, can_fail=False
        )

    def _compute_with_failures(self, analyses: Sequence[WorkerAnalysis]) -> GroupQuantities:
        lam_product = 1.0
        for analysis in analyses:
            lam_product *= analysis.lambda1
        lam_product = min(lam_product, 1.0 - _NO_FAILURE_TOLERANCE)
        horizon = truncation_horizon(lam_product, self.epsilon, max_horizon=self.max_horizon)

        # P^{(S)}_{u->u}(t) = Π_q P^{(q)}_{u->u}(t), vectorised over t = 1..T.
        product = np.ones(horizon)
        for analysis in analyses:
            product *= analysis.up_return_array(horizon)
        t_values = np.arange(1, horizon + 1, dtype=float)
        eu = float(product.sum())
        a = float((t_values * product).sum())

        p_plus = eu / (1.0 + eu)
        e_c = a * (1.0 - p_plus) / (1.0 + eu)
        return GroupQuantities(
            eu=eu, a=a, p_plus=p_plus, e_c=e_c, horizon=horizon, can_fail=True
        )

    # ------------------------------------------------------------------
    def clear_cache(self) -> None:
        self._cache.clear()

    def cache_size(self) -> int:
        return len(self._cache)
