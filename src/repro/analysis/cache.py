"""The :class:`AnalysisContext`: everything a scheduler needs, with caching.

The on-line heuristics call the Theorem 5.1 machinery thousands of times per
simulated iteration (once per candidate worker per task per slot for the
proactive heuristics).  The quantities involved depend only on

* the *set* of workers considered (group quantities),
* the remaining per-worker communication slots (communication estimate), and
* the remaining workload (cheap scalar arithmetic once the group quantities
  are known),

so aggressive memoisation keyed on those values makes the heuristics
affordable without changing any result.  :class:`AnalysisContext` bundles the
per-worker analyses, the group analysis and a communication-estimate cache,
and exposes a single :meth:`evaluate` entry point mirroring
:func:`repro.analysis.evaluation.evaluate_configuration`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.analysis.communication import CommunicationEstimate, estimate_communication
from repro.analysis.evaluation import ConfigurationEstimate
from repro.analysis.group import ExpectationMode, GroupAnalysis, GroupQuantities
from repro.analysis.single import WorkerAnalysis
from repro.application.configuration import Configuration
from repro.platform.platform import Platform

__all__ = ["AnalysisContext"]


class AnalysisContext:
    """Cached analytical machinery bound to one platform.

    Parameters
    ----------
    platform:
        The platform whose workers are analysed.  Non-Markovian availability
        models are handled through their Markov approximation (see
        :meth:`Platform.markov_models`).
    epsilon:
        Precision of the truncated series of Theorem 5.1.
    mode:
        Which ``E^(S)(W)`` estimator the heuristics should use.
    max_horizon:
        Cap on the truncation horizon.
    """

    def __init__(
        self,
        platform: Platform,
        *,
        epsilon: float = 1e-6,
        mode: ExpectationMode = ExpectationMode.PAPER,
        max_horizon: int = 200_000,
    ) -> None:
        self.platform = platform
        self.mode = mode
        models = platform.markov_models()
        self._workers = [
            WorkerAnalysis(model, speed=proc.speed, capacity=proc.capacity)
            for model, proc in zip(models, platform.processors)
        ]
        self.group = GroupAnalysis(self._workers, epsilon=epsilon, max_horizon=max_horizon)
        self._comm_cache: Dict[Tuple[Tuple[int, int], ...], CommunicationEstimate] = {}
        self._single_time_cache: Dict[Tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return len(self._workers)

    def worker(self, worker_id: int) -> WorkerAnalysis:
        """Per-worker analysis (speed, spectrum, no-DOWN probabilities)."""
        return self._workers[worker_id]

    def quantities(self, workers: Iterable[int]) -> GroupQuantities:
        """Group quantities (``Eu``, ``P₊``, ``E_c``) for a worker set."""
        return self.group.quantities(workers)

    # ------------------------------------------------------------------
    def single_expected_time(self, worker: int, slots: int) -> float:
        """Cached single-worker ``E^{(P_q)}(n)`` (used by the communication estimate)."""
        if slots <= 0:
            return 0.0
        key = (int(worker), int(slots))
        cached = self._single_time_cache.get(key)
        if cached is None:
            cached = self.group.quantities((worker,)).expected_time(slots, self.mode)
            self._single_time_cache[key] = cached
        return cached

    def no_down_probability(self, worker: int, slots: int) -> float:
        """Cached per-worker ``P_ND(t)``."""
        return self._workers[worker].no_down_probability(int(slots))

    # ------------------------------------------------------------------
    def communication(self, comm_slots: Mapping[int, int]) -> CommunicationEstimate:
        """Cached communication estimate for the given remaining slots."""
        key = tuple(sorted((int(w), int(n)) for w, n in comm_slots.items()))
        cached = self._comm_cache.get(key)
        if cached is None:
            cached = estimate_communication(
                self.group, dict(key), ncom=self.platform.ncom, mode=self.mode
            )
            self._comm_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    def evaluate(
        self,
        configuration: Configuration,
        *,
        comm_slots: Optional[Mapping[int, int]] = None,
        has_program: Iterable[int] = (),
        received_data: Optional[Mapping[int, int]] = None,
        workload: Optional[int] = None,
        completed_work: int = 0,
        elapsed: int = 0,
    ) -> ConfigurationEstimate:
        """Estimate *configuration* (see :func:`evaluate_configuration`).

        This cached variant is what the heuristics use; semantics are
        identical to the module-level function with ``mode=self.mode``.
        """
        if comm_slots is None:
            comm_slots = configuration.communication_slots(
                self.platform, has_program=has_program, received_data=received_data
            )
        if workload is None:
            workload = configuration.workload(self.platform)
        remaining_workload = max(int(workload) - int(completed_work), 0)

        communication = self.communication(comm_slots)

        workers = configuration.workers
        if remaining_workload == 0 or not workers:
            computation_probability = 1.0
            computation_time = 0.0
        else:
            quantities = self.group.quantities(workers)
            computation_probability = quantities.success_probability(remaining_workload)
            computation_time = quantities.expected_time(remaining_workload, self.mode)

        return ConfigurationEstimate(
            configuration=configuration,
            workload=remaining_workload,
            communication=communication,
            computation_probability=computation_probability,
            computation_time=computation_time,
            elapsed=int(elapsed),
        )

    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        """Drop all memoised values (group quantities and communication estimates)."""
        self.group.clear_cache()
        self._comm_cache.clear()
        self._single_time_cache.clear()

    def cache_stats(self) -> Dict[str, int]:
        """Sizes of the internal caches (for diagnostics and tests)."""
        return {
            "group_sets": self.group.cache_size(),
            "communication_keys": len(self._comm_cache),
        }
