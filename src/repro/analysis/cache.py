"""The :class:`AnalysisContext`: everything a scheduler needs, with caching.

The on-line heuristics call the Theorem 5.1 machinery thousands of times per
simulated iteration (once per candidate worker per task per slot for the
proactive heuristics).  The quantities involved depend only on

* the *set* of workers considered (group quantities),
* the remaining per-worker communication slots (communication estimate), and
* the remaining workload (cheap scalar arithmetic once the group quantities
  are known),

so aggressive memoisation keyed on those values makes the heuristics
affordable without changing any result.  :class:`AnalysisContext` bundles the
per-worker analyses, the group analysis and a communication-estimate cache,
and exposes a single :meth:`evaluate` entry point mirroring
:func:`repro.analysis.evaluation.evaluate_configuration`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.communication import CommunicationEstimate, estimate_communication
from repro.analysis.evaluation import ConfigurationEstimate
from repro.analysis.group import ExpectationMode, GroupAnalysis, GroupQuantities
from repro.analysis.single import WorkerAnalysis
from repro.application.configuration import Configuration
from repro.platform.platform import Platform

__all__ = ["AnalysisContext", "EvaluationRequest"]


@dataclass(frozen=True)
class EvaluationRequest:
    """One configuration to score in an :meth:`AnalysisContext.evaluate_batch` call.

    Mirrors the keyword arguments of :meth:`AnalysisContext.evaluate`; a batch
    may mix items with explicit remaining communication (re-scoring a running
    configuration) and items evaluated from scratch (fresh candidates).
    """

    configuration: Configuration
    comm_slots: Optional[Mapping[int, int]] = None
    has_program: Iterable[int] = ()
    received_data: Optional[Mapping[int, int]] = None
    workload: Optional[int] = None
    completed_work: int = 0
    elapsed: int = 0


class AnalysisContext:
    """Cached analytical machinery bound to one platform.

    Parameters
    ----------
    platform:
        The platform whose workers are analysed.  Non-Markovian availability
        models are handled through their Markov approximation (see
        :meth:`Platform.markov_models`).
    epsilon:
        Precision of the truncated series of Theorem 5.1.
    mode:
        Which ``E^(S)(W)`` estimator the heuristics should use.
    max_horizon:
        Cap on the truncation horizon.
    """

    def __init__(
        self,
        platform: Platform,
        *,
        epsilon: float = 1e-6,
        mode: ExpectationMode = ExpectationMode.PAPER,
        max_horizon: int = 200_000,
    ) -> None:
        self.platform = platform
        self._mode = mode
        models = platform.markov_models()
        self._workers = [
            WorkerAnalysis(model, speed=proc.speed, capacity=proc.capacity)
            for model, proc in zip(models, platform.processors)
        ]
        self.group = GroupAnalysis(self._workers, epsilon=epsilon, max_horizon=max_horizon)
        self._comm_cache: Dict[Tuple[Tuple[int, int], ...], CommunicationEstimate] = {}
        self._single_time_cache: Dict[Tuple[int, int], float] = {}
        # (frozen worker set, remaining workload) -> (P_comp, E_comp); the
        # memoisation key of the batched evaluation path.
        self._comp_cache: Dict[Tuple[FrozenSet[int], int], Tuple[float, float]] = {}
        # (frozen worker set, phase duration) -> Π_q P_ND(duration).
        self._survival_cache: Dict[Tuple[FrozenSet[int], int], float] = {}
        #: Optional :class:`~repro.telemetry.tracer.Tracer` shared with the
        #: allocator: when set, ``evaluate_batch`` and
        #: ``IncrementalAllocator.allocate`` emit spans with memo hit/miss
        #: counters.  ``None`` (the default) is the exact untraced path.
        self.tracer = None

    # ------------------------------------------------------------------
    @property
    def mode(self) -> ExpectationMode:
        """The ``E^(S)(W)`` estimator in use.

        Several memos (single-worker expectations, communication estimates,
        computation estimates) cache mode-dependent values, so assigning a
        new mode drops them — stale entries would otherwise be replayed.
        """
        return self._mode

    @mode.setter
    def mode(self, mode: ExpectationMode) -> None:
        if mode is not self._mode:
            self._mode = mode
            self._comm_cache.clear()
            self._single_time_cache.clear()
            self._comp_cache.clear()

    @property
    def num_workers(self) -> int:
        return len(self._workers)

    def worker(self, worker_id: int) -> WorkerAnalysis:
        """Per-worker analysis (speed, spectrum, no-DOWN probabilities)."""
        return self._workers[worker_id]

    def quantities(self, workers: Iterable[int]) -> GroupQuantities:
        """Group quantities (``Eu``, ``P₊``, ``E_c``) for a worker set."""
        return self.group.quantities(workers)

    def quantities_batch(self, sets: Sequence[Iterable[int]]) -> List[GroupQuantities]:
        """Group quantities for many worker sets in one batched computation."""
        return self.group.quantities_batch(sets)

    def prefetch_groups(self, sets: Sequence[Iterable[int]]) -> None:
        """Compute (batched) and cache the group quantities of *sets*.

        A no-op for sets already cached; the heuristics call this with a whole
        candidate frontier before scoring it so that every uncached set is
        computed in one vectorised pass instead of one at a time.
        """
        self.group.prefetch(sets)

    # ------------------------------------------------------------------
    def computation(self, workers: FrozenSet[int], workload: int) -> Tuple[float, float]:
        """Memoised ``(P_comp, E_comp)`` of *workload* slots on the set *workers*.

        Keyed on the frozen worker set and the remaining workload — the same
        float operations as :meth:`GroupQuantities.success_probability` /
        :meth:`GroupQuantities.expected_time`, computed once per key.
        """
        workload = int(workload)
        if workload <= 0 or not workers:
            return (1.0, 0.0)
        key = (workers, workload)
        cached = self._comp_cache.get(key)
        if cached is None:
            quantities = self.group.quantities(workers)
            cached = (
                quantities.success_probability(workload),
                quantities.expected_time(workload, self.mode),
            )
            self._comp_cache[key] = cached
        return cached

    def comm_survival(self, workers: FrozenSet[int], duration: int) -> float:
        """Memoised ``Π_{q∈workers} P_ND(duration)`` (ascending worker order)."""
        key = (workers, int(duration))
        cached = self._survival_cache.get(key)
        if cached is None:
            cached = 1.0
            for worker in sorted(workers):
                cached *= self._workers[worker].no_down_probability(int(duration))
            self._survival_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Raw memo dictionaries, exposed for hot-path consumers (the incremental
    # allocator probes them directly to skip the method-call overhead of the
    # accessors above on cache hits).  Entries must only ever be read, or
    # written with exactly the values :meth:`computation`,
    # :meth:`comm_survival` and :meth:`single_expected_time` would store.
    @property
    def computation_cache(self) -> Dict[Tuple[FrozenSet[int], int], Tuple[float, float]]:
        """``(frozen worker set, workload) -> (P_comp, E_comp)`` memo."""
        return self._comp_cache

    @property
    def survival_cache(self) -> Dict[Tuple[FrozenSet[int], int], float]:
        """``(frozen worker set, duration) -> Π P_ND(duration)`` memo."""
        return self._survival_cache

    @property
    def single_time_cache(self) -> Dict[Tuple[int, int], float]:
        """``(worker, comm slots) -> E^{(P_q)}(n)`` memo (``slots > 0`` keys only)."""
        return self._single_time_cache

    # ------------------------------------------------------------------
    def single_expected_time(self, worker: int, slots: int) -> float:
        """Cached single-worker ``E^{(P_q)}(n)`` (used by the communication estimate)."""
        if slots <= 0:
            return 0.0
        key = (int(worker), int(slots))
        cached = self._single_time_cache.get(key)
        if cached is None:
            cached = self.group.quantities((worker,)).expected_time(slots, self.mode)
            self._single_time_cache[key] = cached
        return cached

    def no_down_probability(self, worker: int, slots: int) -> float:
        """Cached per-worker ``P_ND(t)``."""
        return self._workers[worker].no_down_probability(int(slots))

    # ------------------------------------------------------------------
    def communication(self, comm_slots: Mapping[int, int]) -> CommunicationEstimate:
        """Cached communication estimate for the given remaining slots."""
        key = tuple(sorted((int(w), int(n)) for w, n in comm_slots.items()))
        cached = self._comm_cache.get(key)
        if cached is None:
            cached = estimate_communication(
                self.group, dict(key), ncom=self.platform.ncom, mode=self.mode
            )
            self._comm_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    def evaluate(
        self,
        configuration: Configuration,
        *,
        comm_slots: Optional[Mapping[int, int]] = None,
        has_program: Iterable[int] = (),
        received_data: Optional[Mapping[int, int]] = None,
        workload: Optional[int] = None,
        completed_work: int = 0,
        elapsed: int = 0,
    ) -> ConfigurationEstimate:
        """Estimate *configuration* (see :func:`evaluate_configuration`).

        This cached variant is what the heuristics use; semantics are
        identical to the module-level function with ``mode=self.mode``.
        """
        return self._evaluate_one(
            EvaluationRequest(
                configuration=configuration,
                comm_slots=comm_slots,
                has_program=has_program,
                received_data=received_data,
                workload=workload,
                completed_work=completed_work,
                elapsed=elapsed,
            )
        )

    def evaluate_batch(
        self, requests: Sequence[EvaluationRequest]
    ) -> List[ConfigurationEstimate]:
        """Estimate a whole frontier of configurations in one call.

        Semantically identical to calling :meth:`evaluate` per request (the
        estimates are bit-identical); the uncached group quantities of the
        batch are computed together through
        :meth:`GroupAnalysis.quantities_batch`, and the per-request
        computation estimates are memoised on (frozen worker set, remaining
        workload) keys shared with the scalar entry point.

        When :attr:`tracer` is set, each call accumulates into one
        aggregated ``analysis.evaluate_batch`` span (flushed at the end of
        the engine run) counting the requests evaluated and the
        computation-memo prefetches — the memo-efficiency evidence the
        profiling report aggregates.
        """
        tracer = self.tracer
        begin = time.perf_counter_ns() if tracer is not None else 0
        prepared = []
        prefetch = []
        for request in requests:
            comm_slots = request.comm_slots
            if comm_slots is None:
                comm_slots = request.configuration.communication_slots(
                    self.platform,
                    has_program=request.has_program,
                    received_data=request.received_data,
                )
            workload = request.workload
            if workload is None:
                workload = request.configuration.workload(self.platform)
            remaining = max(int(workload) - int(request.completed_work), 0)
            workers = frozenset(request.configuration.workers)
            prepared.append((request, comm_slots, remaining, workers))
            if remaining > 0 and workers and (workers, remaining) not in self._comp_cache:
                prefetch.append(workers)
        if prefetch:
            self.group.prefetch(prefetch)
        estimates = [
            self._finish_estimate(request, comm_slots, remaining, workers)
            for request, comm_slots, remaining, workers in prepared
        ]
        if tracer is not None:
            tracer.accumulate(
                "analysis.evaluate_batch",
                begin,
                counters={
                    "requests": len(requests),
                    "prefetched": len(prefetch),
                },
            )
        return estimates

    def _evaluate_one(self, request: EvaluationRequest) -> ConfigurationEstimate:
        comm_slots = request.comm_slots
        if comm_slots is None:
            comm_slots = request.configuration.communication_slots(
                self.platform,
                has_program=request.has_program,
                received_data=request.received_data,
            )
        workload = request.workload
        if workload is None:
            workload = request.configuration.workload(self.platform)
        remaining = max(int(workload) - int(request.completed_work), 0)
        workers = frozenset(request.configuration.workers)
        return self._finish_estimate(request, comm_slots, remaining, workers)

    def _finish_estimate(
        self,
        request: EvaluationRequest,
        comm_slots: Mapping[int, int],
        remaining_workload: int,
        workers: FrozenSet[int],
    ) -> ConfigurationEstimate:
        communication = self.communication(comm_slots)
        computation_probability, computation_time = self.computation(
            workers, remaining_workload
        )
        return ConfigurationEstimate(
            configuration=request.configuration,
            workload=remaining_workload,
            communication=communication,
            computation_probability=computation_probability,
            computation_time=computation_time,
            elapsed=int(request.elapsed),
        )

    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        """Drop all memoised values (group quantities and communication estimates)."""
        self.group.clear_cache()
        self._comm_cache.clear()
        self._single_time_cache.clear()
        self._comp_cache.clear()
        self._survival_cache.clear()

    def cache_stats(self) -> Dict[str, int]:
        """Sizes of the internal caches (for diagnostics and tests)."""
        return {
            "group_sets": self.group.cache_size(),
            "communication_keys": len(self._comm_cache),
            "computation_keys": len(self._comp_cache),
            "survival_keys": len(self._survival_cache),
        }
