"""Per-processor spectral quantities used by the Theorem 5.1 machinery.

For each processor the proof of Theorem 5.1 only ever looks at the 2x2
restriction ``M_q`` of the Markov chain to the non-failure states
``{UP, RECLAIMED}``:

* ``P^{(q)}_{u →t u} = (M_q^t)[0, 0]`` — UP again at *t* with no DOWN in
  between — has the closed form ``µ λ₁^t + ν λ₂^t``;
* ``P^{(q)}_{ND}(t) = Σ_j (M_q^t)[0, j]`` — no DOWN within *t* slots — has an
  analogous closed form with different coefficients;
* ``λ₁`` (the spectral radius of ``M_q``) drives the truncation horizon of
  the series of Theorem 5.1.

:class:`WorkerAnalysis` wraps one processor and memoises growing arrays of
these quantities so that the group-level computations (products over the
workers of a set) are simple vectorised NumPy products.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.availability.markov import MarkovAvailabilityModel

__all__ = ["WorkerAnalysis"]


class WorkerAnalysis:
    """Cached per-processor quantities for the analysis of Section V.

    Parameters
    ----------
    model:
        The processor's Markov availability model (or Markov approximation).
    speed:
        The processor's speed ``w_q``; carried along purely for convenience
        so scheduler code can work from the analysis object alone.
    capacity:
        The processor's memory bound ``µ_q`` (same convenience purpose).
    """

    def __init__(
        self,
        model: MarkovAvailabilityModel,
        *,
        speed: int = 1,
        capacity: int = 1,
    ) -> None:
        self.model = model
        self.speed = int(speed)
        self.capacity = int(capacity)
        spectrum = model.up_return_spectrum()
        self.lambda1 = float(min(max(spectrum.lambda1, 0.0), 1.0))
        self._spectrum = spectrum
        # Closed-form coefficients of the no-DOWN probability
        #   P_ND(t) = a1 * λ1^t + a2 * λ2^t
        self._nd_coefficients = self._compute_nd_coefficients()
        # Cached arrays P_{u->u}(t) / P_ND(t) for t = 1..len(cache).
        self._up_return_cache = np.empty(0)
        self._no_down_cache = np.empty(0)
        self._no_down_scalar: Dict[int, float] = {}

    # ------------------------------------------------------------------
    def _compute_nd_coefficients(self) -> Optional[np.ndarray]:
        """Coefficients (a1, a2) of the eigen closed form of P_ND, or None.

        Returns ``None`` when the sub-chain is defective (repeated eigenvalue
        with a non-diagonalisable matrix); in that case exact matrix powers
        are used instead.
        """
        sub = self.model.up_reclaimed_submatrix()
        eigenvalues, eigenvectors = np.linalg.eig(sub)
        order = np.argsort(eigenvalues.real)[::-1]
        eigenvalues = eigenvalues[order]
        eigenvectors = eigenvectors[:, order]
        if abs(eigenvalues[0].real - eigenvalues[1].real) < 1e-12:
            return None
        try:
            inverse = np.linalg.inv(eigenvectors)
        except np.linalg.LinAlgError:  # pragma: no cover - defensive
            return None
        ones = np.ones(2)
        coefficients = eigenvectors[0, :] * (inverse @ ones)
        self._nd_eigenvalues = eigenvalues.real
        return coefficients.real

    # ------------------------------------------------------------------
    # P_{u ->t u}
    # ------------------------------------------------------------------
    def up_return_array(self, horizon: int) -> np.ndarray:
        """Array ``[P_{u->u}(1), ..., P_{u->u}(horizon)]`` (cached, grows).

        The cache over-allocates geometrically: batched group evaluations ask
        for many nearby horizons (one per candidate Λ), and the per-``t``
        closed form makes any longer array's prefix identical, so growing in
        1.5x steps avoids recomputing the series once per new horizon.
        """
        if horizon < 0:
            raise ValueError(f"horizon must be >= 0, got {horizon}")
        if horizon > self._up_return_cache.size:
            grown = max(horizon, (self._up_return_cache.size * 3) // 2)
            self._up_return_cache = self.model.up_return_probabilities(grown)
        return self._up_return_cache[:horizon]

    def up_return_probability(self, t: int) -> float:
        """Scalar ``P_{u->u}(t)``."""
        if t < 0:
            raise ValueError(f"t must be >= 0, got {t}")
        if t == 0:
            return 1.0
        return float(self.up_return_array(t)[t - 1])

    # ------------------------------------------------------------------
    # P_ND — probability of not going DOWN within t slots (starting UP)
    # ------------------------------------------------------------------
    def no_down_array(self, horizon: int) -> np.ndarray:
        """Array ``[P_ND(1), ..., P_ND(horizon)]`` (cached, grows geometrically)."""
        if horizon < 0:
            raise ValueError(f"horizon must be >= 0, got {horizon}")
        if horizon > self._no_down_cache.size:
            grown = max(horizon, (self._no_down_cache.size * 3) // 2)
            self._no_down_cache = self._compute_no_down_array(grown)
        return self._no_down_cache[:horizon]

    def _compute_no_down_array(self, horizon: int) -> np.ndarray:
        t = np.arange(1, horizon + 1, dtype=float)
        if self._nd_coefficients is not None:
            values = (
                self._nd_coefficients[0] * np.power(self._nd_eigenvalues[0], t)
                + self._nd_coefficients[1] * np.power(self._nd_eigenvalues[1], t)
            )
            return np.clip(values, 0.0, 1.0)
        # Defective sub-chain: fall back to iterated matrix-vector products.
        sub = self.model.up_reclaimed_submatrix()
        values = np.empty(horizon)
        row = np.array([1.0, 0.0])
        for index in range(horizon):
            row = row @ sub
            values[index] = row.sum()
        return np.clip(values, 0.0, 1.0)

    def no_down_probability(self, t: int) -> float:
        """Scalar ``P_ND(t)`` — memoised (accepts any non-negative integer)."""
        if t < 0:
            raise ValueError(f"t must be >= 0, got {t}")
        if t == 0:
            return 1.0
        cached = self._no_down_scalar.get(t)
        if cached is None:
            if t <= self._no_down_cache.size:
                cached = float(self._no_down_cache[t - 1])
            elif self._nd_coefficients is not None:
                value = (
                    self._nd_coefficients[0] * self._nd_eigenvalues[0] ** t
                    + self._nd_coefficients[1] * self._nd_eigenvalues[1] ** t
                )
                cached = float(np.clip(value, 0.0, 1.0))
            else:
                cached = self.model.no_down_probability(t)
            self._no_down_scalar[t] = cached
        return cached

    # ------------------------------------------------------------------
    def can_fail(self) -> bool:
        """Whether this processor has a non-zero probability of going DOWN."""
        return self.model.can_fail()

    def up_stationary_no_failure(self) -> float:
        """Stationary probability of UP in the {UP, RECLAIMED} sub-chain.

        Only meaningful when the processor cannot fail; used by the Kac-formula
        special case of the group analysis (mean recurrence time of the
        all-UP state is the inverse of its stationary probability).
        """
        sub = self.model.up_reclaimed_submatrix()
        # Solve pi M = pi on the 2-state chain.
        p_ur = sub[0, 1]
        p_ru = sub[1, 0]
        if p_ur + p_ru == 0:
            return 1.0  # the processor never leaves UP
        return p_ru / (p_ur + p_ru)

    def describe(self) -> str:
        return (
            f"WorkerAnalysis(w={self.speed}, lambda1={self.lambda1:.4f}, "
            f"can_fail={self.can_fail()})"
        )
