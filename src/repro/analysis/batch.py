"""Batched evaluation of the Theorem 5.1 quantities over many worker sets.

The heuristics of Section VI evaluate *frontiers* of candidate worker sets:
the incremental allocator scores one candidate per eligible worker at every
greedy step, and the proactive heuristics re-score the current and candidate
configurations at every slot.  :class:`~repro.analysis.group.GroupAnalysis`
computes each set one at a time — a dozen small NumPy calls per set — so for
batch sizes typical of a 20-worker platform the Python/NumPy call overhead
dominates the arithmetic.

:class:`BatchGroupAnalysis` computes ``Eu / A / P₊ / E_c`` for a whole
``(num_candidates, num_workers)`` membership batch at once:

* the per-worker series ``P^{(q)}_{u →t u}`` live on a single shared
  truncation-horizon grid (the per-worker caches of
  :class:`~repro.analysis.single.WorkerAnalysis`, grown once to the largest
  horizon of the batch and sliced per candidate);
* candidates are grouped by truncation horizon and each group's prefix
  products ``Π_q P^{(q)}_{u →t u}`` are formed as one ``(group, horizon)``
  matrix, multiplied worker-major in ascending worker order;
* the per-candidate ``λ₁`` products (which set the horizons) and the
  stationary products of the no-failure closed form are likewise reduced
  worker-major over the batch.

**Bit-exactness.**  The batched kernels replay *exactly* the floating-point
operations of the scalar path: worker-major ascending multiplication matches
the scalar loop over ``sorted(workers)``, NumPy's pairwise summation along
the last axis of a C-contiguous matrix is identical per-row to the 1-D sums
the scalar path performs, and every elementwise combination uses the same
expression shape.  A :class:`GroupQuantities` extracted from a batch row is
therefore bit-identical to what ``GroupAnalysis.quantities`` returns for the
same set, which is what lets the heuristics route their hot paths through
the batch kernels without perturbing a single scheduling decision (pinned by
``tests/analysis/test_batch.py`` and
``tests/scheduling/test_batch_equivalence.py``).

The log-domain per-worker ``λ₁`` reduction (`log_lambda_products`) is kept
for diagnostics and for sizing the shared grid cheaply; the horizons
themselves always come from the exact sequential products so they match the
scalar path decision for decision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Union

import numpy as np

from repro.analysis.group import (
    DEFAULT_MAX_HORIZON,
    _NO_FAILURE_TOLERANCE,
    ExpectationMode,
    GroupQuantities,
    truncation_horizon,
)
from repro.analysis.single import WorkerAnalysis

__all__ = ["BatchGroupQuantities", "BatchGroupAnalysis"]

#: Soft cap on the number of matrix elements materialised per horizon group;
#: larger groups are processed in row chunks (chunking is row-independent, so
#: it cannot affect the per-candidate results).
_CHUNK_ELEMENTS = 4_194_304


@dataclass(frozen=True)
class BatchGroupQuantities:
    """Structure-of-arrays form of :class:`GroupQuantities` for a batch.

    All arrays are indexed by candidate position in the evaluated batch.
    ``__getitem__`` materialises the scalar :class:`GroupQuantities` of one
    candidate (bit-identical to the scalar path, see module docstring).
    """

    eu: np.ndarray
    a: np.ndarray
    p_plus: np.ndarray
    e_c: np.ndarray
    horizon: np.ndarray
    can_fail: np.ndarray

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.eu.shape[0])

    def __getitem__(self, index: int) -> GroupQuantities:
        return GroupQuantities(
            eu=float(self.eu[index]),
            a=float(self.a[index]),
            p_plus=float(self.p_plus[index]),
            e_c=float(self.e_c[index]),
            horizon=int(self.horizon[index]),
            can_fail=bool(self.can_fail[index]),
        )

    # ------------------------------------------------------------------
    def success_probability(self, workloads: Union[int, np.ndarray]) -> np.ndarray:
        """Vectorised ``P₊^{W−1}`` per candidate (broadcasts *workloads*).

        Matches :meth:`GroupQuantities.success_probability` to within one ulp
        (NumPy's ``power`` may round differently from Python's ``**``); the
        heuristics' pinned paths extract scalar quantities instead.
        """
        workloads = np.broadcast_to(
            np.asarray(workloads, dtype=np.int64), self.eu.shape
        )
        if np.any(workloads < 0):
            raise ValueError("workloads must be >= 0")
        extra = np.maximum(workloads - 1, 0)
        with np.errstate(invalid="ignore"):
            result = np.power(self.p_plus, extra.astype(float))
        return np.where(workloads <= 1, 1.0, result)

    def expected_time(
        self,
        workloads: Union[int, np.ndarray],
        mode: ExpectationMode = ExpectationMode.PAPER,
    ) -> np.ndarray:
        """Vectorised ``E^(S)(W)`` per candidate (same one-ulp caveat)."""
        workloads = np.broadcast_to(
            np.asarray(workloads, dtype=np.int64), self.eu.shape
        )
        if np.any(workloads < 0):
            raise ValueError("workloads must be >= 0")
        extra = np.maximum(workloads - 1, 0).astype(float)
        with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
            if mode is ExpectationMode.PAPER:
                values = (1.0 + extra * self.e_c) / np.power(self.p_plus, extra)
            elif mode is ExpectationMode.RENEWAL:
                values = 1.0 + extra * self.e_c / self.p_plus
            else:
                raise ValueError(f"unknown expectation mode {mode!r}")
        values = np.where(self.p_plus <= 0.0, math.inf, values)
        values = np.where(workloads == 1, 1.0, values)
        return np.where(workloads == 0, 0.0, values)

    def expected_gap(self) -> np.ndarray:
        """Vectorised conditional gap ``E_c / P₊`` per candidate."""
        with np.errstate(divide="ignore", invalid="ignore"):
            gaps = self.e_c / self.p_plus
        return np.where(self.p_plus <= 0.0, math.inf, gaps)


class BatchGroupAnalysis:
    """Batched counterpart of :class:`~repro.analysis.group.GroupAnalysis`.

    Parameters mirror :class:`GroupAnalysis`; the per-worker series caches
    live in the shared :class:`WorkerAnalysis` objects, so a
    ``BatchGroupAnalysis`` built from a ``GroupAnalysis``'s workers reuses
    (and grows) the same shared truncation-horizon grid.
    """

    def __init__(
        self,
        workers: Sequence[WorkerAnalysis],
        *,
        epsilon: float = 1e-6,
        max_horizon: int = DEFAULT_MAX_HORIZON,
    ) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be > 0, got {epsilon}")
        if max_horizon < 1:
            raise ValueError(f"max_horizon must be >= 1, got {max_horizon}")
        self._workers = list(workers)
        self.epsilon = float(epsilon)
        self.max_horizon = int(max_horizon)
        self._lambda1 = np.array([w.lambda1 for w in self._workers])
        self._worker_can_fail = np.array([w.can_fail() for w in self._workers])
        self._horizon_memo: Dict[float, int] = {}
        self._stationary: Optional[np.ndarray] = None
        # Persistent shared grid: row q holds worker q's up-return series on
        # the common horizon axis.  Grown geometrically and filled lazily per
        # worker, so steady-state batch calls perform no series copies at all.
        self._grid = np.empty((len(self._workers), 0))
        self._grid_filled = np.zeros(len(self._workers), dtype=bool)

    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return len(self._workers)

    # ------------------------------------------------------------------
    def membership(self, sets: Sequence[Iterable[int]]) -> np.ndarray:
        """``(num_candidates, num_workers)`` boolean membership matrix."""
        matrix = np.zeros((len(sets), len(self._workers)), dtype=bool)
        if sets:
            try:  # uniform-size batches (e.g. frontiers) fill in one shot
                ids = np.asarray(sets, dtype=np.int64)
            except (TypeError, ValueError):
                ids = None
            if ids is not None and ids.ndim == 2 and ids.size:
                if ids.min() < 0 or ids.max() >= len(self._workers):
                    out_of_range = ids.min() if ids.min() < 0 else ids.max()
                    raise IndexError(
                        f"worker id {out_of_range} out of range for "
                        f"{len(self._workers)} workers"
                    )
                matrix[np.arange(len(sets))[:, None], ids] = True
                return matrix
        for row, workers in enumerate(sets):
            for worker in workers:
                worker = int(worker)
                if worker < 0 or worker >= len(self._workers):
                    raise IndexError(
                        f"worker id {worker} out of range for {len(self._workers)} workers"
                    )
                matrix[row, worker] = True
        return matrix

    def log_lambda_products(self, membership: np.ndarray) -> np.ndarray:
        """Log-domain ``Σ_q∈S ln λ₁^{(q)}`` per candidate (diagnostics/sizing).

        One matmul instead of a worker-major reduction; used to bound grid
        sizes cheaply.  The exact (scalar-order) products drive the horizons.
        """
        with np.errstate(divide="ignore"):
            logs = np.log(self._lambda1)
        return np.asarray(membership, dtype=float) @ logs

    # ------------------------------------------------------------------
    def quantities(
        self, sets_or_membership: Union[np.ndarray, Sequence[Iterable[int]]]
    ) -> BatchGroupQuantities:
        """Batched Theorem 5.1 quantities for all candidates.

        Accepts either a boolean ``(num_candidates, num_workers)`` membership
        matrix or a sequence of worker-id collections.
        """
        if isinstance(sets_or_membership, np.ndarray):
            membership = np.asarray(sets_or_membership, dtype=bool)
            if membership.ndim != 2 or membership.shape[1] != len(self._workers):
                raise ValueError(
                    f"membership must have shape (num_candidates, {len(self._workers)}), "
                    f"got {membership.shape}"
                )
        else:
            membership = self.membership(list(sets_or_membership))
        return self._compute(membership)

    # ------------------------------------------------------------------
    def _horizon(self, lam: float) -> int:
        cached = self._horizon_memo.get(lam)
        if cached is None:
            cached = truncation_horizon(lam, self.epsilon, max_horizon=self.max_horizon)
            self._horizon_memo[lam] = cached
        return cached

    def _compute(self, membership: np.ndarray) -> BatchGroupQuantities:
        count, _ = membership.shape
        eu = np.full(count, math.inf)
        a = np.full(count, math.inf)
        p_plus = np.ones(count)
        e_c = np.ones(count)
        horizon = np.zeros(count, dtype=np.int64)
        row_can_fail = (membership & self._worker_can_fail).any(axis=1)
        if count == 0:
            return BatchGroupQuantities(
                eu=eu, a=a, p_plus=p_plus, e_c=e_c, horizon=horizon,
                can_fail=row_can_fail,
            )

        # Flattened member lists: `cols[offsets[i]:offsets[i+1]]` are row i's
        # workers in ascending order (np.nonzero is row-major), which is the
        # very order the scalar path multiplies in.  All per-row products are
        # then single `multiply.reduceat` calls — strictly sequential per
        # segment, hence bit-identical to the scalar loops.
        counts = membership.sum(axis=1)
        _, cols = np.nonzero(membership)
        offsets = np.zeros(count + 1, dtype=np.intp)
        np.cumsum(counts, out=offsets[1:])
        empty = counts == 0

        # --- closed-form rows: no member can fail (Kac's formula) ---------
        no_failure = ~row_can_fail & ~empty
        if no_failure.any():
            if self._stationary is None:
                self._stationary = np.array(
                    [w.up_stationary_no_failure() for w in self._workers]
                )
            # The 1.0 sentinel keeps reduceat in-bounds for empty trailing
            # segments; values of non-selected rows are discarded.
            nf_rows = np.flatnonzero(no_failure)
            stationary = np.multiply.reduceat(
                np.append(self._stationary[cols], 1.0), offsets[:-1]
            )[nf_rows]
            with np.errstate(divide="ignore"):
                values = np.divide(1.0, stationary)
            e_c[nf_rows] = np.where(stationary <= 0.0, math.inf, values)

        # --- truncated-series rows ----------------------------------------
        failing = np.flatnonzero(row_can_fail)
        if failing.size:
            lam_all = np.multiply.reduceat(
                np.append(self._lambda1[cols], 1.0), offsets[:-1]
            )
            lam = np.minimum(lam_all[failing], 1.0 - _NO_FAILURE_TOLERANCE)
            horizons = np.fromiter(
                (self._horizon(float(value)) for value in lam),
                dtype=np.int64,
                count=failing.size,
            )
            eu_f = np.empty(failing.size)
            a_f = np.empty(failing.size)
            # Shared grid: every involved worker's series up to the largest
            # horizon; groups slice prefixes (position-wise identical to the
            # per-set arrays the scalar path builds, because the series are
            # per-t closed forms).
            h_max = int(horizons.max())
            t_all = np.arange(1, h_max + 1, dtype=float)
            grid = self._ensure_grid(h_max, np.unique(cols))
            sizes = counts[failing]
            # Candidates sharing (horizon, set size) form one gather/reduce
            # sub-batch; sorting brings them together.
            order = np.lexsort((sizes, horizons))
            start = 0
            while start < order.size:
                h = int(horizons[order[start]])
                size = int(sizes[order[start]])
                end = start
                while (
                    end < order.size
                    and horizons[order[end]] == h
                    and sizes[order[end]] == size
                ):
                    end += 1
                group_rows = order[start:end]
                self._series_sums(
                    cols,
                    offsets[failing[group_rows]],
                    group_rows,
                    h,
                    size,
                    grid,
                    t_all,
                    eu_f,
                    a_f,
                )
                start = end
            p_plus_f = eu_f / (1.0 + eu_f)
            e_c_f = a_f * (1.0 - p_plus_f) / (1.0 + eu_f)
            eu[failing] = eu_f
            a[failing] = a_f
            p_plus[failing] = p_plus_f
            e_c[failing] = e_c_f
            horizon[failing] = horizons

        return BatchGroupQuantities(
            eu=eu, a=a, p_plus=p_plus, e_c=e_c, horizon=horizon, can_fail=row_can_fail
        )

    def _ensure_grid(self, h_max: int, involved: np.ndarray) -> np.ndarray:
        """Grow/fill the persistent series grid to cover *h_max* and *involved*."""
        if h_max > self._grid.shape[1]:
            capacity = max(h_max, (self._grid.shape[1] * 3) // 2)
            self._grid = np.empty((len(self._workers), capacity))
            self._grid_filled[:] = False
        capacity = self._grid.shape[1]
        for worker in involved:
            if not self._grid_filled[worker]:
                self._grid[worker] = self._workers[worker].up_return_array(capacity)
                self._grid_filled[worker] = True
        return self._grid

    def _series_sums(
        self,
        cols: np.ndarray,
        row_offsets: np.ndarray,
        group_rows: np.ndarray,
        h: int,
        size: int,
        grid: np.ndarray,
        t_all: np.ndarray,
        eu_out: np.ndarray,
        a_out: np.ndarray,
    ) -> None:
        """``Eu`` / ``A`` for one (horizon, set size) sub-batch of candidates.

        The member series of every candidate are gathered from the shared
        grid as one ``(rows, size, h)`` tensor and reduced multiplicatively
        over the member axis.  ``multiply.reduce`` is a strictly sequential
        in-order reduction and the gathered members are in ascending worker
        order (``np.nonzero`` is row-major), so each row replays the exact
        operation sequence of ``GroupAnalysis._compute_with_failures``.
        """
        t_values = t_all[:h]
        grid_h = grid[:, :h]
        member_ids = cols[row_offsets[:, None] + np.arange(size)]
        rows_per_chunk = max(1, _CHUNK_ELEMENTS // max(h * size, 1))
        for start in range(0, group_rows.size, rows_per_chunk):
            chunk = group_rows[start : start + rows_per_chunk]
            gathered = grid_h[member_ids[start : start + chunk.size]]
            product = np.multiply.reduce(gathered, axis=1)
            eu_out[chunk] = product.sum(axis=1)
            a_out[chunk] = (t_values * product).sum(axis=1)
