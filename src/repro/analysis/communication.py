"""Communication-phase estimates of Section V-B.

Exact expressions for the communication phase are out of reach because of
the ``ncom`` constraint (at most ``ncom`` simultaneous master transfers), so
the paper uses a coarser estimate.  For a set ``S`` of enrolled workers where
worker ``P_q`` still needs ``n_q`` slots of communication (program and/or
task data):

* when ``|S| ≤ ncom`` every worker can hold a master channel whenever it is
  UP, so the per-worker expected communication time is the single-worker
  expectation ``E^{(P_q)}(n_q)`` of Section V-A and

  ``E_comm^(S) = max_q E^{(P_q)}(n_q)``;

* when ``|S| > ncom`` the master's bandwidth itself may be the bottleneck and

  ``E_comm^(S) = max( max_q E^{(P_q)}(n_q),  Σ_q n_q / ncom )``.

The success probability of the communication phase is estimated as

  ``P_comm^(S) = Π_q P^{(P_q)}_{ND}(E_comm^(S))``

i.e. the probability that no enrolled worker goes DOWN during the estimated
communication phase (rounded up to whole slots).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.analysis.group import ExpectationMode, GroupAnalysis

__all__ = [
    "CommunicationEstimate",
    "estimate_communication",
    "estimate_communication_batch",
]


@dataclass(frozen=True)
class CommunicationEstimate:
    """Estimated duration and success probability of a communication phase.

    Attributes
    ----------
    expected_time:
        ``E_comm^(S)`` in slots (0.0 when nothing needs to be transferred).
    success_probability:
        ``P_comm^(S)``.
    bottleneck_master:
        True when the ``Σ n_q / ncom`` term (master bandwidth) dominated the
        per-worker term — useful diagnostics for the bandwidth-ablation
        benchmark.
    total_slots:
        ``Σ_q n_q`` — total master-slots of transfer work.
    """

    expected_time: float
    success_probability: float
    bottleneck_master: bool
    total_slots: int


def estimate_communication(
    analysis: GroupAnalysis,
    comm_slots: Mapping[int, int],
    *,
    ncom: int,
    mode: ExpectationMode = ExpectationMode.PAPER,
) -> CommunicationEstimate:
    """Estimate the communication phase for the workers in *comm_slots*.

    Parameters
    ----------
    analysis:
        The per-platform :class:`GroupAnalysis` (provides the single-worker
        expectations and no-DOWN probabilities).
    comm_slots:
        Mapping worker id -> ``n_q`` (slots of master communication still
        needed).  Workers with ``n_q = 0`` still participate in
        ``P_comm`` (they must survive the phase) but do not contribute to
        its duration.
    ncom:
        The master's simultaneous-transfer bound.
    mode:
        Which ``E^(S)(W)`` estimator to use for the per-worker expectations.
    """
    if ncom < 1:
        raise ValueError(f"ncom must be >= 1, got {ncom}")
    slots: Dict[int, int] = {}
    for worker, value in comm_slots.items():
        value = int(value)
        if value < 0:
            raise ValueError(f"communication slots for worker {worker} must be >= 0")
        slots[int(worker)] = value

    total_slots = sum(slots.values())
    if not slots or total_slots == 0:
        return CommunicationEstimate(
            expected_time=0.0,
            success_probability=1.0,
            bottleneck_master=False,
            total_slots=0,
        )

    per_worker_expectation = 0.0
    for worker, needed in slots.items():
        if needed == 0:
            continue
        quantities = analysis.quantities((worker,))
        per_worker_expectation = max(
            per_worker_expectation, quantities.expected_time(needed, mode)
        )

    expected = per_worker_expectation
    bottleneck_master = False
    if len(slots) > ncom:
        bandwidth_bound = total_slots / float(ncom)
        if bandwidth_bound > expected:
            expected = bandwidth_bound
            bottleneck_master = True

    if math.isinf(expected):
        return CommunicationEstimate(
            expected_time=math.inf,
            success_probability=0.0,
            bottleneck_master=bottleneck_master,
            total_slots=total_slots,
        )

    duration = int(math.ceil(expected))
    probability = 1.0
    for worker in slots:
        probability *= analysis.worker(worker).no_down_probability(duration)
    return CommunicationEstimate(
        expected_time=float(expected),
        success_probability=float(probability),
        bottleneck_master=bottleneck_master,
        total_slots=total_slots,
    )


def estimate_communication_batch(
    analysis: GroupAnalysis,
    comm_slots_batch: Sequence[Mapping[int, int]],
    *,
    ncom: int,
    mode: ExpectationMode = ExpectationMode.PAPER,
) -> List[CommunicationEstimate]:
    """Estimate many communication phases at once.

    The dominant cost of a cold communication estimate is the single-worker
    ``E^{(P_q)}(n_q)`` expectations, which go through the group-quantity
    machinery one worker set at a time.  This batched entry point prefetches
    every single-worker set appearing in the batch through
    :meth:`GroupAnalysis.quantities_batch` (one vectorised computation, shared
    cache) and then forms each estimate with the exact per-phase arithmetic of
    :func:`estimate_communication` — the returned estimates are bit-identical
    to calling the scalar function in a loop.
    """
    needed = sorted(
        {
            int(worker)
            for slots in comm_slots_batch
            for worker, value in slots.items()
            if int(value) > 0
        }
    )
    if needed:
        analysis.quantities_batch([(worker,) for worker in needed])
    return [
        estimate_communication(analysis, slots, ncom=ncom, mode=mode)
        for slots in comm_slots_batch
    ]
