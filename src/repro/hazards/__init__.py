"""Hazard substrates: degradation, correlated outages, and pool churn.

This subpackage leaves the paper's per-worker-independent comfort zone
(ROADMAP item 3) with three availability substrates real desktop grids and
fleets actually exhibit:

* :class:`DegradationAvailabilityModel` — per-worker discrete wear levels
  advanced by usage, with condition-based preventive maintenance and
  corrective repair sojourns (a drop-in
  :class:`~repro.availability.model.AvailabilityModel`);
* :class:`DomainOutageProcess` — correlated outages: a platform-level event
  process taking whole failure domains (racks, power domains) ``DOWN``
  simultaneously, applied as a :class:`GroupHazardProcess` overlay on every
  materialised availability window;
* :class:`ChurnProcess` — non-stationary pool churn: workers enter and
  leave the pool mid-application via a birth–death overlay.

All three are registered in the availability registry (``degradation(...)``,
``correlated(...)``, ``churn(...)``), addressable from the campaign TOML
grammar, fittable from traces via :mod:`repro.traces.fit`, and observable
through the metrics collector series.
"""

from repro.hazards.degradation import DegradationAvailabilityModel, sojourn_distribution
from repro.hazards.process import ChurnProcess, DomainOutageProcess, GroupHazardProcess

__all__ = [
    "ChurnProcess",
    "DegradationAvailabilityModel",
    "DomainOutageProcess",
    "GroupHazardProcess",
    "sojourn_distribution",
]
