"""Platform-level hazard processes: correlated outages and pool churn.

The availability layer's original contract is strictly per-worker: each
:class:`~repro.availability.model.AvailabilityModel` owns one worker's state
chain and consumes one private RNG stream.  Real desktop grids violate that
independence in two important ways:

* **Correlated outages** — a shared rack, switch, or power domain fails and
  takes a *group* of workers down simultaneously.
* **Pool churn** — hosts enrol in and retire from the pool mid-application,
  so the set of live workers is non-stationary.

Both are modelled here as :class:`GroupHazardProcess` overlays.  A hazard
process does not replace the per-worker models; it *post-processes* each
materialised availability window, forcing ``DOWN`` onto the rows of affected
workers for the duration of each event.  The three block consumers — the
solo engine's prefetch (:meth:`SimulationEngine._fetch_block`), the
multi-heuristic :class:`~repro.simulation.multirun.SharedBlockSource`, and
the experiment layer's trace bank — all apply the overlay exactly once per
window, immediately after sampling it, so every path sees the same
realisation bit-for-bit.

Determinism contract
--------------------
``reset(rng)`` consumes exactly one integer from the run's dedicated hazard
master stream (the third element of
:func:`~repro.utils.rng.derive_run_streams` with ``hazard=True``) and spawns
one child generator per hazard *unit* (domain, or worker for churn).  Each
unit then run-fills its own alternating-renewal timeline from its private
stream, so the realisation is

* independent of the worker and scheduler streams (adding a hazard never
  perturbs the base chains), and
* independent of how the horizon is split into windows (``overlay`` over one
  4096-slot window equals ``overlay`` over the same span in any sequence of
  smaller chunks) — pinned by ``tests/hazards/test_processes.py``.

``overlay`` must be called with strictly sequential, gap-free windows
starting at slot 0; out-of-order calls raise
:class:`~repro.exceptions.SimulationError`.
"""

from __future__ import annotations

import abc
from typing import List, Optional

import numpy as np

from repro.exceptions import InvalidModelError, SimulationError
from repro.types import DOWN
from repro.utils.rng import spawn_generators

__all__ = ["GroupHazardProcess", "DomainOutageProcess", "ChurnProcess"]

_DOWN_CODE = np.int8(int(DOWN))


class GroupHazardProcess(abc.ABC):
    """Alternating-renewal overlay shared by a group of workers.

    Subclasses model *units* (outage domains, individual churning hosts)
    that alternate between a healthy phase and an outage phase.  During an
    outage phase every member worker of the unit is forced ``DOWN``
    regardless of what its private availability chain sampled.

    Subclasses provide the structure (:attr:`num_units`, :meth:`members`)
    and the law (:meth:`_initial_outage`, :meth:`_sojourn`); this base class
    owns the run-fill machinery and the determinism bookkeeping.

    Example:
        >>> from repro import ChurnProcess, GroupHazardProcess
        >>> process = ChurnProcess(4)   # one unit per churning worker
        >>> isinstance(process, GroupHazardProcess), process.num_units
        (True, 4)
    """

    def __init__(self, num_workers: int, num_units: int) -> None:
        if num_workers < 1:
            raise InvalidModelError(f"num_workers must be >= 1, got {num_workers}")
        if num_units < 1:
            raise InvalidModelError(f"num_units must be >= 1, got {num_units}")
        self.num_workers = int(num_workers)
        self.num_units = int(num_units)
        self._unit_rngs: Optional[List[np.random.Generator]] = None
        self._outage: List[bool] = []
        self._remaining: List[int] = []
        self._cursor = 0

    # -- structure and law (subclass responsibility) -------------------
    @abc.abstractmethod
    def members(self, unit: int) -> np.ndarray:
        """Worker ids belonging to *unit* (1-D integer array)."""

    @abc.abstractmethod
    def _initial_outage(self, rng: np.random.Generator) -> bool:
        """Whether *unit* starts (slot 0) inside an outage phase."""

    @abc.abstractmethod
    def _sojourn(self, outage: bool, rng: np.random.Generator) -> int:
        """Draw the length (>= 1 slots) of a phase that just started."""

    @abc.abstractmethod
    def describe(self) -> str:
        """One-line human-readable summary of the process."""

    # -- lifecycle -----------------------------------------------------
    def reset(self, rng: np.random.Generator) -> None:
        """Re-seed the process for a new run from the hazard master stream.

        Consumes exactly one integer from *rng* and spawns one private
        child generator per unit; each unit then draws its initial phase
        and that phase's sojourn from its own stream.
        """
        self._unit_rngs = spawn_generators(int(rng.integers(0, 2**62)), self.num_units)
        self._outage = []
        self._remaining = []
        for unit_rng in self._unit_rngs:
            outage = bool(self._initial_outage(unit_rng))
            self._outage.append(outage)
            self._remaining.append(int(self._sojourn(outage, unit_rng)))
        self._cursor = 0

    def overlay(self, start: int, block: np.ndarray) -> None:
        """Force ``DOWN`` onto member rows of *block* during outage phases.

        *block* is the ``(num_workers, length)`` ``int8`` window covering
        slots ``[start, start + length)``; it is mutated in place.  Windows
        must be consumed sequentially from slot 0 (call :meth:`reset`
        first).
        """
        if self._unit_rngs is None:
            raise SimulationError("GroupHazardProcess.overlay before reset()")
        if start != self._cursor:
            raise SimulationError(
                f"hazard overlay must consume sequential windows: expected "
                f"start {self._cursor}, got {start}"
            )
        if block.ndim != 2 or block.shape[0] != self.num_workers:
            raise SimulationError(
                f"hazard overlay got a block of shape {block.shape}, expected "
                f"({self.num_workers}, length)"
            )
        length = block.shape[1]
        for unit in range(self.num_units):
            mask = self._unit_mask(unit, length)
            if mask.any():
                rows = self.members(unit)
                block[np.ix_(rows, np.flatnonzero(mask))] = _DOWN_CODE
        self._cursor += length

    # -- run fill ------------------------------------------------------
    def _unit_mask(self, unit: int, length: int) -> np.ndarray:
        """Advance *unit* by *length* slots; return its outage mask."""
        rng = self._unit_rngs[unit]
        mask = np.zeros(length, dtype=bool)
        outage = self._outage[unit]
        remaining = self._remaining[unit]
        position = 0
        while position < length:
            if remaining <= 0:
                outage = not outage
                remaining = int(self._sojourn(outage, rng))
            take = min(remaining, length - position)
            if outage:
                mask[position : position + take] = True
            remaining -= take
            position += take
        self._outage[unit] = outage
        self._remaining[unit] = remaining
        return mask

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


class DomainOutageProcess(GroupHazardProcess):
    """Per-domain correlated outage events over a worker group map.

    Workers are partitioned round-robin into *domains* shared failure
    domains (worker ``w`` belongs to domain ``w % domains``), modelling
    racks or power domains.  Each domain independently alternates between a
    healthy phase of geometric mean ``1/rate`` slots and an outage phase of
    geometric mean ``mean_outage`` slots; during an outage every member is
    simultaneously ``DOWN``.

    Parameters
    ----------
    num_workers:
        Size of the worker pool the process overlays.
    domains:
        Number of shared failure domains (clipped to ``num_workers``).
    rate:
        Per-slot probability that a healthy domain starts an outage
        (``0 < rate <= 1``); inter-event gaps are geometric with mean
        ``1/rate`` slots.
    mean_outage:
        Mean outage duration in slots (``>= 1``); durations are geometric.

    Example:
        >>> from repro import DomainOutageProcess
        >>> process = DomainOutageProcess(8, domains=4, rate=0.002)
        >>> [int(w) for w in process.members(0)]   # workers in domain 0
        [0, 4]

        Campaigns and :func:`repro.api.run` build it from the expression
        grammar:

        >>> from repro import api
        >>> result = api.run("IE", m=4, ncom=5, wmin=1, seed=1,
        ...                  availability="correlated(domains=4, rate=0.002)")
        >>> result.success
        True
    """

    def __init__(
        self,
        num_workers: int,
        *,
        domains: int = 4,
        rate: float = 0.002,
        mean_outage: float = 8.0,
    ) -> None:
        domains = int(domains)
        if domains < 1:
            raise InvalidModelError(f"domains must be >= 1, got {domains}")
        if not 0.0 < rate <= 1.0:
            raise InvalidModelError(f"rate must be in (0, 1], got {rate}")
        if mean_outage < 1.0:
            raise InvalidModelError(f"mean_outage must be >= 1, got {mean_outage}")
        super().__init__(num_workers, min(domains, num_workers))
        self.domains = self.num_units
        self.rate = float(rate)
        self.mean_outage = float(mean_outage)
        self._members = [
            np.arange(unit, num_workers, self.domains) for unit in range(self.domains)
        ]

    def members(self, unit: int) -> np.ndarray:
        """Worker indices of failure domain *unit* (round-robin partition)."""
        return self._members[unit]

    def _initial_outage(self, rng: np.random.Generator) -> bool:
        # Platforms start healthy: slot 0 is the moment the application is
        # launched, which an operator would not do mid-outage.
        return False

    def _sojourn(self, outage: bool, rng: np.random.Generator) -> int:
        if outage:
            return int(rng.geometric(min(1.0, 1.0 / self.mean_outage)))
        return int(rng.geometric(self.rate))

    def describe(self) -> str:
        """Human-readable parameter summary (``repro models`` listing)."""
        return (
            f"correlated outages: {self.domains} domains over "
            f"{self.num_workers} workers, rate={self.rate:g}/slot, "
            f"mean outage {self.mean_outage:g} slots"
        )


class ChurnProcess(GroupHazardProcess):
    """Birth–death pool churn: workers enter and leave mid-application.

    Every worker is its own unit, alternating between an *enrolled* phase
    (geometric mean ``mean_present`` slots) and an *absent* phase (geometric
    mean ``mean_absent`` slots).  An absent worker is rendered ``DOWN``:
    leaving the pool destroys the application program and any staged data,
    exactly like a crash, and schedulers already treat ``DOWN`` workers as
    unusable — so the changing active column set is surfaced to them through
    the state blocks with no scheduler-side API change.

    Parameters
    ----------
    num_workers:
        Size of the (maximal) worker pool.
    mean_present:
        Mean enrolled sojourn in slots (``>= 1``).
    mean_absent:
        Mean absent sojourn in slots (``>= 1``).
    present0:
        Probability that a worker is enrolled at slot 0 (``0 < present0 <=
        1``); the rest of the pool trickles in later (birth side of the
        birth–death overlay).

    Example:
        >>> from repro import ChurnProcess
        >>> process = ChurnProcess(4, mean_present=400, mean_absent=150)
        >>> process.num_units          # every worker churns independently
        4
        >>> from repro import api
        >>> api.run("IE", m=4, ncom=5, wmin=1, seed=1,
        ...         availability="churn(mean_present=400, mean_absent=150)").success
        True
    """

    def __init__(
        self,
        num_workers: int,
        *,
        mean_present: float = 400.0,
        mean_absent: float = 150.0,
        present0: float = 0.8,
    ) -> None:
        if mean_present < 1.0:
            raise InvalidModelError(f"mean_present must be >= 1, got {mean_present}")
        if mean_absent < 1.0:
            raise InvalidModelError(f"mean_absent must be >= 1, got {mean_absent}")
        if not 0.0 < present0 <= 1.0:
            raise InvalidModelError(f"present0 must be in (0, 1], got {present0}")
        super().__init__(num_workers, num_workers)
        self.mean_present = float(mean_present)
        self.mean_absent = float(mean_absent)
        self.present0 = float(present0)
        self._members = [np.array([unit]) for unit in range(num_workers)]

    def members(self, unit: int) -> np.ndarray:
        """The singleton worker behind churn unit *unit*."""
        return self._members[unit]

    def _initial_outage(self, rng: np.random.Generator) -> bool:
        return bool(rng.random() >= self.present0)

    def _sojourn(self, outage: bool, rng: np.random.Generator) -> int:
        if outage:
            return int(rng.geometric(min(1.0, 1.0 / self.mean_absent)))
        return int(rng.geometric(min(1.0, 1.0 / self.mean_present)))

    def describe(self) -> str:
        """Human-readable parameter summary (``repro models`` listing)."""
        return (
            f"pool churn over {self.num_workers} workers: enrolled "
            f"~{self.mean_present:g} slots, absent ~{self.mean_absent:g} "
            f"slots, P(enrolled at 0)={self.present0:g}"
        )
