"""Degradation availability: wear levels, preventive and corrective repair.

Models a worker as a machine that *wears out with use* (simantha-style
discrete degradation states) rather than flipping states memorylessly:

* While in service (``UP``) the worker advances one **wear level** after a
  geometric number of slots (per-slot increment probability ``wear_rate``).
* At each increment at or above ``pm_level`` a **condition-based preventive
  maintenance** (PM) opportunity arises and is taken with probability
  ``compliance``: the worker is pulled into ``RECLAIMED`` (the owner
  services it; program and data survive) for a sojourn drawn from
  ``pm_time``, after which wear resets to zero.
* If wear reaches ``fail_level`` the worker breaks: ``DOWN`` (program and
  data lost) for a **corrective maintenance** (CM) sojourn drawn from
  ``cm_time``, then back in service with zero wear.

The process is a per-worker :class:`~repro.availability.model.AvailabilityModel`
— unlike the overlays in :mod:`repro.hazards.process` it needs no platform
plumbing — and honours the library's stream-equivalence contract: a single
``_next_segment`` routine drives both :meth:`next_state` and the
run-length-filling :meth:`sample_block`, so both paths consume the RNG in
exactly the same order (pinned by ``tests/hazards/test_degradation.py``).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.availability.model import AvailabilityModel
from repro.availability.semi_markov import (
    DeterministicHolding,
    GeometricHolding,
    HoldingTimeDistribution,
    LogNormalHolding,
    WeibullHolding,
)
from repro.exceptions import InvalidModelError
from repro.types import DOWN, RECLAIMED, UP, ProcessorState

__all__ = ["DegradationAvailabilityModel", "sojourn_distribution"]

#: Sojourn families accepted by :func:`sojourn_distribution`.
SOJOURN_KINDS = ("geometric", "deterministic", "lognormal", "weibull")


def sojourn_distribution(kind: str, mean: float) -> HoldingTimeDistribution:
    """Build a repair-sojourn distribution of *kind* with the given *mean*.

    ``lognormal`` uses a fixed shape (``sigma = 0.5``) and ``weibull`` a
    fixed heavy-ish tail (``shape = 1.5``); both are solved for the scale
    that yields *mean*.  This keeps the registry grammar down to one number
    per sojourn while still covering the qualitative families reported for
    desktop-grid repair times.
    """
    if mean < 1.0:
        raise InvalidModelError(f"sojourn mean must be >= 1 slot, got {mean}")
    kind = str(kind).lower()
    if kind == "geometric":
        return GeometricHolding(1.0 / mean)
    if kind == "deterministic":
        return DeterministicHolding(int(round(mean)))
    if kind == "lognormal":
        sigma = 0.5
        return LogNormalHolding(math.log(mean) - sigma**2 / 2.0, sigma)
    if kind == "weibull":
        shape = 1.5
        return WeibullHolding(shape, mean / math.gamma(1.0 + 1.0 / shape))
    raise InvalidModelError(
        f"unknown sojourn distribution {kind!r}; expected one of "
        f"{', '.join(SOJOURN_KINDS)}"
    )


class DegradationAvailabilityModel(AvailabilityModel):
    """Wear-level degradation with condition-based PM and corrective repair.

    Parameters
    ----------
    wear_rate:
        Per-UP-slot probability of advancing one wear level (``0 < wear_rate
        <= 1``); the time between increments is geometric with mean
        ``1/wear_rate`` slots.
    pm_level:
        Wear level (``>= 1``) from which preventive-maintenance
        opportunities arise.
    fail_level:
        Wear level (``> pm_level``) at which the worker fails.
    compliance:
        Probability that a PM opportunity is taken (``0 <= compliance <=
        1``).  ``1`` means maintenance always happens at ``pm_level``;
        ``0`` means the worker always runs to failure.
    pm_time, cm_time:
        :class:`~repro.availability.semi_markov.HoldingTimeDistribution`
        for the preventive (``RECLAIMED``) and corrective (``DOWN``) repair
        sojourns.

    Example:
        >>> from repro import DegradationAvailabilityModel
        >>> model = DegradationAvailabilityModel(wear_rate=0.05, compliance=0.8)
        >>> model.pm_level, model.fail_level
        (3, 6)
        >>> from repro import api
        >>> api.run("IE", m=4, ncom=5, wmin=1, seed=1,
        ...         availability="degradation(wear_rate=0.05)").success
        True
    """

    def __init__(
        self,
        *,
        wear_rate: float,
        pm_level: int = 3,
        fail_level: int = 6,
        compliance: float = 0.8,
        pm_time: Optional[HoldingTimeDistribution] = None,
        cm_time: Optional[HoldingTimeDistribution] = None,
    ) -> None:
        if not 0.0 < wear_rate <= 1.0:
            raise InvalidModelError(f"wear_rate must be in (0, 1], got {wear_rate}")
        pm_level = int(pm_level)
        fail_level = int(fail_level)
        if pm_level < 1:
            raise InvalidModelError(f"pm_level must be >= 1, got {pm_level}")
        if fail_level <= pm_level:
            raise InvalidModelError(
                f"fail_level must be > pm_level, got fail_level={fail_level} "
                f"with pm_level={pm_level}"
            )
        if not 0.0 <= compliance <= 1.0:
            raise InvalidModelError(f"compliance must be in [0, 1], got {compliance}")
        self.wear_rate = float(wear_rate)
        self.pm_level = pm_level
        self.fail_level = fail_level
        self.compliance = float(compliance)
        self.pm_time = pm_time if pm_time is not None else sojourn_distribution("lognormal", 4.0)
        self.cm_time = cm_time if cm_time is not None else sojourn_distribution("lognormal", 25.0)
        self._fitted: Optional[np.ndarray] = None
        self.reset()

    # -- lifecycle -----------------------------------------------------
    def reset(self) -> None:
        """Return to the pristine state (zero wear, UP, no pending sojourn)."""
        self._wear = 0
        self._state = UP
        self._remaining = 0

    @property
    def wear(self) -> int:
        """Current wear level (diagnostics; reset on any repair)."""
        return self._wear

    def initial_state(self, rng: np.random.Generator) -> ProcessorState:
        """Start a trajectory: pristine worker, first wear increment scheduled."""
        self._wear = 0
        self._state = UP
        self._remaining = max(0, int(rng.geometric(self.wear_rate)) - 1)
        return UP

    # -- the single event routine shared by both sampling paths --------
    def _next_segment(self, rng: np.random.Generator) -> ProcessorState:
        """Finish the current segment, draw the next; return its state.

        A *segment* is a maximal run of slots with no internal event: an
        inter-increment run of ``UP`` slots, a PM sojourn, or a CM sojourn.
        Sets ``self._remaining`` to the segment length minus the slot being
        emitted, exactly like
        :class:`~repro.availability.semi_markov.SemiMarkovAvailabilityModel`.
        """
        if self._state is UP:
            # The UP segment ended with a wear increment.
            self._wear += 1
            if self._wear >= self.fail_level:
                self._state = DOWN
                holding = self.cm_time.sample(rng)
            elif self._wear >= self.pm_level and rng.random() < self.compliance:
                self._state = RECLAIMED
                holding = self.pm_time.sample(rng)
            else:
                holding = int(rng.geometric(self.wear_rate))
        else:
            # Maintenance or repair completed: back in service, like new.
            self._wear = 0
            self._state = UP
            holding = int(rng.geometric(self.wear_rate))
        self._remaining = max(0, int(holding) - 1)
        return self._state

    def next_state(self, current: ProcessorState, rng: np.random.Generator) -> ProcessorState:
        """Advance one slot (fast path inside a scheduled sojourn)."""
        if self._remaining > 0:
            self._remaining -= 1
            return self._state
        return self._next_segment(rng)

    def sample_block(
        self,
        start_slot: int,
        horizon: int,
        rng: np.random.Generator,
        *,
        current: ProcessorState,
    ) -> np.ndarray:
        """Segment-run block sampling, stream-equivalent to :meth:`next_state`."""
        if start_slot < 1:
            raise ValueError(f"start_slot must be >= 1, got {start_slot}")
        if horizon < 0:
            raise ValueError(f"horizon must be >= 0, got {horizon}")
        states = np.empty(horizon, dtype=np.int8)
        filled = 0
        while filled < horizon:
            if self._remaining > 0:
                run = min(self._remaining, horizon - filled)
                states[filled : filled + run] = int(self._state)
                self._remaining -= run
                filled += run
            else:
                states[filled] = int(self._next_segment(rng))
                filled += 1
        return states

    # -- analysis ------------------------------------------------------
    def _cycle_moments(self) -> "tuple[float, float]":
        """``(E[increments per service cycle], P(cycle ends in failure))``."""
        span = self.fail_level - self.pm_level
        c = self.compliance
        if c <= 0.0:
            return float(self.fail_level), 1.0
        p_cm = (1.0 - c) ** span
        # Extra increments beyond pm_level: j < span w.p. c(1-c)^j, span w.p. p_cm.
        extra = sum((1.0 - c) ** j for j in range(1, span + 1))
        return self.pm_level + extra, p_cm

    def markov_approximation(self) -> np.ndarray:
        """Geometric 3-state fit matching the mean sojourns and repair split.

        The natural "flawed" Markov model a scheduler would estimate from a
        degradation trace: UP sojourns of mean ``E[N]/wear_rate`` slots
        (``E[N]`` increments per service cycle) leaving towards DOWN with
        the run-to-failure probability and towards RECLAIMED otherwise;
        repair states leave at one over their mean sojourn.
        """
        if self._fitted is None:
            mean_increments, p_cm = self._cycle_moments()
            mean_up = max(1.0, mean_increments / self.wear_rate)
            leave_up = 1.0 / mean_up
            leave_pm = 1.0 / max(1.0, self.pm_time.mean())
            leave_cm = 1.0 / max(1.0, self.cm_time.mean())
            matrix = np.array(
                [
                    [1.0 - leave_up, leave_up * (1.0 - p_cm), leave_up * p_cm],
                    [leave_pm, 1.0 - leave_pm, 0.0],
                    [leave_cm, 0.0, 1.0 - leave_cm],
                ]
            )
            self._fitted = matrix
        return self._fitted.copy()

    def describe(self) -> str:
        """Human-readable parameter summary (``repro models`` listing)."""
        return (
            f"Degradation(wear_rate={self.wear_rate:g}, "
            f"pm_level={self.pm_level}, fail_level={self.fail_level}, "
            f"compliance={self.compliance:g}, pm={self.pm_time.describe()}, "
            f"cm={self.cm_time.describe()})"
        )
