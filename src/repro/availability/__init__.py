"""Processor-availability substrate.

The paper models each processor as an independent 3-state process
(UP / RECLAIMED / DOWN) observed at discrete time-slots.  This subpackage
provides:

* :class:`~repro.availability.model.AvailabilityModel` — the abstract
  interface used by the simulator (sample the next state given the current
  one) and by the schedulers (query the Markov transition matrix when one
  exists);
* :class:`~repro.availability.markov.MarkovAvailabilityModel` — the 3-state
  discrete-time Markov chain of Section V, with stationary analysis and
  seeded trajectory sampling;
* :class:`~repro.availability.trace.AvailabilityTrace` and
  :class:`~repro.availability.trace.TraceAvailabilityModel` — replay of
  pre-computed availability traces (used for the off-line problem, the
  Figure-1 golden test, and trace-driven experiments);
* :mod:`~repro.availability.semi_markov` — non-Markovian (Weibull /
  log-normal holding time) models used by the robustness extension that the
  paper's conclusion proposes as future work;
* :mod:`~repro.availability.generators` — random-model factories following
  the experimental methodology of Section VII-A;
* :mod:`~repro.availability.statistics` — empirical statistics of traces
  (state occupancy, interval-length distributions, empirical transition
  matrices).
"""

from repro.availability.diurnal import DiurnalAvailabilityModel, DiurnalPhase
from repro.availability.generators import (
    paper_transition_matrix,
    random_markov_model,
    random_markov_models,
)
from repro.availability.markov import MarkovAvailabilityModel
from repro.availability.model import AvailabilityModel
from repro.availability.semi_markov import (
    HoldingTimeDistribution,
    LogNormalHolding,
    SemiMarkovAvailabilityModel,
    WeibullHolding,
)
from repro.availability.statistics import TraceStatistics, estimate_markov_model
from repro.availability.trace import AvailabilityTrace, TraceAvailabilityModel

__all__ = [
    "AvailabilityModel",
    "MarkovAvailabilityModel",
    "DiurnalAvailabilityModel",
    "DiurnalPhase",
    "AvailabilityTrace",
    "TraceAvailabilityModel",
    "SemiMarkovAvailabilityModel",
    "HoldingTimeDistribution",
    "WeibullHolding",
    "LogNormalHolding",
    "TraceStatistics",
    "estimate_markov_model",
    "paper_transition_matrix",
    "random_markov_model",
    "random_markov_models",
]
