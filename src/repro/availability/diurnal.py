"""Diurnal (time-of-day dependent) availability model.

Desktop-grid characterisation studies (Kondo et al., Javadi et al. — cited in
Section II of the paper) consistently report a strong day/night pattern:
interactive machines are reclaimed by their owners during office hours and
mostly idle (hence available) at night.  The paper's Markov model is
time-homogeneous and cannot express this; this module provides a
*non-homogeneous* extension that cycles through a fixed set of phases (e.g.
"office hours" / "evening" / "night"), each with its own 3-state transition
matrix.

The model plugs into the same :class:`AvailabilityModel` interface, so it can
be used directly by the simulator; :meth:`markov_approximation` returns the
time-average of the phase matrices (weighted by phase length), which is the
natural "flawed" homogeneous model a scheduler would fit to a trace — making
this a second substrate (besides :mod:`~repro.availability.semi_markov`) for
the robustness experiments suggested in the paper's conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.availability.markov import MarkovAvailabilityModel
from repro.availability.model import AvailabilityModel, scan_transition_maps
from repro.exceptions import InvalidModelError
from repro.types import DOWN, RECLAIMED, UP, ProcessorState
from repro.utils.validation import check_probability_matrix

__all__ = ["DiurnalPhase", "DiurnalAvailabilityModel"]


@dataclass(frozen=True)
class DiurnalPhase:
    """One phase of the daily cycle: a name, a duration and a transition matrix."""

    name: str
    duration: int
    matrix: np.ndarray

    def __post_init__(self) -> None:
        if self.duration < 1:
            raise InvalidModelError(f"phase duration must be >= 1 slot, got {self.duration}")
        object.__setattr__(
            self, "matrix", check_probability_matrix(self.matrix, f"phase {self.name!r}", size=3)
        )


class DiurnalAvailabilityModel(AvailabilityModel):
    """Cyclic non-homogeneous Markov availability.

    Parameters
    ----------
    phases:
        The phases of one cycle, in order.  The cycle repeats forever; the
        model keeps an internal slot counter (reset by :meth:`reset`).
    phase_offset:
        Slot offset into the cycle at time 0 (lets different processors be
        out of phase, e.g. machines in different time zones).
    """

    def __init__(self, phases: Sequence[DiurnalPhase], *, phase_offset: int = 0) -> None:
        if not phases:
            raise InvalidModelError("a diurnal model needs at least one phase")
        self._phases = list(phases)
        self._cycle = sum(phase.duration for phase in self._phases)
        if phase_offset < 0:
            raise InvalidModelError(f"phase_offset must be >= 0, got {phase_offset}")
        self._offset = int(phase_offset) % self._cycle
        self._clock = 0
        # Precompute, for each slot of the cycle, which phase applies and its
        # cumulative transition thresholds (fast next_state sampling).
        self._phase_of_slot = np.empty(self._cycle, dtype=np.int64)
        position = 0
        for index, phase in enumerate(self._phases):
            self._phase_of_slot[position: position + phase.duration] = index
            position += phase.duration
        self._cumulative = [np.cumsum(phase.matrix, axis=1) for phase in self._phases]
        for matrix in self._cumulative:
            matrix[:, -1] = 1.0

    # ------------------------------------------------------------------
    @classmethod
    def office_hours(
        cls,
        *,
        day_length: int = 96,
        office_fraction: float = 0.4,
        night_stay_up: float = 0.995,
        office_stay_up: float = 0.90,
        office_reclaim_bias: float = 0.8,
        crash_probability: float = 0.002,
        phase_offset: int = 0,
    ) -> "DiurnalAvailabilityModel":
        """A two-phase preset: volatile office hours, stable nights.

        Parameters
        ----------
        day_length:
            Slots per day (e.g. 96 fifteen-minute slots).
        office_fraction:
            Fraction of the day spent in the volatile "office" phase.
        night_stay_up / office_stay_up:
            Probability of remaining UP during each phase.
        office_reclaim_bias:
            Fraction of office-hour departures from UP that are reclamations
            (the rest are crashes).
        crash_probability:
            Additional per-slot crash probability at night.
        """
        if not (0.0 < office_fraction < 1.0):
            raise InvalidModelError("office_fraction must lie strictly between 0 and 1")
        office_slots = max(1, int(round(day_length * office_fraction)))
        night_slots = max(1, day_length - office_slots)

        office_leave = 1.0 - office_stay_up
        office = np.array(
            [
                [office_stay_up, office_leave * office_reclaim_bias,
                 office_leave * (1.0 - office_reclaim_bias)],
                [0.15, 0.80, 0.05],
                [0.30, 0.10, 0.60],
            ]
        )
        night = np.array(
            [
                [night_stay_up, 1.0 - night_stay_up - crash_probability, crash_probability],
                [0.60, 0.38, 0.02],
                [0.40, 0.05, 0.55],
            ]
        )
        return cls(
            [
                DiurnalPhase("office", office_slots, office),
                DiurnalPhase("night", night_slots, night),
            ],
            phase_offset=phase_offset,
        )

    # ------------------------------------------------------------------
    @property
    def cycle_length(self) -> int:
        """Number of slots in one full cycle."""
        return self._cycle

    @property
    def phases(self) -> List[DiurnalPhase]:
        return list(self._phases)

    def phase_at(self, slot: int) -> DiurnalPhase:
        """The phase in force at absolute slot *slot* (taking the offset into account)."""
        index = self._phase_of_slot[(slot + self._offset) % self._cycle]
        return self._phases[int(index)]

    # ------------------------------------------------------------------
    # AvailabilityModel interface
    # ------------------------------------------------------------------
    def reset(self) -> None:
        self._clock = 0

    def initial_state(self, rng: np.random.Generator) -> ProcessorState:
        self._clock = 0
        # Start UP with the stationary availability of the *initial* phase as
        # a tie-breaker: UP if a uniform draw falls under the phase's
        # long-run UP share, otherwise RECLAIMED (never start DOWN).
        phase = self.phase_at(0)
        share = MarkovAvailabilityModel(phase.matrix).availability()
        return UP if rng.random() < max(share, 0.5) else RECLAIMED

    def next_state(self, current: ProcessorState, rng: np.random.Generator) -> ProcessorState:
        phase_index = int(self._phase_of_slot[(self._clock + self._offset) % self._cycle])
        thresholds = self._cumulative[phase_index][int(current)]
        self._clock += 1
        draw = rng.random()
        if draw < thresholds[0]:
            return UP
        if draw < thresholds[1]:
            return RECLAIMED
        return DOWN

    def sample_block(
        self,
        start_slot: int,
        horizon: int,
        rng: np.random.Generator,
        *,
        current: ProcessorState,
    ) -> np.ndarray:
        """Vectorised block sampling with per-slot phase matrices.

        The transition into slot *t* is governed by the phase in force at
        slot ``t - 1`` (matching :meth:`next_state`, whose clock lags the
        produced slot by one).  Absolute slot indices are used, so the
        internal clock is re-synchronised to ``start_slot + horizon - 1``
        and mixed block/slot-by-slot driving stays consistent.
        """
        if start_slot < 1:
            raise ValueError(f"start_slot must be >= 1, got {start_slot}")
        if horizon < 0:
            raise ValueError(f"horizon must be >= 0, got {horizon}")
        if horizon == 0:
            return np.empty(0, dtype=np.int8)
        clocks = (np.arange(start_slot - 1, start_slot - 1 + horizon) + self._offset) % self._cycle
        phase_indices = self._phase_of_slot[clocks]
        cumulatives = np.stack(self._cumulative)[phase_indices]  # (horizon, 3, 3)
        draws = rng.random(horizon)[:, None]
        # maps[t, i] = next state from i under draw t and the slot's phase.
        maps = (draws >= cumulatives[:, :, 0]).astype(np.int8)
        maps += draws >= cumulatives[:, :, 1]
        self._clock = start_slot - 1 + horizon
        return scan_transition_maps(maps, int(current))

    def markov_approximation(self) -> np.ndarray:
        """Duration-weighted average of the phase matrices (homogeneous fit)."""
        matrix = np.zeros((3, 3))
        for phase in self._phases:
            matrix += phase.duration * phase.matrix
        return matrix / self._cycle

    def describe(self) -> str:
        names = "/".join(f"{phase.name}:{phase.duration}" for phase in self._phases)
        return f"Diurnal({names}, offset={self._offset})"
