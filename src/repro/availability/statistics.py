"""Empirical statistics of availability sequences.

Used for three purposes:

* validating the Markov samplers in tests (empirical transition frequencies
  must converge to the specified matrix);
* fitting a ("flawed") Markov model to a non-Markovian or recorded trace,
  which is the robustness experiment proposed in the paper's conclusion;
* descriptive statistics of traces (availability fraction, interval-length
  distributions) mirroring the measurements of desktop-grid characterisation
  studies cited in Section II.

The full trace pipeline — ingesting recorded logs, fitting calibrated models
over these statistics, and generating bootstrap/fitted substrates — lives in
:mod:`repro.traces` (see :mod:`repro.traces.fit` for the estimators that
consume :func:`state_intervals` and :func:`estimate_markov_matrix`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.types import DOWN, RECLAIMED, UP, ProcessorState

__all__ = [
    "estimate_markov_matrix",
    "estimate_markov_model",
    "transition_counts",
    "state_intervals",
    "state_runs",
    "TraceStatistics",
]


def _as_state_array(sequence: Union[Sequence[int], np.ndarray]) -> np.ndarray:
    values = np.asarray(sequence)
    if values.dtype.kind not in "iu":
        values = np.array([int(ProcessorState.coerce(v)) for v in sequence])
    values = values.astype(np.int64)
    if values.size and (values.min() < 0 or values.max() > 2):
        raise ValueError("state codes must be 0 (UP), 1 (RECLAIMED) or 2 (DOWN)")
    return values


def transition_counts(sequence: Union[Sequence[int], np.ndarray]) -> np.ndarray:
    """3x3 matrix of observed transition counts in *sequence*."""
    values = _as_state_array(sequence)
    counts = np.zeros((3, 3), dtype=np.int64)
    if values.size < 2:
        return counts
    sources = values[:-1]
    targets = values[1:]
    np.add.at(counts, (sources, targets), 1)
    return counts


def estimate_markov_matrix(
    sequence: Union[Sequence[int], np.ndarray],
    *,
    prior: float = 0.0,
) -> np.ndarray:
    """Maximum-likelihood (optionally smoothed) Markov fit of a sequence.

    Rows with no observations default to "stay in place" (identity row),
    which is the most conservative completion: a state never observed is
    assumed absorbing rather than assumed to recover instantly.

    Parameters
    ----------
    sequence:
        State sequence (codes or :class:`ProcessorState` values).
    prior:
        Optional additive (Laplace) smoothing count applied to every cell,
        useful when fitting short traces for the analysis-based heuristics so
        that no transition gets an exactly-zero probability.
    """
    counts = transition_counts(sequence).astype(float)
    if prior < 0:
        raise ValueError(f"prior must be >= 0, got {prior}")
    counts += prior
    matrix = np.eye(3)
    for i in range(3):
        total = counts[i].sum()
        if total > 0:
            matrix[i] = counts[i] / total
    return matrix


def estimate_markov_model(sequence: Union[Sequence[int], np.ndarray], *, prior: float = 0.0):
    """Fit a :class:`~repro.availability.markov.MarkovAvailabilityModel` to a sequence."""
    from repro.availability.markov import MarkovAvailabilityModel

    return MarkovAvailabilityModel(estimate_markov_matrix(sequence, prior=prior))


def state_runs(sequence: Union[Sequence[int], np.ndarray]) -> List[Tuple[ProcessorState, int]]:
    """Maximal runs of *sequence* as ``(state, length)`` pairs, in order.

    This is the run-length encoding the interval statistics and the
    semi-Markov fitters of :mod:`repro.traces.fit` are built on: consecutive
    pairs give the embedded jump chain, the lengths give the per-state
    sojourn samples.
    """
    values = _as_state_array(sequence)
    if values.size == 0:
        return []
    boundaries = np.flatnonzero(values[1:] != values[:-1]) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [values.size]])
    return [
        (ProcessorState(int(values[start])), int(end - start))
        for start, end in zip(starts, ends)
    ]


def state_intervals(
    sequence: Union[Sequence[int], np.ndarray],
    *,
    censor_edges: bool = False,
) -> Dict[ProcessorState, List[int]]:
    """Lengths of maximal runs of each state in *sequence*.

    Returns a mapping state -> list of run lengths, in order of appearance.
    Desktop-grid characterisation studies (e.g. Kondo et al., Nurmi et al.)
    report exactly these interval-length distributions.

    Parameters
    ----------
    sequence:
        State sequence (codes or :class:`ProcessorState` values).
    censor_edges:
        When ``True``, drop the first and last run of the sequence.  Those
        runs are *edge-censored* — the trace starts or ends mid-interval, so
        their recorded length is a lower bound, not a complete interval —
        and counting them biases mean interval lengths short on short
        traces.  The default (``False``) keeps the historical behaviour for
        descriptive statistics; the calibrated fitters in
        :mod:`repro.traces.fit` exclude them.
    """
    intervals: Dict[ProcessorState, List[int]] = {UP: [], RECLAIMED: [], DOWN: []}
    runs = state_runs(sequence)
    if censor_edges:
        # The first and the last run are both censored; a single-run sequence
        # is censored on both sides and contributes nothing.
        runs = runs[1:-1]
    for state, length in runs:
        intervals[state].append(length)
    return intervals


@dataclass(frozen=True)
class TraceStatistics:
    """Summary statistics of one processor's availability sequence."""

    length: int
    up_fraction: float
    reclaimed_fraction: float
    down_fraction: float
    mean_up_interval: float
    mean_reclaimed_interval: float
    mean_down_interval: float
    num_failures: int
    empirical_matrix: np.ndarray

    @classmethod
    def from_sequence(
        cls,
        sequence: Union[Sequence[int], np.ndarray],
        *,
        censor_edges: bool = False,
    ) -> "TraceStatistics":
        """Summarise one state sequence.

        ``censor_edges`` controls whether the edge-censored first/last runs
        count towards the mean interval lengths (see
        :func:`state_intervals`); the default keeps them, pinning the
        historical behaviour of existing callers.
        """
        values = _as_state_array(sequence)
        length = int(values.size)
        if length == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0, np.eye(3))
        fractions = [float(np.mean(values == code)) for code in range(3)]
        intervals = state_intervals(values, censor_edges=censor_edges)

        def mean_or_zero(items: List[int]) -> float:
            return float(np.mean(items)) if items else 0.0

        # A "failure" is an entry into the DOWN state (transition from a
        # non-DOWN state to DOWN, plus possibly starting DOWN).
        entries_down = int(np.sum((values[1:] == int(DOWN)) & (values[:-1] != int(DOWN))))
        if values[0] == int(DOWN):
            entries_down += 1
        return cls(
            length=length,
            up_fraction=fractions[int(UP)],
            reclaimed_fraction=fractions[int(RECLAIMED)],
            down_fraction=fractions[int(DOWN)],
            mean_up_interval=mean_or_zero(intervals[UP]),
            mean_reclaimed_interval=mean_or_zero(intervals[RECLAIMED]),
            mean_down_interval=mean_or_zero(intervals[DOWN]),
            num_failures=entries_down,
            empirical_matrix=estimate_markov_matrix(values),
        )

    def as_dict(self) -> dict:
        return {
            "length": self.length,
            "up_fraction": self.up_fraction,
            "reclaimed_fraction": self.reclaimed_fraction,
            "down_fraction": self.down_fraction,
            "mean_up_interval": self.mean_up_interval,
            "mean_reclaimed_interval": self.mean_reclaimed_interval,
            "mean_down_interval": self.mean_down_interval,
            "num_failures": self.num_failures,
            "empirical_matrix": self.empirical_matrix.tolist(),
        }
