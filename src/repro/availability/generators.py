"""Random availability-model generators following Section VII-A.

The paper instantiates its experimental campaign as follows:

    "For each processor Pq, we pick a random value uniformly distributed
     between 0.90 and 0.99 for each P(q)_{x,x} value (for x = u, r, d).
     We then set P(q)_{x,y} to 0.5 x (1 - P(q)_{x,x}), for x != y."

i.e. each diagonal entry (probability of staying in the current state) is
drawn uniformly in [0.90, 0.99] and the remaining mass is split evenly
between the two other states.  This module implements exactly that recipe,
plus a few parameterised variants used by the extension experiments.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.availability.markov import MarkovAvailabilityModel
from repro.availability.model import AvailabilityModel
from repro.exceptions import InvalidModelError
from repro.types import ProcessorState
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "paper_transition_matrix",
    "random_markov_model",
    "random_markov_models",
    "reliability_spread_models",
    "sample_initial_states",
    "sample_state_block",
]


def paper_transition_matrix(
    stay_probabilities: Sequence[float],
) -> np.ndarray:
    """Build the paper's transition matrix from the three diagonal values.

    Parameters
    ----------
    stay_probabilities:
        The three diagonal entries ``(P_uu, P_rr, P_dd)``.  Off-diagonal
        entries are ``(1 - P_xx) / 2`` as prescribed by Section VII-A.
    """
    stay = np.asarray(stay_probabilities, dtype=float)
    if stay.shape != (3,):
        raise InvalidModelError(
            f"expected three stay probabilities (P_uu, P_rr, P_dd), got shape {stay.shape}"
        )
    if np.any(stay < 0) or np.any(stay > 1):
        raise InvalidModelError("stay probabilities must lie in [0, 1]")
    matrix = np.empty((3, 3), dtype=float)
    for i in range(3):
        off = 0.5 * (1.0 - stay[i])
        matrix[i] = off
        matrix[i, i] = stay[i]
    return matrix


def random_markov_model(
    seed: SeedLike = None,
    *,
    stay_low: float = 0.90,
    stay_high: float = 0.99,
) -> MarkovAvailabilityModel:
    """Draw one availability model per the paper's methodology.

    The diagonal entries are i.i.d. uniform in ``[stay_low, stay_high]``
    (defaults match the paper) and the off-diagonal mass is split evenly.
    """
    if not (0.0 <= stay_low <= stay_high <= 1.0):
        raise InvalidModelError(
            f"need 0 <= stay_low <= stay_high <= 1, got [{stay_low}, {stay_high}]"
        )
    rng = as_generator(seed)
    stay = rng.uniform(stay_low, stay_high, size=3)
    return MarkovAvailabilityModel(paper_transition_matrix(stay))


def random_markov_models(
    count: int,
    seed: SeedLike = None,
    *,
    stay_low: float = 0.90,
    stay_high: float = 0.99,
) -> List[MarkovAvailabilityModel]:
    """Draw *count* independent models (one per processor of a platform)."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    rng = as_generator(seed)
    return [
        random_markov_model(rng, stay_low=stay_low, stay_high=stay_high)
        for _ in range(count)
    ]


def reliability_spread_models(
    count: int,
    seed: SeedLike = None,
    *,
    reliable_fraction: float = 0.5,
    reliable_range: Tuple[float, float] = (0.98, 0.995),
    unreliable_range: Tuple[float, float] = (0.85, 0.95),
) -> List[MarkovAvailabilityModel]:
    """Models with a bimodal reliability mix (extension scenarios).

    A fraction of processors is highly reliable (UP-stay probability drawn
    from ``reliable_range``) while the rest churn much more (drawn from
    ``unreliable_range``).  These instances stress exactly the trade-off the
    paper's heuristics are designed around: is a fast-but-flaky processor
    worth enrolling when the whole configuration dies with it?
    """
    if not (0.0 <= reliable_fraction <= 1.0):
        raise ValueError("reliable_fraction must lie in [0, 1]")
    rng = as_generator(seed)
    models: List[MarkovAvailabilityModel] = []
    num_reliable = int(round(count * reliable_fraction))
    for index in range(count):
        low, high = reliable_range if index < num_reliable else unreliable_range
        stay_up = rng.uniform(low, high)
        stay_other = rng.uniform(0.90, 0.99, size=2)
        matrix = paper_transition_matrix([stay_up, stay_other[0], stay_other[1]])
        models.append(MarkovAvailabilityModel(matrix))
    rng.shuffle(models)  # avoid correlating reliability with processor index
    return models


# ----------------------------------------------------------------------
# Batch sampling across a platform's worth of models
# ----------------------------------------------------------------------
def sample_initial_states(
    models: Sequence[AvailabilityModel],
    rngs: Sequence[np.random.Generator],
) -> np.ndarray:
    """Reset every model and draw the slot-0 state column (``int8``, one per model).

    Consumes each model's generator exactly like
    :meth:`~repro.availability.model.AvailabilityModel.initial_state` does,
    so trajectories continued with :func:`sample_state_block` replay the
    realisation a simulation run with the same streams would see.
    """
    if len(models) != len(rngs):
        raise ValueError(f"got {len(models)} models but {len(rngs)} generators")
    column = np.empty(len(models), dtype=np.int8)
    for index, (model, rng) in enumerate(zip(models, rngs)):
        model.reset()
        column[index] = int(model.initial_state(rng))
    return column


def sample_state_block(
    models: Sequence[AvailabilityModel],
    start_slot: int,
    horizon: int,
    rngs: Sequence[np.random.Generator],
    current: np.ndarray,
) -> np.ndarray:
    """Sample an ``(len(models), horizon)`` state block for slots ``[start, start + horizon)``.

    *current* is the state column at ``start_slot - 1``.  Each model consumes
    only its own generator, so the block decomposition (chunk size, number of
    calls) has no effect on the realisation.
    """
    if len(models) != len(rngs):
        raise ValueError(f"got {len(models)} models but {len(rngs)} generators")
    block = np.empty((len(models), horizon), dtype=np.int8)
    for index, (model, rng) in enumerate(zip(models, rngs)):
        block[index] = model.sample_block(
            start_slot, horizon, rng, current=ProcessorState(int(current[index]))
        )
    return block
