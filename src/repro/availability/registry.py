"""Registered availability-model substrates for scenario/campaign building.

Mirrors the heuristic registry (:mod:`repro.scheduling.registry`): each
availability *kind* a scenario can request — ``markov`` (the paper's
Section V chain), ``semi-markov``, ``diurnal``, ``trace`` and friends, plus
the :mod:`repro.hazards` substrates ``degradation``, ``correlated`` and
``churn`` — is registered in :data:`AVAILABILITY_MODELS` with a description
and its parameter catalogue, replacing the hard-coded if/elif over kinds
that used to live in :mod:`repro.experiments.scenarios`.

A registered entry is a *builder*: given the scenario's availability
parameters (any object with a ``get(name, default)`` accessor, such as
:class:`repro.experiments.scenarios.AvailabilitySpec`), it returns a
``model_factory(rng, count)`` producing one
:class:`~repro.availability.model.AvailabilityModel` per processor.  The
factory is consumed by
:func:`repro.platform.builders.availability_platform`, which draws models
first and speeds second from one seeded generator — for the ``markov`` kind
this is bit-identical to the original
:func:`~repro.platform.builders.paper_platform` path.

Numeric parameters may be scalars (used as-is for every processor) or
two-element ``[low, high]`` ranges (drawn uniformly per processor from the
scenario's platform seed).

To plug in your own substrate::

    from repro.availability.registry import register_availability_model
    from repro.components import ComponentParameter

    @register_availability_model(
        "flaky", description="everything fails a lot",
        parameters=(ComponentParameter("rate", float, default=0.5),))
    def _flaky_models(spec):
        def factory(rng, count):
            return [MyFlakyModel(spec.get("rate", 0.5)) for _ in range(count)]
        return factory

after which campaign specs accept ``[availability] kind = "flaky"``.
"""

from __future__ import annotations

import functools
import json
from pathlib import Path
from typing import Callable, List, Optional

import numpy as np

from repro.availability.diurnal import DiurnalAvailabilityModel
from repro.availability.generators import random_markov_models
from repro.availability.semi_markov import SemiMarkovAvailabilityModel
from repro.availability.trace import AvailabilityTrace, TraceAvailabilityModel
from repro.components import ComponentInfo, ComponentParameter, ComponentRegistry
from repro.exceptions import ExperimentError

__all__ = [
    "AVAILABILITY_MODELS",
    "register_availability_model",
    "available_models",
    "availability_model_info",
    "model_factory_for",
]

#: The single source of truth for availability substrates: scenario
#: validation, platform building, the CLI's ``repro models`` listing and the
#: ``repro.api`` facade all query this registry.
AVAILABILITY_MODELS = ComponentRegistry("availability model")


def register_availability_model(
    name: str,
    builder: Optional[Callable] = None,
    *,
    description: str = "",
    parameters=(),
    family: str = "availability",
):
    """Register an availability-substrate builder (decorator-friendly).

    ``builder(spec)`` must return a ``model_factory(rng, count)`` callable.
    ``parameters`` documents the accepted spec parameters explicitly (they
    are range-or-scalar valued, so signature introspection does not apply);
    scenario specs reject parameters that are not declared here.
    """
    return AVAILABILITY_MODELS.register(
        name,
        builder,
        family=family,
        description=description,
        parameters=tuple(parameters),
    )


def available_models(family: Optional[str] = None) -> List[str]:
    """Registered availability-model kinds, in registration order."""
    return AVAILABILITY_MODELS.names(family)


def availability_model_info(kind: str) -> ComponentInfo:
    """Registered metadata (description, parameters) for one kind."""
    return AVAILABILITY_MODELS.get(kind)


def model_factory_for(spec) -> Callable:
    """The per-processor ``model_factory(rng, count)`` for an availability spec.

    *spec* is any object with ``kind`` and ``get(name, default)`` — in
    practice :class:`repro.experiments.scenarios.AvailabilitySpec`.
    """
    return AVAILABILITY_MODELS.get(spec.kind).factory(spec)


# ----------------------------------------------------------------------
# Parameter helpers shared by the built-in builders
# ----------------------------------------------------------------------
def draw_parameter(rng: np.random.Generator, value, name: str) -> float:
    """Resolve a spec parameter: scalar as-is, two-element range drawn uniformly."""
    if isinstance(value, tuple):
        return float(rng.uniform(value[0], value[1]))
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    raise ExperimentError(f"availability parameter {name!r} must be numeric, got {value!r}")


@functools.lru_cache(maxsize=8)
def _load_trace(path: str) -> AvailabilityTrace:
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ExperimentError(f"cannot load availability trace from {path}: {error}") from error
    return AvailabilityTrace.from_dict(payload)


@functools.lru_cache(maxsize=8)
def _load_catalog(directory: str):
    from repro.traces.formats import TraceCatalog, TraceFormatError

    try:
        return TraceCatalog(directory)
    except TraceFormatError as error:
        raise ExperimentError(str(error)) from error


@functools.lru_cache(maxsize=16)
def _load_dataset(path: str, dataset: Optional[str], slot: float, gap: str, overlap: str):
    """Load a recorded dataset for the trace-driven substrates (cached).

    *path* is either a trace file in any ingestible format, or a catalog
    directory (then *dataset* selects the file; the spec's discretisation
    parameters apply unless the dataset's ``catalog.json`` entry overrides
    them).
    """
    from repro.traces.formats import TraceFormatError, load_trace

    try:
        if Path(path).is_dir():
            catalog = _load_catalog(path)
            if dataset is None:
                raise ExperimentError(
                    f"{path} is a trace catalog directory: a 'dataset' parameter "
                    f"is required (available: {catalog.names()})"
                )
            return catalog.load(
                dataset, defaults={"slot": slot, "gap": gap, "overlap": overlap}
            )
        return load_trace(path, slot_duration=slot, gap=gap, overlap=overlap)
    except TraceFormatError as error:
        raise ExperimentError(str(error)) from error


def _dataset_for(spec) -> AvailabilityTrace:
    """Resolve the shared (path, dataset, discretisation) parameters of a spec."""
    path = spec.get("path")
    if path is None:
        raise ExperimentError(f"availability kind {spec.kind!r} requires a 'path' parameter")
    dataset = spec.get("dataset")
    return _load_dataset(
        str(path),
        str(dataset) if dataset else None,
        float(spec.get("slot", 1.0)),
        str(spec.get("gap", "down")),
        str(spec.get("overlap", "error")),
    )


#: Discretisation parameters shared by the trace-driven substrates.
_INGEST_PARAMETERS = (
    ComponentParameter(
        "slot", float, default=1.0,
        description="recorded time units per slot (CSV/JSONL ingestion)",
    ),
    ComponentParameter(
        "gap", str, default="down",
        description="state for slots no interval covers: down, hold or error",
    ),
    ComponentParameter(
        "overlap", str, default="error",
        description="conflicting-interval policy: error, first or last",
    ),
)


# ----------------------------------------------------------------------
# The four built-in substrates
# ----------------------------------------------------------------------
@register_availability_model(
    "markov",
    description="3-state Markov chain of Section V; stay-probabilities "
    "uniform per processor (the paper's default substrate)",
    parameters=(
        ComponentParameter(
            "stay_low", float, default=0.90,
            description="lower bound of the per-state stay-probability draw",
        ),
        ComponentParameter(
            "stay_high", float, default=0.99,
            description="upper bound of the per-state stay-probability draw",
        ),
    ),
)
def _markov_models(spec):
    def scalar(name: str, default: float) -> float:
        value = spec.get(name, default)
        if isinstance(value, tuple):
            raise ExperimentError(
                f"markov availability parameter {name!r} is a scalar — "
                f"[stay_low, stay_high] is already the per-processor range "
                f"(got {list(value)!r})"
            )
        return float(value)

    stay_low = scalar("stay_low", 0.90)
    stay_high = scalar("stay_high", 0.99)

    def factory(rng, count):
        return random_markov_models(count, rng, stay_low=stay_low, stay_high=stay_high)

    return factory


@register_availability_model(
    "semi-markov",
    description="non-Markovian desktop grid: Weibull UP sojourns, "
    "log-normal interruptions (robustness extension)",
    parameters=(
        ComponentParameter(
            "up_shape", float, default=(0.5, 0.8),
            description="Weibull shape of the UP sojourn distribution",
        ),
        ComponentParameter(
            "mean_up", float, default=(25.0, 60.0),
            description="mean UP sojourn length (slots)",
        ),
        ComponentParameter(
            "mean_reclaimed", float, default=(2.0, 6.0),
            description="mean RECLAIMED sojourn length (slots)",
        ),
        ComponentParameter(
            "mean_down", float, default=(10.0, 30.0),
            description="mean DOWN sojourn length (slots)",
        ),
        ComponentParameter(
            "reclaim_fraction", float, default=(0.6, 0.85),
            description="probability an interruption is RECLAIMED rather than DOWN",
        ),
    ),
)
def _semi_markov_models(spec):
    def factory(rng, count):
        return [
            SemiMarkovAvailabilityModel.desktop_grid(
                up_shape=draw_parameter(rng, spec.get("up_shape", (0.5, 0.8)), "up_shape"),
                mean_up=draw_parameter(rng, spec.get("mean_up", (25.0, 60.0)), "mean_up"),
                mean_reclaimed=draw_parameter(
                    rng, spec.get("mean_reclaimed", (2.0, 6.0)), "mean_reclaimed"
                ),
                mean_down=draw_parameter(
                    rng, spec.get("mean_down", (10.0, 30.0)), "mean_down"
                ),
                reclaim_fraction=draw_parameter(
                    rng, spec.get("reclaim_fraction", (0.6, 0.85)), "reclaim_fraction"
                ),
            )
            for _ in range(count)
        ]

    return factory


@register_availability_model(
    "diurnal",
    description="time-inhomogeneous office-hours cycle: reliable nights, "
    "churny working hours, per-processor phase offsets",
    parameters=(
        ComponentParameter(
            "day_length", float, default=96,
            description="slots per day (phase offsets are drawn modulo it)",
        ),
        ComponentParameter(
            "office_fraction", float, default=0.4,
            description="fraction of the day spent in the churny office phase",
        ),
        ComponentParameter(
            "night_stay_up", float, default=0.995,
            description="UP stay-probability during the quiet phase",
        ),
        ComponentParameter(
            "office_stay_up", float, default=(0.88, 0.95),
            description="UP stay-probability during office hours",
        ),
    ),
)
def _diurnal_models(spec):
    def factory(rng, count):
        day_length = int(draw_parameter(rng, spec.get("day_length", 96), "day_length"))
        return [
            DiurnalAvailabilityModel.office_hours(
                day_length=day_length,
                office_fraction=draw_parameter(
                    rng, spec.get("office_fraction", 0.4), "office_fraction"
                ),
                night_stay_up=draw_parameter(
                    rng, spec.get("night_stay_up", 0.995), "night_stay_up"
                ),
                office_stay_up=draw_parameter(
                    rng, spec.get("office_stay_up", (0.88, 0.95)), "office_stay_up"
                ),
                phase_offset=int(rng.integers(0, day_length)),
            )
            for _ in range(count)
        ]

    return factory


@register_availability_model(
    "trace",
    description="replay recorded availability traces (JSON), row per processor",
    parameters=(
        ComponentParameter(
            "path", str,
            description="trace file (relative paths resolve against the spec file)",
        ),
        ComponentParameter(
            "wrap", bool, default=True,
            description="loop the trace when the simulation outlives it",
        ),
    ),
)
def _trace_models(spec):
    trace = _load_trace(str(spec.get("path")))
    wrap = bool(spec.get("wrap", True))

    def factory(rng, count):
        return [
            TraceAvailabilityModel(trace.row(index % trace.num_processors), wrap=wrap)
            for index in range(count)
        ]

    return factory


# ----------------------------------------------------------------------
# Trace-driven substrates (recorded datasets, repro.traces pipeline)
# ----------------------------------------------------------------------
@register_availability_model(
    "trace-catalog",
    description="replay a named recorded dataset from a trace catalog "
    "directory (CSV/JSONL/compact/JSON), rows assigned round-robin",
    parameters=(
        ComponentParameter(
            "path", str,
            description="trace file or catalog directory "
            "(relative paths resolve against the spec file)",
        ),
        ComponentParameter(
            "dataset", str, default="",
            description="dataset name inside a catalog directory",
        ),
        ComponentParameter(
            "wrap", bool, default=True,
            description="loop the recording when the simulation outlives it",
        ),
    ) + _INGEST_PARAMETERS,
)
def _trace_catalog_models(spec):
    trace = _dataset_for(spec)
    wrap = bool(spec.get("wrap", True))

    def factory(rng, count):
        return [
            TraceAvailabilityModel(trace.row(index % trace.num_processors), wrap=wrap)
            for index in range(count)
        ]

    return factory


@register_availability_model(
    "trace-bootstrap",
    description="bootstrap-resample a recorded dataset: each processor "
    "replays a resampled row (or block-bootstrap splice) of the recording",
    parameters=(
        ComponentParameter(
            "path", str,
            description="trace file or catalog directory "
            "(relative paths resolve against the spec file)",
        ),
        ComponentParameter(
            "dataset", str, default="",
            description="dataset name inside a catalog directory",
        ),
        ComponentParameter(
            "block", int, default=0,
            description="block-bootstrap block length in slots "
            "(0 = whole-row bootstrap)",
        ),
        ComponentParameter(
            "horizon", int, default=0,
            description="generated slots per processor for block bootstrap "
            "(0 = the recorded horizon)",
        ),
        ComponentParameter(
            "wrap", bool, default=True,
            description="loop the resampled sequence when the simulation outlives it",
        ),
    ) + _INGEST_PARAMETERS,
)
def _trace_bootstrap_models(spec):
    from repro.traces.resample import bootstrap_models

    trace = _dataset_for(spec)
    block = int(spec.get("block", 0))
    horizon = int(spec.get("horizon", 0))
    wrap = bool(spec.get("wrap", True))

    def factory(rng, count):
        return bootstrap_models(
            trace,
            rng,
            count,
            block_length=block or None,
            horizon=horizon or None,
            wrap=wrap,
        )

    return factory


@register_availability_model(
    "fitted",
    description="fit a synthetic family (markov / semi-markov / diurnal / "
    "correlated / degradation) to a recorded dataset, then sample fresh "
    "trajectories from the fit",
    parameters=(
        ComponentParameter(
            "model", str, aliases=("kind",),
            description="family to calibrate: markov, semi-markov, diurnal, "
            "correlated or degradation",
        ),
        ComponentParameter(
            "path", str,
            description="trace file or catalog directory "
            "(relative paths resolve against the spec file)",
        ),
        ComponentParameter(
            "dataset", str, default="",
            description="dataset name inside a catalog directory",
        ),
        ComponentParameter(
            "day_length", int, default=96,
            description="slots per day for the diurnal fit",
        ),
        ComponentParameter(
            "num_phases", int, default=2,
            description="phase bins per day for the diurnal fit",
        ),
        ComponentParameter(
            "prior", float, default=0.0,
            description="Laplace smoothing count for the markov/diurnal fits",
        ),
        ComponentParameter(
            "pm_level", int, default=3,
            description="assumed preventive-maintenance wear level for the "
            "degradation fit",
        ),
        ComponentParameter(
            "fail_level", int, default=6,
            description="assumed failure wear level for the degradation fit",
        ),
    ) + _INGEST_PARAMETERS,
)
def _fitted_models(spec):
    from repro.traces.fit import FIT_KINDS

    kind = str(spec.get("model", "")).lower()
    if kind not in FIT_KINDS:
        raise ExperimentError(
            f"fitted availability: 'model' must be one of {list(FIT_KINDS)}, got {kind!r}"
        )
    trace = _dataset_for(spec)
    options = {}
    if kind in ("markov", "diurnal"):
        options["prior"] = float(spec.get("prior", 0.0))
    if kind == "diurnal":
        options["day_length"] = int(spec.get("day_length", 96))
        options["num_phases"] = int(spec.get("num_phases", 2))
    if kind == "degradation":
        options["pm_level"] = int(spec.get("pm_level", 3))
        options["fail_level"] = int(spec.get("fail_level", 6))
    # The builder runs once per scenario platform; the fit itself (scipy MLE
    # over the whole recording) is memoised on the immutable cached trace.
    fitted = _fit_cached(trace, kind, tuple(sorted(options.items())))

    def factory(rng, count):
        # Fresh instances per processor: fitted models carry per-trajectory
        # sampling state (holding counters, phase clocks).
        return fitted.make_models(count)

    # A correlated fit reconstructs the platform-level outage overlay on top
    # of its per-worker base chains, just like the native substrate.
    if fitted.hazard_builder is not None:
        factory.hazard_factory = fitted.hazard_builder

    return factory


# ----------------------------------------------------------------------
# Hazard substrates (repro.hazards): degradation, correlated outages, churn
# ----------------------------------------------------------------------
@register_availability_model(
    "degradation",
    description="per-worker wear levels advanced by usage, with "
    "condition-based preventive maintenance (RECLAIMED) and corrective "
    "repair (DOWN) sojourns",
    family="hazard",
    parameters=(
        ComponentParameter(
            "wear_rate", float, default=(0.02, 0.05),
            description="per-UP-slot probability of advancing one wear level",
        ),
        ComponentParameter(
            "pm_level", int, default=3,
            description="wear level from which preventive maintenance triggers",
        ),
        ComponentParameter(
            "fail_level", int, default=6,
            description="wear level at which the worker fails (must exceed pm_level)",
        ),
        ComponentParameter(
            "compliance", float, default=(0.6, 0.9),
            description="probability a preventive-maintenance opportunity is taken",
        ),
        ComponentParameter(
            "pm_mean", float, default=4.0,
            description="mean preventive-maintenance sojourn (slots)",
        ),
        ComponentParameter(
            "cm_mean", float, default=25.0,
            description="mean corrective-repair sojourn (slots)",
        ),
        ComponentParameter(
            "pm_dist", str, default="lognormal",
            description="PM sojourn family: geometric, deterministic, lognormal, weibull",
        ),
        ComponentParameter(
            "cm_dist", str, default="lognormal",
            description="CM sojourn family: geometric, deterministic, lognormal, weibull",
        ),
    ),
)
def _degradation_models(spec):
    from repro.hazards.degradation import DegradationAvailabilityModel, sojourn_distribution

    pm_dist = str(spec.get("pm_dist", "lognormal"))
    cm_dist = str(spec.get("cm_dist", "lognormal"))

    def factory(rng, count):
        models = []
        for _ in range(count):
            models.append(
                DegradationAvailabilityModel(
                    wear_rate=draw_parameter(
                        rng, spec.get("wear_rate", (0.02, 0.05)), "wear_rate"
                    ),
                    pm_level=int(draw_parameter(rng, spec.get("pm_level", 3), "pm_level")),
                    fail_level=int(
                        draw_parameter(rng, spec.get("fail_level", 6), "fail_level")
                    ),
                    compliance=draw_parameter(
                        rng, spec.get("compliance", (0.6, 0.9)), "compliance"
                    ),
                    pm_time=sojourn_distribution(
                        pm_dist, draw_parameter(rng, spec.get("pm_mean", 4.0), "pm_mean")
                    ),
                    cm_time=sojourn_distribution(
                        cm_dist, draw_parameter(rng, spec.get("cm_mean", 25.0), "cm_mean")
                    ),
                )
            )
        return models

    return factory


#: Base-chain stay-probability parameters shared by the overlay substrates
#: (the overlays force DOWN on top of an ordinary per-worker Markov base).
_OVERLAY_BASE_PARAMETERS = (
    ComponentParameter(
        "stay_low", float, default=0.90,
        description="lower bound of the base chain's stay-probability draw",
    ),
    ComponentParameter(
        "stay_high", float, default=0.99,
        description="upper bound of the base chain's stay-probability draw",
    ),
)


def _platform_scalar(spec, name: str, default) -> float:
    """A platform-level hazard parameter: scalar only (one process per run)."""
    value = spec.get(name, default)
    if isinstance(value, tuple):
        raise ExperimentError(
            f"availability parameter {name!r} is platform-level and must be a "
            f"scalar, not a [low, high] range (got {list(value)!r})"
        )
    return float(value)


def _overlay_base_factory(spec, hazard_factory):
    """A Section-V Markov base factory carrying a platform hazard overlay."""
    stay_low = _platform_scalar(spec, "stay_low", 0.90)
    stay_high = _platform_scalar(spec, "stay_high", 0.99)

    def factory(rng, count):
        return random_markov_models(count, rng, stay_low=stay_low, stay_high=stay_high)

    factory.hazard_factory = hazard_factory
    return factory


@register_availability_model(
    "correlated",
    description="correlated outages: per-domain event process forcing "
    "simultaneous DOWN spans onto member workers over a Markov base",
    family="hazard",
    parameters=(
        ComponentParameter(
            "domains", int, default=4,
            description="number of shared failure domains (round-robin membership)",
        ),
        ComponentParameter(
            "rate", float, default=0.002,
            description="per-slot probability a healthy domain starts an outage",
        ),
        ComponentParameter(
            "mean_outage", float, default=8.0,
            description="mean domain-outage duration (slots)",
        ),
    ) + _OVERLAY_BASE_PARAMETERS,
)
def _correlated_models(spec):
    from repro.hazards.process import DomainOutageProcess

    domains = int(_platform_scalar(spec, "domains", 4))
    rate = _platform_scalar(spec, "rate", 0.002)
    mean_outage = _platform_scalar(spec, "mean_outage", 8.0)
    # Validate eagerly (at scenario-build time) with a representative size.
    DomainOutageProcess(max(domains, 1), domains=domains, rate=rate, mean_outage=mean_outage)

    return _overlay_base_factory(
        spec,
        lambda num_workers: DomainOutageProcess(
            num_workers, domains=domains, rate=rate, mean_outage=mean_outage
        ),
    )


@register_availability_model(
    "churn",
    description="non-stationary pool churn: workers enrol and leave "
    "mid-application via a birth-death overlay on a Markov base",
    family="hazard",
    parameters=(
        ComponentParameter(
            "mean_present", float, default=400.0,
            description="mean enrolled sojourn per worker (slots)",
        ),
        ComponentParameter(
            "mean_absent", float, default=150.0,
            description="mean absent sojourn per worker (slots)",
        ),
        ComponentParameter(
            "present0", float, default=0.8,
            description="probability a worker is enrolled at slot 0",
        ),
    ) + _OVERLAY_BASE_PARAMETERS,
)
def _churn_models(spec):
    from repro.hazards.process import ChurnProcess

    mean_present = _platform_scalar(spec, "mean_present", 400.0)
    mean_absent = _platform_scalar(spec, "mean_absent", 150.0)
    present0 = _platform_scalar(spec, "present0", 0.8)
    ChurnProcess(
        1, mean_present=mean_present, mean_absent=mean_absent, present0=present0
    )

    return _overlay_base_factory(
        spec,
        lambda num_workers: ChurnProcess(
            num_workers,
            mean_present=mean_present,
            mean_absent=mean_absent,
            present0=present0,
        ),
    )


#: (trace id, kind, options) -> (trace, FittedModel).  The stored trace
#: reference both identifies the dataset (``_load_dataset`` returns cached
#: instances) and keeps its ``id`` from being reused while the entry lives.
_FIT_CACHE: dict = {}
_FIT_CACHE_MAX = 32


def _fit_cached(trace, kind: str, option_items):
    """Memoised ``fit_model`` keyed by the cached trace's identity + options."""
    from repro.traces.fit import TraceFitError, fit_model

    key = (id(trace), kind, option_items)
    entry = _FIT_CACHE.get(key)
    if entry is not None and entry[0] is trace:
        return entry[1]
    try:
        fitted = fit_model(kind, trace, **dict(option_items))
    except TraceFitError as error:
        raise ExperimentError(str(error)) from error
    if len(_FIT_CACHE) >= _FIT_CACHE_MAX:
        _FIT_CACHE.clear()
    _FIT_CACHE[key] = (trace, fitted)
    return fitted
