"""The 3-state discrete-time Markov availability model of Section V.

The availability of processor :math:`P_q` is a recurrent aperiodic Markov
chain over the states ``{UP, RECLAIMED, DOWN}`` defined by nine transition
probabilities :math:`P^{(q)}_{i,j}` with :math:`i, j \\in \\{u, r, d\\}`.

Besides sampling (used by the simulator), this module exposes the
chain-level quantities consumed by the analytical machinery of
:mod:`repro.analysis`:

* the restriction of the chain to the *non-failure* states ``{UP,
  RECLAIMED}`` (the 2x2 matrix :math:`M_q` of the proof of Theorem 5.1) and
  its eigen-decomposition;
* :math:`P^{(q)}_{u \\xrightarrow{t} u}` — the probability that a processor
  that is UP at time 0 is UP again at time *t* without having been DOWN in
  between;
* :math:`P^{(q)}_{ND}(t)` — the probability that a processor UP at time 0
  does not become DOWN during the next *t* slots;
* the stationary distribution, mean sojourn times, and mean time to failure,
  which are useful for sanity checks and for the trace statistics module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.exceptions import InvalidModelError
from repro.availability.model import AvailabilityModel, scan_transition_maps
from repro.types import DOWN, RECLAIMED, UP, STATE_INDEX, ProcessorState
from repro.utils.validation import check_probability_matrix

__all__ = ["MarkovAvailabilityModel"]

_U = STATE_INDEX[UP]
_R = STATE_INDEX[RECLAIMED]
_D = STATE_INDEX[DOWN]


@dataclass(frozen=True)
class _UpReturnSpectrum:
    """Eigen-decomposition of the {UP, RECLAIMED} sub-chain.

    For the 2x2 sub-matrix ``M`` (rows/columns ordered UP, RECLAIMED), the
    proof of Theorem 5.1 uses the closed form

    .. math:: P^{(q)}_{u \\xrightarrow{t} u} = (M^t)[0, 0]
              = \\mu \\lambda_1^t + \\nu \\lambda_2^t

    with :math:`\\lambda_1 \\ge \\lambda_2` the eigenvalues of ``M`` and
    :math:`\\mu + \\nu = 1`.  The coefficients are stored here so repeated
    evaluations are just two exponentiations.
    """

    lambda1: float
    lambda2: float
    mu: float
    nu: float

    def up_return_probability(self, t) -> np.ndarray:
        """Vectorised :math:`P_{u \\to u}(t)`; accepts scalars or arrays."""
        t = np.asarray(t, dtype=float)
        return self.mu * np.power(self.lambda1, t) + self.nu * np.power(self.lambda2, t)


class MarkovAvailabilityModel(AvailabilityModel):
    """3-state Markov chain availability model.

    Parameters
    ----------
    matrix:
        3x3 right-stochastic matrix; rows/columns ordered (UP, RECLAIMED,
        DOWN).  ``matrix[i, j]`` is the probability of moving from state *i*
        at time *t* to state *j* at time *t + 1*.
    initial_distribution:
        Optional length-3 probability vector for the state at time-slot 0.
        The paper's experiments start every processor in a random state drawn
        from the stationary distribution of the chain; when omitted we use the
        stationary distribution, which is also the least-surprising default
        for steady-state availability processes.
    down_recoverable:
        Whether a DOWN processor may come back (the paper's model allows it —
        a crashed machine is eventually rebooted/repaired).  Pure validation
        flag: when ``True`` (default) we require the chain to be recurrent
        (no absorbing DOWN state) so the stationary distribution exists.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        *,
        initial_distribution: Optional[np.ndarray] = None,
        down_recoverable: bool = True,
    ) -> None:
        self._matrix = check_probability_matrix(matrix, "transition matrix", size=3)
        if down_recoverable and self._matrix[_D, _D] >= 1.0 - 1e-12 and (
            self._matrix[_U, _D] > 0 or self._matrix[_R, _D] > 0
        ):
            raise InvalidModelError(
                "DOWN is absorbing but reachable: the chain is not recurrent; "
                "pass down_recoverable=False to allow an absorbing failure state"
            )
        if initial_distribution is not None:
            initial = np.asarray(initial_distribution, dtype=float)
            if initial.shape != (3,):
                raise InvalidModelError(
                    f"initial_distribution must have shape (3,), got {initial.shape}"
                )
            if np.any(initial < 0) or not np.isclose(initial.sum(), 1.0):
                raise InvalidModelError("initial_distribution must be a probability vector")
            self._initial = initial
        else:
            self._initial = None  # computed lazily from the stationary distribution
        self._spectrum: Optional[_UpReturnSpectrum] = None
        self._stationary: Optional[np.ndarray] = None
        self._power_cache: Dict[int, np.ndarray] = {}
        # Cumulative rows for fast inverse-transform sampling (next_state is on
        # the simulator's per-slot hot path; numpy's Generator.choice is far
        # slower than a single uniform draw compared against these thresholds).
        self._cumulative = np.cumsum(self._matrix, axis=1)
        self._cumulative[:, -1] = 1.0
        self._cumulative_initial: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_probabilities(
        cls,
        *,
        p_uu: float,
        p_ur: float,
        p_ud: float,
        p_ru: float,
        p_rr: float,
        p_rd: float,
        p_du: float,
        p_dr: float,
        p_dd: float,
        initial_distribution: Optional[np.ndarray] = None,
    ) -> "MarkovAvailabilityModel":
        """Build a model from the nine named probabilities of the paper."""
        matrix = np.array(
            [
                [p_uu, p_ur, p_ud],
                [p_ru, p_rr, p_rd],
                [p_du, p_dr, p_dd],
            ],
            dtype=float,
        )
        return cls(matrix, initial_distribution=initial_distribution)

    @classmethod
    def always_up(cls) -> "MarkovAvailabilityModel":
        """A degenerate, perfectly reliable processor (useful in tests)."""
        return cls(np.eye(3), initial_distribution=np.array([1.0, 0.0, 0.0]))

    @classmethod
    def two_state(cls, p_stay_up: float, p_recover: float) -> "MarkovAvailabilityModel":
        """A classic UP/DOWN model (no RECLAIMED state).

        ``p_stay_up`` is the probability of remaining UP; ``p_recover`` the
        probability of leaving DOWN.  Used for comparisons with the prior
        2-state literature cited in Section II.
        """
        matrix = np.array(
            [
                [p_stay_up, 0.0, 1.0 - p_stay_up],
                [0.0, 1.0, 0.0],
                [p_recover, 0.0, 1.0 - p_recover],
            ]
        )
        return cls(matrix, initial_distribution=np.array([1.0, 0.0, 0.0]))

    # ------------------------------------------------------------------
    # AvailabilityModel interface
    # ------------------------------------------------------------------
    @property
    def matrix(self) -> np.ndarray:
        """The 3x3 transition matrix (copy; the model itself is immutable)."""
        return self._matrix.copy()

    def markov_approximation(self) -> np.ndarray:
        return self._matrix.copy()

    def initial_state(self, rng: np.random.Generator) -> ProcessorState:
        if self._cumulative_initial is None:
            cumulative = np.cumsum(self.initial_distribution)
            cumulative[-1] = 1.0
            self._cumulative_initial = cumulative
        draw = rng.random()
        index = int(np.searchsorted(self._cumulative_initial, draw, side="right"))
        return ProcessorState(min(index, 2))

    def next_state(
        self, current: ProcessorState, rng: np.random.Generator
    ) -> ProcessorState:
        thresholds = self._cumulative[int(current)]
        draw = rng.random()
        # Unrolled comparison: cheaper than searchsorted for three states.
        if draw < thresholds[0]:
            return UP
        if draw < thresholds[1]:
            return RECLAIMED
        return DOWN

    def sample_block(
        self,
        start_slot: int,
        horizon: int,
        rng: np.random.Generator,
        *,
        current: ProcessorState,
    ) -> np.ndarray:
        """Vectorised block sampling via cumulative-probability indexing.

        One uniform draw per slot (the same draws :meth:`next_state` would
        consume) defines, for each slot, a transition *map* over the three
        states: ``map[i]`` is the state reached from state *i* under that
        draw, obtained by comparing the draw against the cumulative row of
        each state.  The trajectory is then the running composition of these
        maps applied to *current*, computed with a logarithmic number of
        vectorised passes (Hillis–Steele scan over map composition) instead
        of a Python loop over slots.
        """
        if start_slot < 1:
            raise ValueError(f"start_slot must be >= 1, got {start_slot}")
        if horizon < 0:
            raise ValueError(f"horizon must be >= 0, got {horizon}")
        if horizon == 0:
            return np.empty(0, dtype=np.int8)
        draws = rng.random(horizon)[:, None]
        cumulative = self._cumulative
        # maps[t, i] = next state from i under draw t (0, 1 or 2).
        maps = (draws >= cumulative[None, :, 0]).astype(np.int8)
        maps += draws >= cumulative[None, :, 1]
        return scan_transition_maps(maps, int(current))

    # ------------------------------------------------------------------
    # Derived probabilistic quantities
    # ------------------------------------------------------------------
    @property
    def initial_distribution(self) -> np.ndarray:
        """Distribution of the state at time 0 (stationary by default)."""
        if self._initial is not None:
            return self._initial
        return self.stationary_distribution()

    def stationary_distribution(self) -> np.ndarray:
        """Stationary distribution π with ``π P = π`` (cached).

        Computed as the normalised left null-space vector of ``P - I``.  For
        reducible chains (e.g. an absorbing DOWN state) this returns *a*
        stationary distribution.
        """
        if self._stationary is None:
            # Reducible chains (e.g. the degenerate always-UP model) admit many
            # stationary distributions; when the explicit initial distribution
            # is itself stationary, prefer it — it is the distribution the
            # process actually follows.
            if self._initial is not None and np.allclose(
                self._initial @ self._matrix, self._initial, atol=1e-12
            ):
                self._stationary = self._initial.copy()
                return self._stationary.copy()
            # Solve pi (P - I) = 0 with the normalisation sum(pi) = 1 by
            # stacking the normalisation constraint onto the transposed system.
            a = np.vstack([self._matrix.T - np.eye(3), np.ones((1, 3))])
            b = np.array([0.0, 0.0, 0.0, 1.0])
            solution, *_ = np.linalg.lstsq(a, b, rcond=None)
            solution = np.clip(solution, 0.0, None)
            total = solution.sum()
            if total <= 0:
                raise InvalidModelError("failed to compute a stationary distribution")
            self._stationary = solution / total
        return self._stationary.copy()

    def availability(self) -> float:
        """Long-run fraction of time the processor is UP."""
        return float(self.stationary_distribution()[_U])

    def mean_sojourn(self, state: ProcessorState) -> float:
        """Expected number of consecutive slots spent in *state* per visit."""
        stay = self._matrix[int(state), int(state)]
        if stay >= 1.0:
            return float("inf")
        return 1.0 / (1.0 - stay)

    def mean_time_to_failure(self) -> float:
        """Expected number of slots before first entering DOWN, starting UP.

        Standard absorbing-chain computation on the ``{UP, RECLAIMED}``
        sub-chain: :math:`\\mathbb{E}[T_d] = (I - M)^{-1} \\mathbf{1}`
        evaluated at the UP entry.  Returns ``inf`` when DOWN is unreachable.
        """
        sub = self.up_reclaimed_submatrix()
        if np.isclose(sub.sum(axis=1), 1.0).all():
            return float("inf")
        fundamental = np.linalg.inv(np.eye(2) - sub)
        expected = fundamental @ np.ones(2)
        return float(expected[0])

    def up_reclaimed_submatrix(self) -> np.ndarray:
        """The 2x2 sub-matrix ``M_q`` over the non-failure states {UP, RECLAIMED}."""
        return self._matrix[np.ix_([_U, _R], [_U, _R])].copy()

    def failure_probability_from_up(self) -> float:
        """One-step probability of failing (UP -> DOWN)."""
        return float(self._matrix[_U, _D])

    def can_fail(self) -> bool:
        """Whether DOWN is reachable from {UP, RECLAIMED}."""
        return bool(self._matrix[_U, _D] > 0 or self._matrix[_R, _D] > 0)

    # -- Eigen machinery of Theorem 5.1 --------------------------------
    def up_return_spectrum(self) -> _UpReturnSpectrum:
        """Eigen-decomposition of ``M_q`` giving the closed form of P_{u->u}(t)."""
        if self._spectrum is None:
            sub = self.up_reclaimed_submatrix()
            eigenvalues, eigenvectors = np.linalg.eig(sub)
            order = np.argsort(eigenvalues.real)[::-1]
            eigenvalues = eigenvalues[order].real
            eigenvectors = eigenvectors[:, order].real
            lambda1, lambda2 = float(eigenvalues[0]), float(eigenvalues[1])
            if abs(lambda1 - lambda2) < 1e-14:
                # Degenerate case (e.g. diagonal M with equal entries): fall
                # back to mu = (M)[0,0]/lambda1 so that t = 1 is exact; the
                # closed form is then only used for the shared eigenvalue.
                mu = 1.0
                nu = 0.0
            else:
                # P_{u->u}(t) = e_0^T M^t e_0 expressed in the eigenbasis.
                try:
                    inverse = np.linalg.inv(eigenvectors)
                    weights = eigenvectors[0, :] * inverse[:, 0]
                    mu, nu = float(weights[0]), float(weights[1])
                except np.linalg.LinAlgError:  # pragma: no cover - defensive
                    mu, nu = 1.0, 0.0
            self._spectrum = _UpReturnSpectrum(lambda1=lambda1, lambda2=lambda2, mu=mu, nu=nu)
        return self._spectrum

    def dominant_up_eigenvalue(self) -> float:
        """:math:`\\lambda_1^{(q)}`, the spectral radius of ``M_q`` (in [0, 1])."""
        return self.up_return_spectrum().lambda1

    def up_return_probability(self, t) -> np.ndarray:
        """:math:`P^{(q)}_{u \\xrightarrow{t} u}` for scalar or array *t*.

        Probability that a processor UP at time 0 is UP at time *t* without
        having been DOWN in between.  ``t = 0`` gives 1 by convention.
        """
        spectrum = self.up_return_spectrum()
        values = spectrum.up_return_probability(t)
        # Guard against tiny negative values from the eigen closed form.
        return np.clip(values, 0.0, 1.0)

    def up_return_probabilities(self, horizon: int) -> np.ndarray:
        """Vector ``[P_{u->u}(1), ..., P_{u->u}(horizon)]`` (length *horizon*)."""
        if horizon < 0:
            raise ValueError(f"horizon must be >= 0, got {horizon}")
        if horizon == 0:
            return np.empty(0)
        return self.up_return_probability(np.arange(1, horizon + 1))

    def no_down_probability(self, t: int) -> float:
        """:math:`P^{(q)}_{ND}(t)`: starting UP, probability of no DOWN within *t* slots.

        Computed on the {UP, RECLAIMED} sub-chain: the probability mass that
        has not leaked into DOWN after *t* steps.
        """
        if t < 0:
            raise ValueError(f"t must be >= 0, got {t}")
        if t == 0:
            return 1.0
        sub_power = np.linalg.matrix_power(self.up_reclaimed_submatrix(), int(t))
        return float(np.clip(sub_power[0, :].sum(), 0.0, 1.0))

    def transition_power(self, t: int) -> np.ndarray:
        """``matrix ** t`` with caching (used by exact trace statistics)."""
        if t < 0:
            raise ValueError(f"t must be >= 0, got {t}")
        cached = self._power_cache.get(t)
        if cached is None:
            cached = np.linalg.matrix_power(self._matrix, int(t))
            self._power_cache[t] = cached
        return cached.copy()

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def describe(self) -> str:
        p = self._matrix
        return (
            "Markov(p_uu={:.3f}, p_rr={:.3f}, p_dd={:.3f}, availability={:.3f})".format(
                p[_U, _U], p[_R, _R], p[_D, _D], self.availability()
            )
        )

    def to_dict(self) -> dict:
        """JSON-serialisable representation (used by experiment persistence)."""
        payload = {"type": "markov", "matrix": self._matrix.tolist()}
        if self._initial is not None:
            payload["initial_distribution"] = self._initial.tolist()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "MarkovAvailabilityModel":
        """Inverse of :meth:`to_dict`."""
        if payload.get("type") != "markov":
            raise InvalidModelError(f"not a markov model payload: {payload.get('type')!r}")
        initial = payload.get("initial_distribution")
        return cls(
            np.asarray(payload["matrix"], dtype=float),
            initial_distribution=None if initial is None else np.asarray(initial, dtype=float),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<MarkovAvailabilityModel {self.describe()}>"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MarkovAvailabilityModel):
            return NotImplemented
        return np.allclose(self._matrix, other._matrix)

    def __hash__(self) -> int:
        return hash(self._matrix.tobytes())
