"""Semi-Markov availability models (non-Markovian holding times).

The paper's conclusion notes that real desktop-grid availability intervals
are "far from being exponentially distributed" and suggests Weibull or
log-normal holding times (citing Nurmi et al., Wolski et al., Javadi et al.).
It proposes, as future work, to evaluate how badly the Markov-based
heuristics behave when the true availability process is *not* Markovian.

This module implements that substrate: a discrete-time semi-Markov process
where

* the *embedded* jump chain between states (which state comes next when the
  current sojourn ends) is an ordinary 3x3 stochastic matrix with a zero
  diagonal, and
* the number of slots spent in a state before jumping is drawn from an
  arbitrary per-state holding-time distribution (Weibull, log-normal,
  geometric, deterministic...).

The resulting process is indistinguishable from a Markov chain only when all
holding times are geometric; otherwise it has memory, and the analysis of
Section V is only an approximation for it — which is exactly what the
robustness benchmark (``benchmarks/bench_nonmarkov.py``) measures.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, Optional

import numpy as np

from repro.availability.model import AvailabilityModel
from repro.exceptions import InvalidModelError
from repro.types import DOWN, RECLAIMED, UP, ProcessorState
from repro.utils.validation import check_positive

__all__ = [
    "HoldingTimeDistribution",
    "GeometricHolding",
    "DeterministicHolding",
    "WeibullHolding",
    "LogNormalHolding",
    "SemiMarkovAvailabilityModel",
]


class HoldingTimeDistribution(abc.ABC):
    """Distribution of the number of whole slots spent in a state (>= 1)."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> int:
        """Draw one holding time (an integer >= 1)."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Expected holding time in slots."""

    def describe(self) -> str:
        return type(self).__name__


class GeometricHolding(HoldingTimeDistribution):
    """Geometric holding time with success probability *p* (mean ``1/p``).

    With geometric holding times the semi-Markov process collapses to an
    ordinary Markov chain, which makes this class handy for differential
    testing of :class:`SemiMarkovAvailabilityModel` against
    :class:`~repro.availability.markov.MarkovAvailabilityModel`.
    """

    def __init__(self, p: float) -> None:
        if not (0.0 < p <= 1.0):
            raise InvalidModelError(f"geometric parameter must be in (0, 1], got {p}")
        self.p = float(p)

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.geometric(self.p))

    def mean(self) -> float:
        return 1.0 / self.p

    def describe(self) -> str:
        return f"Geometric(p={self.p:.4f})"


class DeterministicHolding(HoldingTimeDistribution):
    """Constant holding time (useful for scripted scenarios and tests)."""

    def __init__(self, duration: int) -> None:
        if duration < 1:
            raise InvalidModelError(f"holding duration must be >= 1, got {duration}")
        self.duration = int(duration)

    def sample(self, rng: np.random.Generator) -> int:
        return self.duration

    def mean(self) -> float:
        return float(self.duration)

    def describe(self) -> str:
        return f"Deterministic({self.duration})"


class WeibullHolding(HoldingTimeDistribution):
    """Weibull holding time, discretised by ceiling to whole slots.

    ``shape < 1`` gives the heavy-tailed behaviour reported for desktop-grid
    availability intervals (many short intervals, a few very long ones).
    """

    def __init__(self, shape: float, scale: float) -> None:
        self.shape = check_positive(shape, "shape")
        self.scale = check_positive(scale, "scale")

    def sample(self, rng: np.random.Generator) -> int:
        value = self.scale * rng.weibull(self.shape)
        return max(1, int(math.ceil(value)))

    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def describe(self) -> str:
        return f"Weibull(shape={self.shape:.3f}, scale={self.scale:.3f})"


class LogNormalHolding(HoldingTimeDistribution):
    """Log-normal holding time, discretised by ceiling to whole slots."""

    def __init__(self, mu: float, sigma: float) -> None:
        self.mu = float(mu)
        self.sigma = check_positive(sigma, "sigma")

    def sample(self, rng: np.random.Generator) -> int:
        value = rng.lognormal(self.mu, self.sigma)
        return max(1, int(math.ceil(value)))

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2.0)

    def describe(self) -> str:
        return f"LogNormal(mu={self.mu:.3f}, sigma={self.sigma:.3f})"


class SemiMarkovAvailabilityModel(AvailabilityModel):
    """Discrete-time semi-Markov availability process.

    Parameters
    ----------
    jump_matrix:
        3x3 stochastic matrix of the embedded jump chain.  The diagonal must
        be zero: remaining in a state is expressed through the holding-time
        distribution, not through a self-loop.
    holding_times:
        Mapping state -> :class:`HoldingTimeDistribution`.
    initial_state:
        State at time-slot 0 (default UP, matching the paper's convention of
        only enrolling processors observed UP).
    """

    def __init__(
        self,
        jump_matrix: np.ndarray,
        holding_times: Dict[ProcessorState, HoldingTimeDistribution],
        *,
        initial_state: ProcessorState = UP,
    ) -> None:
        matrix = np.asarray(jump_matrix, dtype=float)
        if matrix.shape != (3, 3):
            raise InvalidModelError(f"jump matrix must be 3x3, got {matrix.shape}")
        if np.any(np.abs(np.diag(matrix)) > 1e-12):
            raise InvalidModelError("jump matrix must have a zero diagonal")
        if np.any(matrix < 0) or not np.allclose(matrix.sum(axis=1), 1.0):
            raise InvalidModelError("jump matrix rows must be probability vectors")
        for state in (UP, RECLAIMED, DOWN):
            if state not in holding_times:
                raise InvalidModelError(f"missing holding-time distribution for {state.name}")
        self._jump = matrix
        self._holding = dict(holding_times)
        self._initial = ProcessorState.coerce(initial_state)
        self._remaining = 0
        self._fitted: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @classmethod
    def desktop_grid(
        cls,
        *,
        up_shape: float = 0.6,
        mean_up: float = 40.0,
        mean_reclaimed: float = 5.0,
        mean_down: float = 20.0,
        reclaim_fraction: float = 0.7,
    ) -> "SemiMarkovAvailabilityModel":
        """A convenience preset loosely shaped like published desktop-grid traces.

        Availability intervals are Weibull with ``shape < 1`` (heavy tail);
        reclamations are short and much more frequent than crashes
        (``reclaim_fraction`` of departures from UP are reclamations).
        """
        if not (0.0 <= reclaim_fraction <= 1.0):
            raise InvalidModelError("reclaim_fraction must lie in [0, 1]")
        jump = np.array(
            [
                [0.0, reclaim_fraction, 1.0 - reclaim_fraction],
                [0.9, 0.0, 0.1],
                [1.0, 0.0, 0.0],
            ]
        )
        up_scale = mean_up / math.gamma(1.0 + 1.0 / up_shape)
        holding = {
            UP: WeibullHolding(up_shape, up_scale),
            RECLAIMED: LogNormalHolding(math.log(max(mean_reclaimed, 1.0)), 0.75),
            DOWN: LogNormalHolding(math.log(max(mean_down, 1.0)), 0.5),
        }
        return cls(jump, holding)

    # ------------------------------------------------------------------
    # AvailabilityModel interface
    # ------------------------------------------------------------------
    def reset(self) -> None:
        self._remaining = 0

    def initial_state(self, rng: np.random.Generator) -> ProcessorState:
        self._remaining = max(0, self._holding[self._initial].sample(rng) - 1)
        return self._initial

    def next_state(self, current: ProcessorState, rng: np.random.Generator) -> ProcessorState:
        if self._remaining > 0:
            self._remaining -= 1
            return current
        row = self._jump[int(current)]
        target = ProcessorState(int(rng.choice(3, p=row)))
        self._remaining = max(0, self._holding[target].sample(rng) - 1)
        return target

    def sample_block(
        self,
        start_slot: int,
        horizon: int,
        rng: np.random.Generator,
        *,
        current: ProcessorState,
    ) -> np.ndarray:
        """Block sampling by whole sojourns instead of single slots.

        The inner loop runs once per *sojourn* (jump draw + holding-time
        draw, then an array fill of the whole run of identical states)
        rather than once per slot, which collapses the per-slot Python
        overhead by the mean holding time.  The generator is consumed in
        exactly the same order as repeated :meth:`next_state` calls.
        """
        if start_slot < 1:
            raise ValueError(f"start_slot must be >= 1, got {start_slot}")
        if horizon < 0:
            raise ValueError(f"horizon must be >= 0, got {horizon}")
        states = np.empty(horizon, dtype=np.int8)
        filled = 0
        state = ProcessorState.coerce(current)
        while filled < horizon:
            if self._remaining > 0:
                run = min(self._remaining, horizon - filled)
                states[filled: filled + run] = int(state)
                self._remaining -= run
                filled += run
            else:
                row = self._jump[int(state)]
                state = ProcessorState(int(rng.choice(3, p=row)))
                self._remaining = max(0, self._holding[state].sample(rng) - 1)
                states[filled] = int(state)
                filled += 1
        return states

    def markov_approximation(self) -> np.ndarray:
        """Geometric-holding-time Markov fit with the same mean sojourns.

        For each state *i* with mean holding time :math:`h_i`, the fitted
        chain stays with probability :math:`1 - 1/h_i` and otherwise jumps
        according to the embedded jump chain.  This is the natural "flawed"
        Markov model a scheduler would estimate from the marginal interval
        lengths of a trace.
        """
        if self._fitted is None:
            matrix = np.zeros((3, 3))
            for index in range(3):
                state = ProcessorState(index)
                mean_holding = max(self._holding[state].mean(), 1.0)
                leave = 1.0 / mean_holding
                matrix[index] = leave * self._jump[index]
                matrix[index, index] = 1.0 - leave
            self._fitted = matrix
        return self._fitted.copy()

    def describe(self) -> str:
        parts = ", ".join(
            f"{state.name.lower()}={self._holding[state].describe()}"
            for state in (UP, RECLAIMED, DOWN)
        )
        return f"SemiMarkov({parts})"
