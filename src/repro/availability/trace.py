"""Availability traces and trace-replay models.

Two distinct needs are served here:

* **Off-line problems and golden tests** need a *fixed, known* availability
  matrix (the vectors :math:`S_q` of the paper).  :class:`AvailabilityTrace`
  stores such a matrix (one row per processor, one column per slot) with
  helpers for slicing, serialisation, and conversion to/from compact string
  form (``"uurdd..."``).

* **Trace-driven simulation** (the robustness extension, or replaying a
  recorded desktop-grid log) needs an :class:`AvailabilityModel` that simply
  replays one row of a trace.  :class:`TraceAvailabilityModel` wraps a single
  per-processor state sequence and exposes the model interface, fitting an
  empirical Markov matrix for use by the analysis-based heuristics.

Recorded logs enter this representation through :mod:`repro.traces`:
:mod:`repro.traces.formats` parses interval CSV / JSONL event / compact
files into :class:`AvailabilityTrace` matrices, :mod:`repro.traces.fit`
calibrates Markov / semi-Markov / diurnal models against them, and
:mod:`repro.traces.resample` bootstrap-resamples them into substrates for
arbitrary processor counts (registered as the ``trace-catalog``,
``trace-bootstrap`` and ``fitted`` availability kinds).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.availability.model import AvailabilityModel
from repro.availability.statistics import estimate_markov_matrix
from repro.exceptions import InvalidModelError
from repro.types import UP, ProcessorState, StateLike

__all__ = ["AvailabilityTrace", "TraceAvailabilityModel"]


def _coerce_states(row: Union[str, Sequence[StateLike], np.ndarray]) -> np.ndarray:
    """Convert a row given as string / sequence / array into an int8 vector."""
    if isinstance(row, str):
        return np.array([int(ProcessorState.from_char(c)) for c in row], dtype=np.int8)
    if isinstance(row, np.ndarray) and row.dtype.kind in "iu":
        values = row.astype(np.int8)
        if values.size and (values.min() < 0 or values.max() > 2):
            raise InvalidModelError("state codes must be 0 (UP), 1 (RECLAIMED) or 2 (DOWN)")
        return values
    return np.array([int(ProcessorState.coerce(value)) for value in row], dtype=np.int8)


class AvailabilityTrace:
    """A fixed availability matrix: ``states[q, t]`` is the state of P_q at slot *t*."""

    def __init__(self, states: Union[np.ndarray, Sequence[Union[str, Sequence[StateLike]]]]):
        if isinstance(states, np.ndarray) and states.ndim == 2:
            matrix = _coerce_states(states.reshape(-1)).reshape(states.shape)
        else:
            rows = [_coerce_states(row) for row in states]
            if not rows:
                raise InvalidModelError("a trace needs at least one processor row")
            lengths = {row.size for row in rows}
            if len(lengths) != 1:
                raise InvalidModelError(
                    f"all processor rows must have the same length, got lengths {sorted(lengths)}"
                )
            matrix = np.vstack(rows)
        if matrix.ndim != 2:
            raise InvalidModelError("trace states must form a 2-D matrix")
        self._states = matrix.astype(np.int8)

    # ------------------------------------------------------------------
    @property
    def states(self) -> np.ndarray:
        """The underlying ``(p, N)`` int8 matrix (copy)."""
        return self._states.copy()

    @property
    def num_processors(self) -> int:
        return int(self._states.shape[0])

    @property
    def horizon(self) -> int:
        """Number of time-slots covered by the trace."""
        return int(self._states.shape[1])

    def state(self, worker: int, t: int) -> ProcessorState:
        """State of processor *worker* at slot *t*."""
        return ProcessorState(int(self._states[worker, t]))

    def row(self, worker: int) -> np.ndarray:
        """The full state vector :math:`S_q` of one processor."""
        return self._states[worker].copy()

    def block(self, start: int, stop: int) -> np.ndarray:
        """The ``(p, stop - start)`` state block for slots ``[start, stop)``.

        This is the chunked accessor used by the simulation engine: unlike
        :attr:`states` it copies only the requested slice, never the whole
        matrix.
        """
        if start < 0 or stop < start or stop > self.horizon:
            raise ValueError(
                f"need 0 <= start <= stop <= {self.horizon}, got [{start}, {stop})"
            )
        return self._states[:, start:stop].copy()

    def up_matrix(self) -> np.ndarray:
        """Boolean matrix ``up[q, t]`` — True where the processor is UP."""
        return self._states == int(UP)

    def processors_up_at(self, t: int) -> List[int]:
        """Indices of processors UP at slot *t*."""
        return [int(q) for q in np.flatnonzero(self._states[:, t] == int(UP))]

    def slots_all_up(self, workers: Iterable[int]) -> np.ndarray:
        """Slots at which all the given *workers* are simultaneously UP."""
        workers = list(workers)
        if not workers:
            return np.arange(self.horizon)
        mask = np.all(self._states[workers, :] == int(UP), axis=0)
        return np.flatnonzero(mask)

    def truncated(self, horizon: int) -> "AvailabilityTrace":
        """A copy of the trace restricted to the first *horizon* slots."""
        if horizon < 0 or horizon > self.horizon:
            raise ValueError(
                f"horizon must be in [0, {self.horizon}], got {horizon}"
            )
        return AvailabilityTrace(self._states[:, :horizon])

    def extended(self, extra: "AvailabilityTrace") -> "AvailabilityTrace":
        """Concatenate another trace for the same processors after this one."""
        if extra.num_processors != self.num_processors:
            raise InvalidModelError(
                "cannot extend: traces describe different numbers of processors"
            )
        return AvailabilityTrace(np.hstack([self._states, extra._states]))

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_strings(self) -> List[str]:
        """Compact per-processor strings such as ``"uurddru"``."""
        chars = np.array(["u", "r", "d"])
        return ["".join(chars[row]) for row in self._states]

    def to_dict(self) -> dict:
        return {"type": "trace", "rows": self.to_strings()}

    @classmethod
    def from_dict(cls, payload: dict) -> "AvailabilityTrace":
        if payload.get("type") != "trace":
            raise InvalidModelError(f"not a trace payload: {payload.get('type')!r}")
        return cls(payload["rows"])

    @classmethod
    def from_models(
        cls,
        models: Sequence[AvailabilityModel],
        horizon: int,
        seed=None,
        *,
        initial: Optional[ProcessorState] = None,
    ) -> "AvailabilityTrace":
        """Materialise a trace by sampling one trajectory per model."""
        from repro.utils.rng import spawn_generators

        generators = spawn_generators(seed, len(models))
        rows = [
            model.sample_trajectory(horizon, generator, initial=initial)
            for model, generator in zip(models, generators)
        ]
        return cls(np.vstack(rows) if rows else np.empty((0, horizon), dtype=np.int8))

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AvailabilityTrace):
            return NotImplemented
        return self._states.shape == other._states.shape and bool(
            np.all(self._states == other._states)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<AvailabilityTrace p={self.num_processors} N={self.horizon}>"


class TraceAvailabilityModel(AvailabilityModel):
    """Replay a single processor's recorded state sequence.

    The model steps through the given sequence slot by slot; when the
    sequence is exhausted the behaviour is controlled by ``wrap``:

    * ``wrap=True`` (default) — replay from the beginning (periodic
      extension), which keeps long simulations well-defined;
    * ``wrap=False`` — the final state repeats forever.

    :meth:`markov_approximation` fits a maximum-likelihood Markov matrix to
    the sequence, which is exactly the "flawed Markov model built from
    traces" that the paper's conclusion proposes to study.
    """

    def __init__(self, states: Union[str, Sequence[StateLike], np.ndarray], *, wrap: bool = True):
        values = _coerce_states(states)
        if values.size == 0:
            raise InvalidModelError("a trace model needs at least one state")
        self._sequence = values
        self._wrap = bool(wrap)
        self._cursor = 0
        self._fitted: Optional[np.ndarray] = None

    @property
    def sequence(self) -> np.ndarray:
        return self._sequence.copy()

    def reset(self) -> None:
        self._cursor = 0

    def initial_state(self, rng: np.random.Generator) -> ProcessorState:
        self._cursor = 0
        return ProcessorState(int(self._sequence[0]))

    def next_state(self, current: ProcessorState, rng: np.random.Generator) -> ProcessorState:
        self._cursor += 1
        if self._cursor >= self._sequence.size:
            if self._wrap:
                self._cursor = self._cursor % self._sequence.size
            else:
                self._cursor = self._sequence.size - 1
        return ProcessorState(int(self._sequence[self._cursor]))

    def sample_block(
        self,
        start_slot: int,
        horizon: int,
        rng: np.random.Generator,
        *,
        current: ProcessorState,
    ) -> np.ndarray:
        """Replay *horizon* slots of the sequence at once (no randomness)."""
        if start_slot < 1:
            raise ValueError(f"start_slot must be >= 1, got {start_slot}")
        if horizon < 0:
            raise ValueError(f"horizon must be >= 0, got {horizon}")
        size = self._sequence.size
        indices = self._cursor + 1 + np.arange(horizon)
        if self._wrap:
            indices %= size
        else:
            indices = np.minimum(indices, size - 1)
        if horizon:
            self._cursor = int(indices[-1])
        return self._sequence[indices]

    def markov_approximation(self) -> np.ndarray:
        if self._fitted is None:
            self._fitted = estimate_markov_matrix(self._sequence)
        return self._fitted.copy()

    def to_dict(self) -> dict:
        """JSON-serialisable representation (single-row trace payload)."""
        chars = np.array(["u", "r", "d"])
        return {"type": "trace", "rows": ["".join(chars[self._sequence])], "wrap": self._wrap}

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceAvailabilityModel":
        """Inverse of :meth:`to_dict`."""
        if payload.get("type") != "trace" or len(payload.get("rows", [])) != 1:
            raise InvalidModelError("expected a single-row trace payload")
        return cls(payload["rows"][0], wrap=payload.get("wrap", True))

    def describe(self) -> str:
        up_fraction = float(np.mean(self._sequence == int(UP))) if self._sequence.size else 0.0
        return f"Trace(length={self._sequence.size}, up_fraction={up_fraction:.3f})"
