"""Abstract availability-model interface.

The simulator drives availability models through a tiny protocol:

* :meth:`AvailabilityModel.initial_state` — draw the state at time-slot 0;
* :meth:`AvailabilityModel.next_state` — draw the state at ``t + 1`` given
  the state at ``t`` (models may keep internal memory, e.g. semi-Markov
  holding times);
* :meth:`AvailabilityModel.reset` — clear any internal memory so that a new
  trajectory can be sampled.

Schedulers that rely on the analytical results of Section V additionally need
a 3x3 Markov transition matrix.  Models that are genuinely Markovian return
their exact matrix from :meth:`AvailabilityModel.markov_approximation`;
non-Markovian models return a *fitted* matrix (this is precisely the "flawed
Markov model" experiment suggested in the paper's conclusion).
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.types import ProcessorState
from repro.utils.rng import SeedLike, as_generator

__all__ = ["AvailabilityModel"]


class AvailabilityModel(abc.ABC):
    """Abstract base class for per-processor availability processes."""

    @abc.abstractmethod
    def initial_state(self, rng: np.random.Generator) -> ProcessorState:
        """Draw the state of the processor at time-slot 0."""

    @abc.abstractmethod
    def next_state(
        self, current: ProcessorState, rng: np.random.Generator
    ) -> ProcessorState:
        """Draw the state at the next time-slot given the *current* state."""

    def reset(self) -> None:
        """Clear per-trajectory internal memory (no-op for memoryless models)."""

    @abc.abstractmethod
    def markov_approximation(self) -> np.ndarray:
        """Return a 3x3 stochastic matrix approximating this process.

        Rows/columns are ordered (UP, RECLAIMED, DOWN) as in
        :data:`repro.types.STATE_INDEX`.  For a genuine Markov model this is
        the exact transition matrix; for other models it is a best-effort
        Markov fit used by the analysis-based heuristics.
        """

    # ------------------------------------------------------------------
    # Convenience sampling helpers shared by all models.
    # ------------------------------------------------------------------
    def sample_trajectory(
        self,
        length: int,
        seed: SeedLike = None,
        *,
        initial: Optional[ProcessorState] = None,
    ) -> np.ndarray:
        """Sample a trajectory of *length* states as an ``int8`` array.

        Parameters
        ----------
        length:
            Number of time-slots to sample (>= 0).
        seed:
            Seed or generator for the random draws.
        initial:
            Optional forced initial state; when omitted the model's
            :meth:`initial_state` is used.
        """
        if length < 0:
            raise ValueError(f"length must be >= 0, got {length}")
        rng = as_generator(seed)
        states = np.empty(length, dtype=np.int8)
        self.reset()
        if length == 0:
            return states
        current = initial if initial is not None else self.initial_state(rng)
        states[0] = int(current)
        for t in range(1, length):
            current = self.next_state(current, rng)
            states[t] = int(current)
        return states

    def describe(self) -> str:
        """One-line human-readable description (used in logs and reports)."""
        return type(self).__name__
