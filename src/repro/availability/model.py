"""Abstract availability-model interface.

The simulator drives availability models through a tiny protocol:

* :meth:`AvailabilityModel.initial_state` — draw the state at time-slot 0;
* :meth:`AvailabilityModel.sample_block` — draw the states of a whole block
  of consecutive slots at once (the simulator's hot path; vectorised by the
  concrete models);
* :meth:`AvailabilityModel.next_state` — draw the state at ``t + 1`` given
  the state at ``t`` (models may keep internal memory, e.g. semi-Markov
  holding times); kept as the single-slot compatibility primitive that the
  default :meth:`sample_block` falls back to;
* :meth:`AvailabilityModel.reset` — clear any internal memory so that a new
  trajectory can be sampled.

Every concrete ``sample_block`` implementation is *stream-equivalent* to the
corresponding sequence of ``next_state`` calls: it consumes the generator in
exactly the same order, so a fixed seed produces bit-identical trajectories
whichever driver is used.  The test suite pins this property down for every
model shipped here.

Schedulers that rely on the analytical results of Section V additionally need
a 3x3 Markov transition matrix.  Models that are genuinely Markovian return
their exact matrix from :meth:`AvailabilityModel.markov_approximation`;
non-Markovian models return a *fitted* matrix (this is precisely the "flawed
Markov model" experiment suggested in the paper's conclusion).
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.types import ProcessorState
from repro.utils.rng import SeedLike, as_generator

__all__ = ["AvailabilityModel", "scan_transition_maps"]

#: Internal chunk size of :func:`scan_transition_maps`; keeps the scan's
#: O(n log n) composition cost at O(n log chunk) for long horizons.
_SCAN_CHUNK = 4096

# A map {0, 1, 2} -> {0, 1, 2} is encoded as m(0) + 3·m(1) + 9·m(2), i.e. one
# of 27 codes.  _DECODE[c, i] applies map c to state i; _COMPOSE[a, b] is the
# code of "apply b, then a".  Composing codes through one small lookup table
# is much faster than composing (n, 3) map matrices with gathers.
_DECODE = np.array(
    [[(code // power) % 3 for power in (1, 3, 9)] for code in range(27)], dtype=np.int8
)
_COMPOSE = np.array(
    [[int(_DECODE[a][_DECODE[b]] @ np.array([1, 3, 9])) for b in range(27)] for a in range(27)],
    dtype=np.int16,
)


def scan_transition_maps(maps: np.ndarray, current: int) -> np.ndarray:
    """Apply a sequence of per-slot transition maps to an initial state.

    ``maps[t, i]`` is the state reached from state *i* by the transition of
    slot *t*; the result is the state trajectory ``s_t = maps[t][s_{t-1}]``
    with ``s_{-1} = current``.  Instead of a Python loop over slots, each map
    is packed into one of 27 codes and the codes are prefix-composed with a
    Hillis–Steele scan (map composition is associative) through the
    :data:`_COMPOSE` lookup table, processed in chunks so the work stays
    quasi-linear in the horizon.

    Shared by the Markov and diurnal models, whose block samplers both
    reduce to "one cumulative-threshold map per slot".
    """
    horizon = maps.shape[0]
    codes = maps.astype(np.int16) @ np.array([1, 3, 9], dtype=np.int16)
    states = np.empty(horizon, dtype=np.int8)
    state = int(current)
    for chunk_start in range(0, horizon, _SCAN_CHUNK):
        chunk = codes[chunk_start: chunk_start + _SCAN_CHUNK]
        length = chunk.shape[0]
        offset = 1
        while offset < length:
            chunk[offset:] = _COMPOSE[chunk[offset:], chunk[:-offset]]
            offset *= 2
        trajectory = _DECODE[chunk, state]
        states[chunk_start: chunk_start + length] = trajectory
        if length:
            state = int(trajectory[-1])
    return states


class AvailabilityModel(abc.ABC):
    """Abstract base class for per-processor availability processes."""

    @abc.abstractmethod
    def initial_state(self, rng: np.random.Generator) -> ProcessorState:
        """Draw the state of the processor at time-slot 0."""

    @abc.abstractmethod
    def next_state(
        self, current: ProcessorState, rng: np.random.Generator
    ) -> ProcessorState:
        """Draw the state at the next time-slot given the *current* state."""

    def reset(self) -> None:
        """Clear per-trajectory internal memory (no-op for memoryless models)."""

    def sample_block(
        self,
        start_slot: int,
        horizon: int,
        rng: np.random.Generator,
        *,
        current: ProcessorState,
    ) -> np.ndarray:
        """Draw the states of slots ``[start_slot, start_slot + horizon)`` at once.

        Parameters
        ----------
        start_slot:
            Absolute index of the first slot to sample (>= 1; slot 0 comes
            from :meth:`initial_state`).  Models with an internal clock
            (e.g. diurnal phases) use it to locate themselves in time.
        horizon:
            Number of slots to sample (>= 0).
        rng:
            The generator to consume.  The draws are taken in exactly the
            same order as *horizon* successive :meth:`next_state` calls, so
            block-sampling and slot-by-slot sampling of the same stream
            yield identical trajectories.
        current:
            The state at slot ``start_slot - 1``.

        Returns
        -------
        ``int8`` array of *horizon* state codes.

        The base implementation simply loops over :meth:`next_state`;
        concrete models override it with vectorised samplers.
        """
        if start_slot < 1:
            raise ValueError(f"start_slot must be >= 1, got {start_slot}")
        if horizon < 0:
            raise ValueError(f"horizon must be >= 0, got {horizon}")
        states = np.empty(horizon, dtype=np.int8)
        state = current
        for offset in range(horizon):
            state = self.next_state(state, rng)
            states[offset] = int(state)
        return states

    @abc.abstractmethod
    def markov_approximation(self) -> np.ndarray:
        """Return a 3x3 stochastic matrix approximating this process.

        Rows/columns are ordered (UP, RECLAIMED, DOWN) as in
        :data:`repro.types.STATE_INDEX`.  For a genuine Markov model this is
        the exact transition matrix; for other models it is a best-effort
        Markov fit used by the analysis-based heuristics.
        """

    # ------------------------------------------------------------------
    # Convenience sampling helpers shared by all models.
    # ------------------------------------------------------------------
    def sample_trajectory(
        self,
        length: int,
        seed: SeedLike = None,
        *,
        initial: Optional[ProcessorState] = None,
    ) -> np.ndarray:
        """Sample a trajectory of *length* states as an ``int8`` array.

        Parameters
        ----------
        length:
            Number of time-slots to sample (>= 0).
        seed:
            Seed or generator for the random draws.
        initial:
            Optional forced initial state; when omitted the model's
            :meth:`initial_state` is used.
        """
        if length < 0:
            raise ValueError(f"length must be >= 0, got {length}")
        rng = as_generator(seed)
        states = np.empty(length, dtype=np.int8)
        self.reset()
        if length == 0:
            return states
        current = initial if initial is not None else self.initial_state(rng)
        states[0] = int(current)
        states[1:] = self.sample_block(1, length - 1, rng, current=current)
        return states

    def describe(self) -> str:
        """One-line human-readable description (used in logs and reports)."""
        return type(self).__name__
