"""Off-line problem instances (Section IV).

The complexity study of Section IV restricts the general scheduling problem
to its simplest deterministic core: no communication (``Tprog = Tdata = 0``)
and identical workers (``w_q = w``).  An instance is therefore

* an availability trace (the vectors ``S_q``, known in advance),
* the number of tasks per iteration ``m``,
* the per-task computation time ``w``,
* the memory bound ``µ`` (1 for OFF-LINE-COUPLED(µ=1), ``None`` i.e. ∞ for
  OFF-LINE-COUPLED(µ=∞)).

The decision question of the µ=1 variant: are there ``m`` workers that are
simultaneously UP during at least ``w`` time-slots (not necessarily
contiguous)?  For µ=∞ one may also complete an iteration with fewer workers,
at the price of proportionally more UP slots: ``k`` workers need
``ceil(m / k) * w`` common UP slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.availability.trace import AvailabilityTrace
from repro.exceptions import InvalidApplicationError

__all__ = ["OfflineProblem"]


@dataclass(frozen=True)
class OfflineProblem:
    """A deterministic off-line instance (no communication, homogeneous workers)."""

    trace: AvailabilityTrace
    num_tasks: int
    task_slots: int
    capacity: Optional[int] = 1  # µ; None means unbounded (µ = ∞)

    def __post_init__(self) -> None:
        if self.num_tasks < 1:
            raise InvalidApplicationError(f"num_tasks must be >= 1, got {self.num_tasks}")
        if self.task_slots < 1:
            raise InvalidApplicationError(f"task_slots must be >= 1, got {self.task_slots}")
        if self.capacity is not None and self.capacity < 1:
            raise InvalidApplicationError(
                f"capacity must be >= 1 or None (unbounded), got {self.capacity}"
            )

    # ------------------------------------------------------------------
    @property
    def num_processors(self) -> int:
        return self.trace.num_processors

    @property
    def deadline(self) -> int:
        """``N`` — the number of known time-slots."""
        return self.trace.horizon

    @property
    def unbounded_capacity(self) -> bool:
        return self.capacity is None

    def up_matrix(self) -> np.ndarray:
        """Boolean matrix ``up[q, t]``."""
        return self.trace.up_matrix()

    # ------------------------------------------------------------------
    def required_common_slots(self, num_workers: int) -> int:
        """Common UP slots needed to run one iteration on *num_workers* workers.

        With ``k`` workers each holding ``ceil(m / k)`` tasks, the iteration
        needs ``ceil(m / k) * w`` slots of simultaneous computation.  Returns
        a huge sentinel when *num_workers* workers cannot hold ``m`` tasks
        under the capacity bound.
        """
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if self.capacity is not None and num_workers * self.capacity < self.num_tasks:
            return int(np.iinfo(np.int64).max)
        tasks_per_worker = -(-self.num_tasks // num_workers)  # ceil division
        if self.capacity is not None:
            tasks_per_worker = min(tasks_per_worker, self.capacity)
            # Even spreading under a capacity bound: the max per-worker count
            # is ceil(m / k) as long as k * µ >= m, which we already checked.
            tasks_per_worker = -(-self.num_tasks // num_workers)
        return tasks_per_worker * self.task_slots

    def minimum_workers(self) -> int:
        """Smallest number of workers that can hold all ``m`` tasks."""
        if self.capacity is None:
            return 1
        return -(-self.num_tasks // self.capacity)  # ceil(m / µ)

    def describe(self) -> str:
        mu = "inf" if self.capacity is None else str(self.capacity)
        return (
            f"OfflineProblem(p={self.num_processors}, N={self.deadline}, "
            f"m={self.num_tasks}, w={self.task_slots}, mu={mu})"
        )
