"""Exact solvers for the off-line decision problems (exponential time).

These solvers are only meant for the small instances used to validate the
Theorem 4.1 reductions and to provide a clairvoyant reference in the off-line
benchmark; the problems are NP-hard, so no polynomial algorithm is expected.

* :func:`solve_offline_mu1` — OFF-LINE-COUPLED(µ = 1): find ``m`` workers
  simultaneously UP during at least ``w`` (not necessarily contiguous)
  slots.
* :func:`solve_offline_mu_inf` — OFF-LINE-COUPLED(µ = ∞): additionally allow
  ``k < m`` workers, each holding ``ceil(m / k)`` tasks, at the price of
  ``ceil(m / k) · w`` common UP slots.

Both enumerate worker subsets (smallest cardinality first for µ=∞, so the
returned solution uses as few workers as possible) and count common UP slots
with vectorised NumPy reductions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

import numpy as np

from repro.offline.problem import OfflineProblem

__all__ = ["OfflineSolution", "solve_offline_mu1", "solve_offline_mu_inf"]


@dataclass(frozen=True)
class OfflineSolution:
    """A feasible single-iteration schedule for an off-line instance."""

    #: Enrolled workers.
    workers: FrozenSet[int]
    #: Slots (ascending) during which all enrolled workers are UP and compute.
    slots: Tuple[int, ...]
    #: Tasks per enrolled worker (``ceil(m / k)`` in the homogeneous case).
    tasks_per_worker: int

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    @property
    def num_slots(self) -> int:
        return len(self.slots)

    def makespan(self) -> int:
        """Completion slot of the iteration (last compute slot, 0-based) + 1."""
        return (max(self.slots) + 1) if self.slots else 0


def _common_up_slots(up_matrix: np.ndarray, workers: Tuple[int, ...]) -> np.ndarray:
    """Slots at which all *workers* are UP."""
    mask = np.logical_and.reduce(up_matrix[list(workers), :], axis=0)
    return np.flatnonzero(mask)


def solve_offline_mu1(problem: OfflineProblem) -> Optional[OfflineSolution]:
    """Exact solution of OFF-LINE-COUPLED(µ = 1), or ``None`` if infeasible.

    Requires ``problem.capacity == 1``.  Among feasible worker sets, the one
    whose ``w``-th common UP slot comes earliest is returned (earliest
    completion of the iteration).
    """
    if problem.capacity != 1:
        raise ValueError("solve_offline_mu1 requires an instance with capacity µ = 1")
    up = problem.up_matrix()
    m, w = problem.num_tasks, problem.task_slots
    if m > problem.num_processors:
        return None
    best: Optional[OfflineSolution] = None
    best_completion = None
    for workers in itertools.combinations(range(problem.num_processors), m):
        slots = _common_up_slots(up, workers)
        if slots.size >= w:
            completion = int(slots[w - 1])
            if best_completion is None or completion < best_completion:
                best_completion = completion
                best = OfflineSolution(
                    workers=frozenset(workers),
                    slots=tuple(int(s) for s in slots[:w]),
                    tasks_per_worker=1,
                )
    return best


def solve_offline_mu_inf(problem: OfflineProblem) -> Optional[OfflineSolution]:
    """Exact solution of OFF-LINE-COUPLED(µ = ∞), or ``None`` if infeasible.

    Worker-set cardinalities ``k = m, m-1, ..., 1`` are all considered; with
    ``k`` workers an iteration needs ``ceil(m / k) · w`` common UP slots.  The
    returned solution is the one with the earliest completion slot (ties
    broken towards more workers, i.e. fewer tasks per worker).
    """
    if problem.capacity is not None:
        raise ValueError("solve_offline_mu_inf requires an instance with unbounded capacity")
    up = problem.up_matrix()
    m, w = problem.num_tasks, problem.task_slots
    best: Optional[OfflineSolution] = None
    best_completion = None
    max_workers = min(m, problem.num_processors)
    for k in range(max_workers, 0, -1):
        tasks_per_worker = -(-m // k)  # ceil(m / k)
        needed = tasks_per_worker * w
        if needed > problem.deadline:
            continue
        for workers in itertools.combinations(range(problem.num_processors), k):
            slots = _common_up_slots(up, workers)
            if slots.size >= needed:
                completion = int(slots[needed - 1])
                if best_completion is None or completion < best_completion:
                    best_completion = completion
                    best = OfflineSolution(
                        workers=frozenset(workers),
                        slots=tuple(int(s) for s in slots[:needed]),
                        tasks_per_worker=tasks_per_worker,
                    )
    return best
