"""ENCD (Exact Node Cardinality Decision) and the reductions of Theorem 4.1.

ENCD: given a bipartite graph ``G = (V ∪ W, E)`` and integers ``a``, ``b``,
does ``G`` contain a bi-clique with exactly ``a`` nodes in ``V`` and exactly
``b`` nodes in ``W``?  (Dawande et al., J. Algorithms 2001.)

Theorem 4.1 reduces ENCD to both off-line variants:

* **µ = 1**: ``p = |V|`` processors, ``N = |W|`` slots; processor *i* is UP at
  slot *j* iff ``(v_i, w_j) ∈ E``; ask for ``m = a`` workers simultaneously UP
  during ``w = b`` slots.
* **µ = ∞**: same UP matrix over the first ``|W|`` slots, followed by
  ``|W| + 1`` extra slots where *every* processor is UP; ask for ``m = a``
  and ``w = b + |W| + 1``.  The padding forces any solution to use exactly
  ``a`` distinct processors (with fewer, two tasks would pile up on one
  worker and ``2w > N`` slots would be needed).

This module provides the instance class, both reductions, the reverse mapping
(extracting a bi-clique from an off-line solution) and a brute-force ENCD
solver used to cross-check the reductions in the test-suite.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Sequence, Set, Tuple

try:  # optional dependency: only the graph import/export helpers need it
    import networkx as nx
except ImportError:  # pragma: no cover - exercised via _require_networkx tests
    nx = None
import numpy as np

from repro.availability.trace import AvailabilityTrace
from repro.exceptions import InvalidModelError
from repro.offline.problem import OfflineProblem
from repro.types import DOWN, UP

__all__ = [
    "ENCDInstance",
    "encd_to_offline_mu1",
    "encd_to_offline_mu_inf",
    "biclique_from_offline_solution",
    "solve_encd_bruteforce",
]


def _require_networkx():
    """Return the networkx module or raise a clear install hint.

    networkx is an optional dependency (the ``graphs`` extra): every core
    ENCD computation works on plain adjacency matrices, only the
    import/export helpers :meth:`ENCDInstance.from_graph` and
    :meth:`ENCDInstance.to_graph` need the graph library itself.
    """
    if nx is None:
        raise ImportError(
            "networkx is required for ENCDInstance.from_graph/to_graph; "
            "install it with `pip install networkx` "
            "(or `pip install repro-volatile-master-worker[graphs]`)"
        )
    return nx


@dataclass(frozen=True)
class ENCDInstance:
    """An ENCD instance: bipartite adjacency + the two exact cardinalities."""

    #: adjacency[i][j] is True iff (v_i, w_j) is an edge.
    adjacency: Tuple[Tuple[bool, ...], ...]
    a: int
    b: int

    def __post_init__(self) -> None:
        if not self.adjacency or not self.adjacency[0]:
            raise InvalidModelError("the bipartite graph must have at least one node on each side")
        widths = {len(row) for row in self.adjacency}
        if len(widths) != 1:
            raise InvalidModelError("adjacency rows must all have the same length")
        if not (1 <= self.a <= len(self.adjacency)):
            raise InvalidModelError(f"a must lie in [1, |V|] = [1, {len(self.adjacency)}], got {self.a}")
        if not (1 <= self.b <= len(self.adjacency[0])):
            raise InvalidModelError(
                f"b must lie in [1, |W|] = [1, {len(self.adjacency[0])}], got {self.b}"
            )

    # ------------------------------------------------------------------
    @property
    def num_left(self) -> int:
        """``|V|``."""
        return len(self.adjacency)

    @property
    def num_right(self) -> int:
        """``|W|``."""
        return len(self.adjacency[0])

    def matrix(self) -> np.ndarray:
        """Adjacency as a boolean NumPy matrix of shape ``(|V|, |W|)``."""
        return np.array(self.adjacency, dtype=bool)

    # ------------------------------------------------------------------
    @classmethod
    def from_matrix(cls, matrix: np.ndarray, a: int, b: int) -> "ENCDInstance":
        matrix = np.asarray(matrix, dtype=bool)
        if matrix.ndim != 2:
            raise InvalidModelError("adjacency matrix must be 2-D")
        adjacency = tuple(tuple(bool(x) for x in row) for row in matrix)
        return cls(adjacency, a, b)

    @classmethod
    def from_graph(
        cls,
        graph: nx.Graph,
        left_nodes: Sequence,
        right_nodes: Sequence,
        a: int,
        b: int,
    ) -> "ENCDInstance":
        """Build an instance from a networkx bipartite graph."""
        _require_networkx()
        left_index = {node: i for i, node in enumerate(left_nodes)}
        right_index = {node: j for j, node in enumerate(right_nodes)}
        matrix = np.zeros((len(left_nodes), len(right_nodes)), dtype=bool)
        for u, v in graph.edges():
            if u in left_index and v in right_index:
                matrix[left_index[u], right_index[v]] = True
            elif v in left_index and u in right_index:
                matrix[left_index[v], right_index[u]] = True
        return cls.from_matrix(matrix, a, b)

    @classmethod
    def random(
        cls,
        num_left: int,
        num_right: int,
        edge_probability: float,
        a: int,
        b: int,
        seed=None,
    ) -> "ENCDInstance":
        """A random Erdős–Rényi bipartite instance (for tests and benches)."""
        rng = np.random.default_rng(seed)
        matrix = rng.random((num_left, num_right)) < edge_probability
        return cls.from_matrix(matrix, a, b)

    def to_graph(self) -> nx.Graph:
        """Return the instance as a networkx bipartite graph.

        Left nodes are ``("v", i)`` and right nodes ``("w", j)``.
        """
        graph = _require_networkx().Graph()
        graph.add_nodes_from((("v", i) for i in range(self.num_left)), bipartite=0)
        graph.add_nodes_from((("w", j) for j in range(self.num_right)), bipartite=1)
        matrix = self.matrix()
        for i in range(self.num_left):
            for j in range(self.num_right):
                if matrix[i, j]:
                    graph.add_edge(("v", i), ("w", j))
        return graph


# ----------------------------------------------------------------------
# Reductions of Theorem 4.1
# ----------------------------------------------------------------------
def encd_to_offline_mu1(instance: ENCDInstance) -> OfflineProblem:
    """Reduction (i): ENCD -> OFF-LINE-COUPLED(µ = 1)."""
    matrix = instance.matrix()
    states = np.where(matrix, int(UP), int(DOWN)).astype(np.int8)
    trace = AvailabilityTrace(states)
    return OfflineProblem(
        trace=trace, num_tasks=instance.a, task_slots=instance.b, capacity=1
    )


def encd_to_offline_mu_inf(instance: ENCDInstance) -> OfflineProblem:
    """Reduction (ii): ENCD -> OFF-LINE-COUPLED(µ = ∞).

    The availability matrix is padded with ``|W| + 1`` all-UP slots and the
    workload per task becomes ``b + |W| + 1``.
    """
    matrix = instance.matrix()
    padding = np.ones((instance.num_left, instance.num_right + 1), dtype=bool)
    padded = np.hstack([matrix, padding])
    states = np.where(padded, int(UP), int(DOWN)).astype(np.int8)
    trace = AvailabilityTrace(states)
    return OfflineProblem(
        trace=trace,
        num_tasks=instance.a,
        task_slots=instance.b + instance.num_right + 1,
        capacity=None,
    )


def biclique_from_offline_solution(
    instance: ENCDInstance,
    workers: Iterable[int],
    slots: Iterable[int],
) -> Tuple[Set[int], Set[int]]:
    """Map an off-line solution back to an ENCD bi-clique (the proof's reverse direction).

    *workers* index ``V``; *slots* index the trace's time-slots.  Slots beyond
    ``|W|`` (the all-UP padding of the µ=∞ reduction) are dropped; the
    remaining slots index ``W``.  The returned pair is a bi-clique of the
    original graph; a ``ValueError`` is raised if it is not (i.e. the
    "solution" was not actually feasible).
    """
    matrix = instance.matrix()
    left = {int(w) for w in workers}
    right = {int(t) for t in slots if int(t) < instance.num_right}
    for i in left:
        for j in right:
            if not matrix[i, j]:
                raise ValueError(
                    f"({i}, {j}) is not an edge: the given worker/slot sets are not a bi-clique"
                )
    return left, right


# ----------------------------------------------------------------------
# Exact ENCD solver (used to validate the reductions)
# ----------------------------------------------------------------------
def solve_encd_bruteforce(
    instance: ENCDInstance,
) -> Optional[Tuple[FrozenSet[int], FrozenSet[int]]]:
    """Find a bi-clique with exactly ``a`` left and ``b`` right nodes, or ``None``.

    Enumerates all ``a``-subsets of the smaller-degree side and checks whether
    the common neighbourhood is large enough (any bi-clique can be trimmed to
    the exact cardinalities, so "at least b" suffices).  Exponential — only
    for the small instances used in tests and in the off-line benchmark.
    """
    matrix = instance.matrix()
    for left_subset in itertools.combinations(range(instance.num_left), instance.a):
        common = np.logical_and.reduce(matrix[list(left_subset), :], axis=0)
        columns = np.flatnonzero(common)
        if columns.size >= instance.b:
            return frozenset(left_subset), frozenset(int(c) for c in columns[: instance.b])
    return None
