"""Off-line scheduling problem (Section IV): instances, reductions and solvers.

The off-line problem assumes full knowledge of future processor states.  The
paper proves that even its simplest deterministic variants are NP-hard
(Theorem 4.1) through a reduction from the Exact Node Cardinality Decision
problem (ENCD) on bipartite graphs.  This subpackage provides:

* :class:`OfflineProblem` — the no-communication, homogeneous off-line
  instances OFF-LINE-COUPLED(µ=1) and OFF-LINE-COUPLED(µ=∞);
* :mod:`~repro.offline.encd` — ENCD instances and the two reductions of the
  theorem (plus the reverse mapping used to cross-check them);
* :mod:`~repro.offline.exact` — exact (exponential-time) solvers for small
  instances of both problems and of ENCD;
* :mod:`~repro.offline.bounds` — cheap upper bounds and a greedy oracle
  schedule usable as a clairvoyant baseline for the on-line heuristics.
"""

from repro.offline.bounds import greedy_oracle_iterations, upper_bound_iterations
from repro.offline.encd import (
    ENCDInstance,
    encd_to_offline_mu1,
    encd_to_offline_mu_inf,
    solve_encd_bruteforce,
)
from repro.offline.exact import (
    OfflineSolution,
    solve_offline_mu1,
    solve_offline_mu_inf,
)
from repro.offline.problem import OfflineProblem

__all__ = [
    "OfflineProblem",
    "OfflineSolution",
    "ENCDInstance",
    "encd_to_offline_mu1",
    "encd_to_offline_mu_inf",
    "solve_encd_bruteforce",
    "solve_offline_mu1",
    "solve_offline_mu_inf",
    "greedy_oracle_iterations",
    "upper_bound_iterations",
]
