"""Bounds and a clairvoyant greedy oracle for multi-iteration off-line instances.

Finding the optimal off-line schedule is NP-hard even for one iteration
(Theorem 4.1), so for multi-iteration instances we bracket the optimum:

* :func:`upper_bound_iterations` — a cheap combinatorial upper bound: every
  compute slot of every iteration needs at least ``ceil(m / µ_eff)`` workers
  (in the homogeneous model, ``m`` workers for µ=1) simultaneously UP, and a
  slot can serve only one iteration, so the number of iterations is at most
  ``floor(#eligible slots / w_per_iteration)``.
* :func:`greedy_oracle_iterations` — a feasible clairvoyant schedule (hence a
  lower bound on the optimum): scan time, enrol the first suitable worker set
  observed, and ride it until the iteration completes; repeat.

Together they bracket what any on-line heuristic could possibly achieve on a
given trace, which makes them a useful sanity baseline in the examples.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.offline.problem import OfflineProblem

__all__ = ["upper_bound_iterations", "greedy_oracle_iterations"]


def upper_bound_iterations(problem: OfflineProblem) -> int:
    """Upper bound on the number of iterations completable within the trace."""
    up = problem.up_matrix()
    if problem.unbounded_capacity:
        # With unbounded capacity a single worker may run the whole iteration,
        # needing m * w slots; using k workers needs ceil(m/k) * w slots each
        # of which must have >= k workers UP.  The weakest per-slot requirement
        # is a single UP worker, but then each iteration consumes m * w slots.
        eligible = int(np.count_nonzero(up.sum(axis=0) >= 1))
        cheapest_iteration = problem.task_slots  # k = m workers, one task each
        richest_count = int(np.count_nonzero(up.sum(axis=0) >= min(problem.num_tasks,
                                                                   problem.num_processors)))
        # Two simultaneous necessary conditions; take the tighter bound.
        bound_single = eligible // (problem.num_tasks * problem.task_slots) if problem.task_slots else 0
        bound_full = richest_count // cheapest_iteration if cheapest_iteration else 0
        return max(bound_single, bound_full)
    # Bounded capacity: every compute slot needs at least ceil(m / µ) workers UP.
    needed_workers = problem.minimum_workers()
    eligible = int(np.count_nonzero(up.sum(axis=0) >= needed_workers))
    per_iteration = problem.required_common_slots(needed_workers)
    if per_iteration <= 0:
        return 0
    return eligible // per_iteration


def greedy_oracle_iterations(
    problem: OfflineProblem,
    *,
    workers_per_iteration: Optional[int] = None,
) -> Tuple[int, List[Tuple[frozenset, int]]]:
    """A feasible clairvoyant schedule built greedily; returns (#iterations, schedule).

    Parameters
    ----------
    problem:
        The off-line instance.
    workers_per_iteration:
        How many workers to enrol per iteration; defaults to the smallest
        feasible count (``ceil(m / µ)`` for bounded capacity, ``m`` for µ=1,
        and ``min(m, p)`` for unbounded capacity so each worker gets one task).

    Returns
    -------
    (count, schedule) where *schedule* is a list of (worker set, completion
    slot) pairs, one per completed iteration.
    """
    up = problem.up_matrix()
    p, horizon = up.shape
    if workers_per_iteration is None:
        if problem.capacity == 1:
            workers_per_iteration = problem.num_tasks
        elif problem.unbounded_capacity:
            workers_per_iteration = min(problem.num_tasks, p)
        else:
            workers_per_iteration = problem.minimum_workers()
    k = int(workers_per_iteration)
    if k < problem.minimum_workers() or k > p:
        return 0, []
    needed = problem.required_common_slots(k)

    schedule: List[Tuple[frozenset, int]] = []
    slot = 0
    while slot < horizon:
        # Find the first slot with at least k workers UP and enrol the k
        # candidates whose *current* UP run extends the furthest: those
        # workers are guaranteed to stay simultaneously UP for the minimum of
        # their run lengths, which is the clairvoyant information an on-line
        # scheduler lacks.
        candidates = np.flatnonzero(up[:, slot])
        if candidates.size < k:
            slot += 1
            continue
        run_lengths = np.empty(candidates.size, dtype=np.int64)
        for index, worker in enumerate(candidates):
            future = up[worker, slot:]
            breaks = np.flatnonzero(~future)
            run_lengths[index] = breaks[0] if breaks.size else future.size
        chosen = candidates[np.argsort(-run_lengths)][:k]
        chosen_set = frozenset(int(c) for c in chosen)
        # Ride this set: count slots (from `slot` onwards) where all are UP.
        common = np.logical_and.reduce(up[list(chosen), slot:], axis=0)
        cumulative = np.cumsum(common)
        positions = np.flatnonzero(cumulative >= needed)
        if positions.size == 0:
            # This set can never finish within the trace; advance one slot and retry.
            slot += 1
            continue
        completion = slot + int(positions[0])
        schedule.append((chosen_set, completion))
        slot = completion + 1
    return len(schedule), schedule
