"""Platform model: processors, master bandwidth, and platform builders.

Implements the platform model of Section III-B:

* ``p`` processors, each with a computation speed ``w_q`` (slots per task),
  a memory bound ``µ_q`` (maximum concurrent tasks), and an availability
  process;
* a master that is always UP, with aggregate bandwidth ``BW`` and per-worker
  bandwidth ``bw``; the master can drive at most ``ncom = floor(BW / bw)``
  simultaneous transfers (bounded multi-port model);
* program and data transfer durations ``Tprog = Vprog / bw`` and
  ``Tdata = Vdata / bw`` expressed in whole time-slots.
"""

from repro.platform.builders import (
    PlatformSpec,
    paper_platform,
    uniform_platform,
)
from repro.platform.platform import Platform
from repro.platform.processor import Processor

__all__ = [
    "Processor",
    "Platform",
    "PlatformSpec",
    "paper_platform",
    "uniform_platform",
]
