"""The :class:`Platform`: a set of processors plus the master's network model.

The master is always UP (the paper assumes a primary-backup pair of dedicated
servers).  Its communication capability follows the bounded multi-port model:
with aggregate bandwidth ``BW`` and per-worker bandwidth ``bw``, at most
``ncom = floor(BW / bw)`` transfers (program or task data, each consuming one
full ``bw`` link) can be in flight during any time-slot.

Transfer durations are expressed directly in time-slots:

* ``Tprog = Vprog / bw`` slots to send the application program,
* ``Tdata = Vdata / bw`` slots to send the input data of one task.

The :class:`Platform` may be constructed either from the physical quantities
(``bandwidth_master``, ``bandwidth_worker``, ``Vprog``, ``Vdata``) or
directly from the derived quantities (``ncom``, ``tprog``, ``tdata``), which
is how the paper's experiments are parameterised.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from repro.availability.markov import MarkovAvailabilityModel
from repro.exceptions import InvalidPlatformError
from repro.platform.processor import Processor

__all__ = ["Platform"]


class Platform:
    """A desktop-grid platform: processors + master communication constraints.

    Parameters
    ----------
    processors:
        The processor descriptions (order defines worker ids ``0..p-1``).
    ncom:
        Maximum number of simultaneous master transfers
        (``ncom = floor(BW / bw)``).  Must be >= 1.
    tprog:
        ``Tprog`` — whole time-slots needed to transfer the application
        program to one worker.  May be 0 (program pre-deployed).
    tdata:
        ``Tdata`` — whole time-slots needed to transfer one task's input data
        to one worker.  May be 0 (compute-only application).
    hazard:
        Optional platform-level
        :class:`~repro.hazards.GroupHazardProcess` (correlated outages,
        pool churn).  When present, the simulation layer overlays it on
        every availability window it materialises from the per-processor
        models; replay traces already carry the overlay baked in.
    """

    def __init__(
        self,
        processors: Sequence[Processor],
        *,
        ncom: int,
        tprog: int,
        tdata: int,
        hazard=None,
    ) -> None:
        processors = list(processors)
        if not processors:
            raise InvalidPlatformError("a platform needs at least one processor")
        if int(ncom) != ncom or ncom < 1:
            raise InvalidPlatformError(f"ncom must be an integer >= 1, got {ncom!r}")
        if int(tprog) != tprog or tprog < 0:
            raise InvalidPlatformError(f"tprog must be an integer >= 0, got {tprog!r}")
        if int(tdata) != tdata or tdata < 0:
            raise InvalidPlatformError(f"tdata must be an integer >= 0, got {tdata!r}")
        self._processors: List[Processor] = [
            proc if proc.name else proc.with_name(f"P{index + 1}")
            for index, proc in enumerate(processors)
        ]
        self._ncom = int(ncom)
        self._tprog = int(tprog)
        self._tdata = int(tdata)
        if hazard is not None and not (
            hasattr(hazard, "reset") and hasattr(hazard, "overlay")
        ):
            raise InvalidPlatformError(
                f"hazard must provide reset()/overlay(), got {type(hazard).__name__}"
            )
        self._hazard = hazard

    # ------------------------------------------------------------------
    # Alternative constructor from physical quantities
    # ------------------------------------------------------------------
    @classmethod
    def from_bandwidth(
        cls,
        processors: Sequence[Processor],
        *,
        master_bandwidth: float,
        worker_bandwidth: float,
        program_size: float,
        data_size: float,
        slot_duration: float = 1.0,
    ) -> "Platform":
        """Build a platform from bandwidths (bytes/s) and message sizes (bytes).

        ``ncom = floor(BW / bw)``; transfer times are converted to whole
        time-slots by rounding up (a transfer occupies whole slots in the
        discretised model), exactly as the paper assumes when stating that
        ``Tprog`` and ``Tdata`` are integral numbers of slots.
        """
        if master_bandwidth <= 0 or worker_bandwidth <= 0:
            raise InvalidPlatformError("bandwidths must be positive")
        if worker_bandwidth > master_bandwidth:
            raise InvalidPlatformError(
                "per-worker bandwidth cannot exceed the master's aggregate bandwidth"
            )
        if program_size < 0 or data_size < 0:
            raise InvalidPlatformError("message sizes must be >= 0")
        if slot_duration <= 0:
            raise InvalidPlatformError("slot_duration must be positive")
        ncom = int(master_bandwidth // worker_bandwidth)
        tprog = int(math.ceil(program_size / worker_bandwidth / slot_duration)) if program_size else 0
        tdata = int(math.ceil(data_size / worker_bandwidth / slot_duration)) if data_size else 0
        return cls(processors, ncom=ncom, tprog=tprog, tdata=tdata)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def processors(self) -> List[Processor]:
        return list(self._processors)

    @property
    def num_processors(self) -> int:
        return len(self._processors)

    @property
    def ncom(self) -> int:
        """Maximum number of simultaneous master transfers."""
        return self._ncom

    @property
    def tprog(self) -> int:
        """Slots needed to send the application program to one worker."""
        return self._tprog

    @property
    def tdata(self) -> int:
        """Slots needed to send one task's input data to one worker."""
        return self._tdata

    @property
    def hazard(self):
        """Platform-level hazard overlay (``None`` on hazard-free platforms)."""
        return self._hazard

    def processor(self, worker: int) -> Processor:
        return self._processors[worker]

    def __len__(self) -> int:
        return len(self._processors)

    def __iter__(self):
        return iter(self._processors)

    def speeds(self) -> np.ndarray:
        """Vector of per-processor speeds ``w_q``."""
        return np.array([proc.speed for proc in self._processors], dtype=np.int64)

    def capacities(self) -> np.ndarray:
        """Vector of per-processor capacities ``µ_q``."""
        return np.array([proc.capacity for proc in self._processors], dtype=np.int64)

    def total_capacity(self) -> int:
        """``Σ µ_q`` — must be >= m for the application to be executable."""
        return int(self.capacities().sum())

    def availability_models(self) -> List:
        return [proc.availability for proc in self._processors]

    def markov_matrices(self) -> List[np.ndarray]:
        """Per-processor 3x3 Markov (or fitted-Markov) transition matrices."""
        return [proc.availability.markov_approximation() for proc in self._processors]

    def markov_models(self) -> List[MarkovAvailabilityModel]:
        """Per-processor Markov views used by the analytical machinery.

        For processors whose availability already is a
        :class:`MarkovAvailabilityModel` the model itself is returned;
        otherwise a Markov model is built from
        :meth:`AvailabilityModel.markov_approximation` (the "flawed model"
        path of the robustness extension).
        """
        models: List[MarkovAvailabilityModel] = []
        for proc in self._processors:
            if isinstance(proc.availability, MarkovAvailabilityModel):
                models.append(proc.availability)
            else:
                models.append(MarkovAvailabilityModel(proc.availability.markov_approximation()))
        return models

    # ------------------------------------------------------------------
    # Feasibility helpers
    # ------------------------------------------------------------------
    def can_execute(self, num_tasks: int) -> bool:
        """Whether ``Σ µ_q >= m`` (necessary feasibility condition, Sec. III-C)."""
        return self.total_capacity() >= num_tasks

    def validate_for_tasks(self, num_tasks: int) -> None:
        """Raise :class:`InvalidPlatformError` if the platform cannot host *num_tasks*."""
        if not self.can_execute(num_tasks):
            raise InvalidPlatformError(
                f"platform total capacity {self.total_capacity()} is smaller than "
                f"the number of tasks per iteration ({num_tasks})"
            )

    def communication_slots(self, tasks: int, *, needs_program: bool) -> int:
        """Slots of master communication one worker needs for *tasks* tasks.

        ``n_q = [Tprog if the program must be (re)sent] + tasks * Tdata``.
        """
        if tasks < 0:
            raise ValueError(f"tasks must be >= 0, got {tasks}")
        return (self._tprog if needs_program else 0) + tasks * self._tdata

    # ------------------------------------------------------------------
    # Serialisation / display
    # ------------------------------------------------------------------
    def describe(self) -> str:
        base = (
            f"Platform(p={self.num_processors}, ncom={self._ncom}, "
            f"Tprog={self._tprog}, Tdata={self._tdata}"
        )
        if self._hazard is not None:
            hazard = getattr(self._hazard, "describe", lambda: type(self._hazard).__name__)()
            return f"{base}, hazard={hazard})"
        return base + ")"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.describe()}>"

    def to_dict(self) -> dict:
        """JSON-serialisable description (availability must support ``to_dict``)."""
        if self._hazard is not None:
            raise InvalidPlatformError(
                "platform-level hazard processes are not serialisable; "
                "rebuild the platform from its AvailabilitySpec instead"
            )
        processors = []
        for proc in self._processors:
            availability = proc.availability
            if not hasattr(availability, "to_dict"):
                raise InvalidPlatformError(
                    f"availability model {type(availability).__name__} does not support to_dict()"
                )
            processors.append(
                {
                    "name": proc.name,
                    "speed": proc.speed,
                    "capacity": proc.capacity,
                    "availability": availability.to_dict(),
                }
            )
        return {
            "ncom": self._ncom,
            "tprog": self._tprog,
            "tdata": self._tdata,
            "processors": processors,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Platform":
        """Inverse of :meth:`to_dict` (currently supports Markov availability)."""
        from repro.availability.markov import MarkovAvailabilityModel
        from repro.availability.trace import TraceAvailabilityModel

        processors = []
        for entry in payload["processors"]:
            availability_payload = entry["availability"]
            kind = availability_payload.get("type")
            if kind == "markov":
                availability = MarkovAvailabilityModel.from_dict(availability_payload)
            elif kind == "trace":
                rows = availability_payload["rows"]
                if len(rows) != 1:
                    raise InvalidPlatformError(
                        "per-processor trace payload must contain exactly one row"
                    )
                availability = TraceAvailabilityModel(rows[0])
            else:
                raise InvalidPlatformError(f"unsupported availability payload type {kind!r}")
            processors.append(
                Processor(
                    speed=entry["speed"],
                    capacity=entry["capacity"],
                    availability=availability,
                    name=entry.get("name"),
                )
            )
        return cls(
            processors,
            ncom=payload["ncom"],
            tprog=payload["tprog"],
            tdata=payload["tdata"],
        )
