"""Platform factories, including the paper's experimental methodology.

Section VII-A instantiates platforms as follows:

* ``p = 20`` processors;
* per-processor Markov availability with diagonal entries uniform in
  ``[0.90, 0.99]`` and off-diagonal mass split evenly;
* per-processor speed ``w_q`` uniform (integer) in ``[wmin, 10 * wmin]``;
* ``Tdata = wmin`` (the fastest possible processor has a
  computation-to-communication ratio of 1);
* ``Tprog = 5 * wmin`` (the program is five times larger than a task input);
* ``ncom ∈ {5, 10, 20}``.

The paper does not state a memory bound for its experiments; since each
iteration has at most ``m = 10`` tasks and any worker may in principle hold
several, we default ``µ_q = m`` (equivalent to the unconstrained ``µ = ∞``
variant).  The bound is exposed so experiments may restrict it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.availability.generators import random_markov_models
from repro.availability.markov import MarkovAvailabilityModel
from repro.availability.model import AvailabilityModel
from repro.exceptions import InvalidPlatformError
from repro.platform.platform import Platform
from repro.platform.processor import Processor
from repro.utils.rng import SeedLike, as_generator

__all__ = ["PlatformSpec", "paper_platform", "availability_platform", "uniform_platform"]


@dataclass(frozen=True)
class PlatformSpec:
    """Parameters of a paper-style random platform.

    Attributes mirror the experimental knobs of Section VII-A; see the module
    docstring for their meaning.  ``capacity`` is the per-processor memory
    bound ``µ_q`` (``None`` means "use the number of tasks m", i.e. the
    unconstrained case).
    """

    num_processors: int = 20
    ncom: int = 10
    wmin: int = 1
    speed_factor: int = 10
    tdata_factor: int = 1
    tprog_factor: int = 5
    stay_low: float = 0.90
    stay_high: float = 0.99
    capacity: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_processors < 1:
            raise InvalidPlatformError("num_processors must be >= 1")
        if self.ncom < 1:
            raise InvalidPlatformError("ncom must be >= 1")
        if self.wmin < 1:
            raise InvalidPlatformError("wmin must be >= 1")
        if self.speed_factor < 1:
            raise InvalidPlatformError("speed_factor must be >= 1")
        if self.tdata_factor < 0 or self.tprog_factor < 0:
            raise InvalidPlatformError("tdata_factor/tprog_factor must be >= 0")

    @property
    def tdata(self) -> int:
        return self.tdata_factor * self.wmin

    @property
    def tprog(self) -> int:
        return self.tprog_factor * self.wmin


def paper_platform(
    spec: PlatformSpec = PlatformSpec(),
    *,
    num_tasks: int,
    seed: SeedLike = None,
) -> Platform:
    """Generate a random platform following the paper's methodology.

    Parameters
    ----------
    spec:
        The platform parameters (defaults are the paper's).
    num_tasks:
        ``m`` — used only to set the default memory bound ``µ_q = m`` when
        ``spec.capacity`` is ``None``.
    seed:
        Seed / generator controlling both the availability models and the
        speeds.
    """
    if num_tasks < 1:
        raise InvalidPlatformError("num_tasks must be >= 1")
    rng = as_generator(seed)
    models = random_markov_models(
        spec.num_processors, rng, stay_low=spec.stay_low, stay_high=spec.stay_high
    )
    # Speeds w_q uniform integer in [wmin, 10 * wmin] (inclusive bounds).
    speeds = rng.integers(spec.wmin, spec.speed_factor * spec.wmin + 1, size=spec.num_processors)
    capacity = spec.capacity if spec.capacity is not None else num_tasks
    processors = [
        Processor(speed=int(speed), capacity=int(capacity), availability=model)
        for speed, model in zip(speeds, models)
    ]
    return Platform(processors, ncom=spec.ncom, tprog=spec.tprog, tdata=spec.tdata)


def availability_platform(
    spec: PlatformSpec,
    *,
    num_tasks: int,
    seed: SeedLike = None,
    model_factory,
) -> Platform:
    """A paper-style platform with arbitrary availability models.

    Follows exactly the structure of :func:`paper_platform` — availability
    models are drawn first, speeds second, from the same seeded generator —
    but delegates model construction to ``model_factory(rng, count)``, which
    must return one :class:`AvailabilityModel` per processor.  This is what
    lets declarative campaign specs swap the Markov substrate for
    semi-Markov, diurnal or trace-replay models while keeping the speed /
    capacity / communication methodology of Section VII-A.

    A factory may additionally carry a ``hazard_factory`` attribute (a
    callable ``num_workers -> GroupHazardProcess``); the built process is
    attached to the platform as its :attr:`~repro.platform.Platform.hazard`
    overlay.  Hazard construction happens *after* the model and speed draws
    and consumes no RNG, so hazard-free substrates keep bit-identical
    platforms.
    """
    if num_tasks < 1:
        raise InvalidPlatformError("num_tasks must be >= 1")
    rng = as_generator(seed)
    models = model_factory(rng, spec.num_processors)
    if len(models) != spec.num_processors:
        raise InvalidPlatformError(
            f"model_factory returned {len(models)} models for {spec.num_processors} processors"
        )
    speeds = rng.integers(spec.wmin, spec.speed_factor * spec.wmin + 1, size=spec.num_processors)
    capacity = spec.capacity if spec.capacity is not None else num_tasks
    processors = [
        Processor(speed=int(speed), capacity=int(capacity), availability=model)
        for speed, model in zip(speeds, models)
    ]
    hazard_factory = getattr(model_factory, "hazard_factory", None)
    hazard = hazard_factory(spec.num_processors) if hazard_factory is not None else None
    return Platform(
        processors, ncom=spec.ncom, tprog=spec.tprog, tdata=spec.tdata, hazard=hazard
    )


def uniform_platform(
    num_processors: int,
    *,
    speed: int = 1,
    capacity: int = 1,
    ncom: Optional[int] = None,
    tprog: int = 0,
    tdata: int = 0,
    availability: Optional[AvailabilityModel] = None,
    availabilities: Optional[Sequence[AvailabilityModel]] = None,
) -> Platform:
    """A homogeneous platform, handy for tests and worked examples.

    Either a single shared ``availability`` model, a per-processor
    ``availabilities`` sequence, or neither (perfectly reliable processors)
    may be given.  ``ncom`` defaults to the number of processors (i.e. no
    effective communication constraint).
    """
    if num_processors < 1:
        raise InvalidPlatformError("num_processors must be >= 1")
    if availability is not None and availabilities is not None:
        raise InvalidPlatformError("pass either availability or availabilities, not both")
    if availabilities is not None:
        if len(availabilities) != num_processors:
            raise InvalidPlatformError(
                f"expected {num_processors} availability models, got {len(availabilities)}"
            )
        models: List[AvailabilityModel] = list(availabilities)
    elif availability is not None:
        models = [availability] * num_processors
    else:
        models = [MarkovAvailabilityModel.always_up() for _ in range(num_processors)]
    processors = [
        Processor(speed=speed, capacity=capacity, availability=model) for model in models
    ]
    return Platform(
        processors,
        ncom=ncom if ncom is not None else num_processors,
        tprog=tprog,
        tdata=tdata,
    )
