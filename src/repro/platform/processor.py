"""The :class:`Processor` description used throughout the library.

A processor (equivalently, a *worker*: each processor runs exactly one worker
process) is described by

* ``speed`` — the number of time-slots ``w_q`` the processor needs, while UP,
  to execute one task of the iteration;
* ``capacity`` — the memory bound ``µ_q``: the maximum number of tasks the
  worker may execute concurrently;
* ``availability`` — the availability process governing its UP / RECLAIMED /
  DOWN behaviour.

Processors are identified by their index in the owning
:class:`~repro.platform.platform.Platform`; the optional ``name`` is only
used for display.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.availability.model import AvailabilityModel
from repro.exceptions import InvalidPlatformError

__all__ = ["Processor"]


@dataclass(frozen=True)
class Processor:
    """Static description of one processor / worker.

    Attributes
    ----------
    speed:
        ``w_q`` — time-slots of UP computation needed per task.  Smaller is
        faster.  Strictly positive integer.
    capacity:
        ``µ_q`` — maximum number of tasks this worker may hold concurrently.
        Strictly positive integer (the paper also considers ``µ = ∞``; use a
        value >= m for that).
    availability:
        The availability process of this processor.
    name:
        Optional display name; defaults to ``"P{index}"`` when the processor
        is added to a platform.
    """

    speed: int
    capacity: int
    availability: AvailabilityModel
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if isinstance(self.speed, bool) or int(self.speed) != self.speed or self.speed <= 0:
            raise InvalidPlatformError(
                f"processor speed w_q must be a positive integer, got {self.speed!r}"
            )
        if (
            isinstance(self.capacity, bool)
            or int(self.capacity) != self.capacity
            or self.capacity <= 0
        ):
            raise InvalidPlatformError(
                f"processor capacity µ_q must be a positive integer, got {self.capacity!r}"
            )
        object.__setattr__(self, "speed", int(self.speed))
        object.__setattr__(self, "capacity", int(self.capacity))
        if not isinstance(self.availability, AvailabilityModel):
            raise InvalidPlatformError(
                "availability must be an AvailabilityModel instance, got "
                f"{type(self.availability).__name__}"
            )

    def task_slots(self, tasks: int) -> int:
        """UP time-slots needed to compute *tasks* concurrent tasks (``tasks * w_q``)."""
        if tasks < 0:
            raise ValueError(f"tasks must be >= 0, got {tasks}")
        return tasks * self.speed

    def with_name(self, name: str) -> "Processor":
        """A copy of this processor with a display name attached."""
        return Processor(self.speed, self.capacity, self.availability, name)

    def describe(self) -> str:
        label = self.name or "P?"
        return (
            f"{label}(w={self.speed}, mu={self.capacity}, "
            f"avail={self.availability.describe()})"
        )
