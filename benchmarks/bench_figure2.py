"""Benchmark regenerating **Figure 2** of the paper (%diff vs wmin, m = 10).

Figure 2 plots the mean relative distance to the IE reference against the
difficulty parameter ``wmin`` for the eight best heuristics.  The qualitative
shape to reproduce: Y-IE (and P-IE) beat IE on easy-to-moderate instances
(negative relative distance at small wmin) while IE catches up — and
eventually wins — on the hardest instances (largest wmin), where "pick the
fastest workers and hope for the best" becomes the right strategy.

The default benchmark grid sweeps a subset of the wmin range with a reduced
heuristic set (the four headline heuristics); use ``REPRO_BENCH_SCALE`` to
enlarge it.
"""

from __future__ import annotations

import pytest

from _config import campaign_scale, write_result
from repro.experiments.figures import figure2_series, format_figure2
from repro.experiments.runner import run_campaign
from repro.experiments.scenarios import CampaignScale

#: Heuristics plotted by the benchmark (subset of the paper's eight for speed).
FIGURE2_HEURISTICS = ("IE", "Y-IE", "P-IE")

#: A higher makespan cap than the table benchmarks: the hard (large wmin)
#: cells are exactly the interesting part of Figure 2, and capping them too
#: early would drop the right-hand side of the sweep.
FIGURE2_SCALE = CampaignScale(
    ncom_values=(10,),
    wmin_values=(1, 3, 5, 7),
    scenarios_per_cell=1,
    trials_per_scenario=1,
    iterations=10,
    makespan_cap=120_000,
)


@pytest.mark.benchmark(group="figure2")
def test_figure2_series(benchmark):
    """Run the Figure 2 sweep and regenerate its data series."""
    scale = campaign_scale(FIGURE2_SCALE)

    def run():
        campaign = run_campaign(
            10, heuristics=FIGURE2_HEURISTICS, scale=scale, label="figure2"
        )
        return figure2_series(campaign.results)

    series = benchmark.pedantic(run, rounds=1, iterations=1)

    text = format_figure2(series, heuristics=[h for h in FIGURE2_HEURISTICS if h in series])
    report = (
        "Figure 2 reproduction — mean relative distance to IE vs wmin (m = 10)\n"
        + text
        + "\n\nPaper shape: Y-IE/P-IE below 0 for small wmin, IE best for the largest wmin."
    )
    print("\n" + report)
    write_result("figure2.txt", report)

    assert "IE" in series
    # The reference series is identically zero by construction.
    assert all(abs(value) < 1e-12 for _, value in series["IE"])
