"""Shared configuration for the benchmark harness.

Every table/figure of the paper has one benchmark module that regenerates it.
Because the paper's full campaign (6,000 instances x 17 heuristics with a
10^6-slot makespan cap) is not laptop-sized, the benchmarks run a reduced
grid by default and can be scaled up through the ``REPRO_BENCH_SCALE``
environment variable:

* ``smoke``   — minimal grid, seconds (CI smoke test of the harness);
* ``bench``   — the default: same sweep structure as the paper, reduced
  repetitions; minutes;
* ``reduced`` — the CLI's reduced scale (more wmin values and repetitions);
  tens of minutes;
* ``paper``   — the full paper grid; hours to days.

Regenerated tables/figures are printed to stdout and also written to
``benchmarks/results/`` so they can be compared against the paper's numbers
(see EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.scenarios import CampaignScale

RESULTS_DIR = Path(__file__).parent / "results"

#: Default benchmark scale: keeps the (m, ncom, wmin) sweep structure of the
#: paper but with one scenario/trial per cell and a tighter makespan cap.
BENCH_SCALE = CampaignScale(
    ncom_values=(5, 20),
    wmin_values=(1, 4, 7),
    scenarios_per_cell=2,
    trials_per_scenario=1,
    iterations=10,
    makespan_cap=60_000,
)

#: An even smaller grid used by the heavier m = 10 benchmarks.
BENCH_SCALE_M10 = CampaignScale(
    ncom_values=(5, 20),
    wmin_values=(1, 4, 7),
    scenarios_per_cell=1,
    trials_per_scenario=1,
    iterations=10,
    makespan_cap=40_000,
)

SMOKE_SCALE = CampaignScale.smoke()


def campaign_scale(default: CampaignScale) -> CampaignScale:
    """Resolve the campaign scale from ``REPRO_BENCH_SCALE``."""
    choice = os.environ.get("REPRO_BENCH_SCALE", "bench").lower()
    if choice == "smoke":
        return SMOKE_SCALE
    if choice == "bench":
        return default
    if choice == "reduced":
        return CampaignScale.reduced()
    if choice == "paper":
        return CampaignScale.paper()
    raise ValueError(
        f"unknown REPRO_BENCH_SCALE={choice!r}; expected smoke|bench|reduced|paper"
    )


def write_result(name: str, text: str) -> Path:
    """Persist a regenerated table/figure under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    return path


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR
