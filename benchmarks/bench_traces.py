"""Micro-benchmarks of the trace subsystem: ingestion and compiled replay.

Two costs matter for trace-driven campaigns:

* **ingestion** — parsing a recorded interval log into the int8 state matrix
  (``repro.traces.formats``), measured in interval rows/second over a
  scaled-up copy of the shipped example dataset;
* **compiled replay** — simulating on trace-replay models, whose
  ``sample_block`` feeds the engine's vectorised fast path, measured in
  engine slots/second (with the per-slot driver alongside for the speedup).

Run directly for the JSON report tracked across PRs
(``benchmarks/results/BENCH_traces.json``, gated by
``benchmarks/check_regression.py`` under the ``traces_throughput`` schema)::

    PYTHONPATH=src python benchmarks/bench_traces.py
"""

from __future__ import annotations

import csv
import io
import json
import platform as platform_module
import time
from pathlib import Path

import pytest

from repro.application import Application
from repro.platform.builders import PlatformSpec, availability_platform
from repro.scheduling import create_scheduler
from repro.simulation import SimulationEngine
from repro.traces.formats import load_interval_csv, trace_from_intervals
from repro.traces.resample import bootstrap_models

RESULTS_DIR = Path(__file__).parent / "results"
EXAMPLE_CSV = Path(__file__).parent.parent / "examples" / "traces" / "desktop_week.csv"

#: Ingestion workload: the example dataset replicated to this many rows.
INGEST_ROWS = 40_000
#: Replay workload: 20 workers, 100k capped slots (matches bench_simulator).
REPLAY_WORKERS = 20
REPLAY_SLOTS = 100_000


def _scaled_csv_text(target_rows: int) -> str:
    """The example CSV's interval rows replicated across synthetic nodes."""
    base_lines = [
        line for line in EXAMPLE_CSV.read_text().splitlines()[1:] if line.strip()
    ]
    lines = ["node,start,end,state"]
    clone = 0
    while len(lines) - 1 < target_rows:
        for line in base_lines:
            node, rest = line.split(",", 1)
            lines.append(f"{node}c{clone},{rest}")
            if len(lines) - 1 >= target_rows:
                break
        clone += 1
    return "\n".join(lines) + "\n"


def measure_ingest(target_rows: int = INGEST_ROWS, repeats: int = 3) -> dict:
    """Best-of-*repeats* interval rows/second for CSV ingestion."""
    text = _scaled_csv_text(target_rows)
    num_rows = text.count("\n") - 1
    best = float("inf")
    trace = None
    for _ in range(repeats):
        start = time.perf_counter()
        # Parse from an in-memory file via the row-level API (load_interval_csv
        # is the same code path behind a file read).
        records = []
        reader = csv.reader(io.StringIO(text))
        next(reader)
        for row in reader:
            records.append((row[0], float(row[1]), float(row[2]), row[3]))
        trace = trace_from_intervals(records, slot_duration=900)
        best = min(best, time.perf_counter() - start)
    assert trace is not None and trace.horizon == 672
    return {
        "case": "ingest_csv",
        "rows": num_rows,
        "processors": trace.num_processors,
        "wall_seconds": round(best, 4),
        "ops_per_second": round(num_rows / best, 1),
    }


def _replay_platform(seed: int = 123):
    recording = load_interval_csv(EXAMPLE_CSV, slot_duration=900)

    def factory(rng, count):
        return bootstrap_models(recording, rng, count, block_length=96, horizon=2016)

    return availability_platform(
        PlatformSpec(num_processors=REPLAY_WORKERS, ncom=10, wmin=2),
        num_tasks=5,
        seed=seed,
        model_factory=factory,
    )


def measure_replay(mode: str, max_slots: int = REPLAY_SLOTS, repeats: int = 3) -> dict:
    """Best-of-*repeats* engine slots/second replaying bootstrap trace models."""
    platform = _replay_platform()
    application = Application(tasks_per_iteration=5, iterations=max_slots)
    best = float("inf")
    for _ in range(repeats):
        engine = SimulationEngine(
            platform,
            application,
            create_scheduler("RANDOM"),
            seed=7,
            max_slots=max_slots,
            sampler=mode,
        )
        start = time.perf_counter()
        engine.run()
        best = min(best, time.perf_counter() - start)
    return {
        "case": f"replay_{mode}",
        "workers": REPLAY_WORKERS,
        "slots": max_slots,
        "wall_seconds": round(best, 4),
        "ops_per_second": round(max_slots / best, 1),
    }


def measure_traces(
    max_slots: int = REPLAY_SLOTS, ingest_rows: int = INGEST_ROWS, repeats: int = 3
) -> dict:
    """Measure all cases and return the JSON-ready report."""
    runs = [
        measure_ingest(ingest_rows, repeats),
        measure_replay("block", max_slots, repeats),
        measure_replay("perslot", max_slots, repeats),
    ]
    by_case = {run["case"]: run["ops_per_second"] for run in runs}
    return {
        "benchmark": "traces_throughput",
        "python": platform_module.python_version(),
        "runs": runs,
        "speedup_block_over_perslot": round(
            by_case["replay_block"] / by_case["replay_perslot"], 2
        ),
    }


def write_report(report: dict, path: Path = None) -> Path:
    """Write *report* as JSON; defaults to the tracked cross-PR record."""
    if path is None:
        path = RESULTS_DIR / "BENCH_traces.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


# ----------------------------------------------------------------------
# pytest-benchmark smoke cases (nightly, REPRO_BENCH_SCALE=smoke)
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="traces")
def test_ingest_example_dataset(benchmark):
    """Ingesting the shipped example CSV (small, shape check only)."""
    trace = benchmark.pedantic(
        load_interval_csv, args=(EXAMPLE_CSV,), kwargs={"slot_duration": 900},
        rounds=3, iterations=1,
    )
    assert trace.num_processors == 12 and trace.horizon == 672


@pytest.mark.benchmark(group="traces")
def test_replay_throughput_report(benchmark, tmp_path):
    """Reduced-slots traces throughput sweep (report shape only, written to tmp)."""
    report = benchmark.pedantic(
        measure_traces,
        kwargs={"max_slots": 10_000, "ingest_rows": 2_000, "repeats": 1},
        rounds=1, iterations=1,
    )
    path = write_report(report, tmp_path / "BENCH_traces.json")
    assert path.exists()
    assert all(run["ops_per_second"] > 0 for run in report["runs"])


@pytest.mark.benchmark(group="traces")
def test_block_replay_matches_perslot(benchmark):
    """Differential guard: both drivers simulate the same trajectory."""
    results = {}
    for mode in ("block", "perslot"):
        engine = SimulationEngine(
            _replay_platform(),
            Application(tasks_per_iteration=5, iterations=3),
            create_scheduler("IE"),
            seed=11,
            max_slots=20_000,
            sampler=mode,
        )
        result = engine.run()
        results[mode] = (result.makespan, result.completed_iterations)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert results["block"] == results["perslot"]


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description="Measure trace-subsystem throughput")
    parser.add_argument(
        "--output", default=None,
        help="write the JSON report here instead of the tracked baseline file",
    )
    parser.add_argument(
        "--slots", type=int, default=REPLAY_SLOTS,
        help=f"slots per replay run (default {REPLAY_SLOTS})",
    )
    parser.add_argument(
        "--rows", type=int, default=INGEST_ROWS,
        help=f"interval rows for the ingestion case (default {INGEST_ROWS})",
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N repeats (default 3)")
    cli_args = parser.parse_args()
    if cli_args.output is None and (
        cli_args.slots != REPLAY_SLOTS or cli_args.rows != INGEST_ROWS
    ):
        parser.error("reduced sweeps must pass --output so the tracked baseline is not overwritten")
    full_report = measure_traces(cli_args.slots, cli_args.rows, cli_args.repeats)
    output = write_report(full_report, Path(cli_args.output) if cli_args.output else None)
    print(json.dumps(full_report, indent=2))
    print(f"\nwritten to {output}")
