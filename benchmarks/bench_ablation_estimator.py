"""Ablation A: the paper's E^(S)(W) closed form vs the strict renewal estimator.

DESIGN.md notes that the paper's expected-completion-time formula
``E(W) = (1 + (W−1) E_c) / P₊^{W−1}`` is a conservative variant of the strict
renewal conditional expectation ``1 + (W−1) E_c / P₊`` (they coincide when no
worker can fail).  This ablation runs the same reduced Table-I campaign with
the heuristics driven by each estimator and compares the resulting rankings:
the expected outcome is that the ranking of heuristic families is unchanged —
i.e. the paper's conclusions are not an artefact of the estimator variant.
"""

from __future__ import annotations

import pytest

from _config import campaign_scale, write_result
from repro.analysis.group import ExpectationMode
from repro.experiments.metrics import summarize_results
from repro.experiments.runner import run_campaign
from repro.experiments.scenarios import CampaignScale
from repro.experiments.tables import format_summaries

ABLATION_HEURISTICS = ("IE", "Y-IE", "P-IE", "E-IAY", "IAY", "RANDOM")

ABLATION_SCALE = CampaignScale(
    ncom_values=(10,),
    wmin_values=(1, 4),
    scenarios_per_cell=2,
    trials_per_scenario=1,
    iterations=10,
    makespan_cap=40_000,
)


@pytest.mark.benchmark(group="ablation")
@pytest.mark.parametrize("mode", [ExpectationMode.PAPER, ExpectationMode.RENEWAL])
def test_estimator_ablation(benchmark, mode):
    scale = campaign_scale(ABLATION_SCALE)

    def run():
        campaign = run_campaign(
            5,
            heuristics=ABLATION_HEURISTICS,
            scale=scale,
            label=f"ablation-{mode.value}",
            mode=mode,
        )
        return summarize_results(campaign.results)

    summaries = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_summaries(
        summaries, title=f"Estimator ablation — mode={mode.value} (m = 5, reduced grid)"
    )
    print("\n" + text)
    write_result(f"ablation_estimator_{mode.value}.txt", text)

    by_name = {summary.heuristic: summary for summary in summaries}
    assert by_name["IE"].pct_diff == pytest.approx(0.0)
    # Whatever the estimator, RANDOM must remain far behind the informed
    # heuristics.  The separation is statistical: only assert it when the
    # grid has enough instances for it to hold (the smoke scale runs a
    # single scenario, where RANDOM can get lucky).
    enough_instances = (
        scale.scenarios_per_cell * scale.trials_per_scenario * len(scale.wmin_values) >= 4
    )
    if enough_instances and by_name["RANDOM"].pct_diff is not None:
        assert by_name["RANDOM"].pct_diff > 25.0
