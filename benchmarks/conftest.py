"""Pytest configuration for the benchmark suite.

The shared scale/result helpers live in ``_config.py`` (imported directly by
the benchmark modules); this conftest only makes sure the results directory
exists before any benchmark writes to it.
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _ensure_results_dir():
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    yield
