"""Benchmark regenerating **Figure 1** of the paper (worked iteration example).

Figure 1 is qualitative: it illustrates one iteration on a 5-processor
platform (w_i = i, ncom = 2, Tprog = 2, Tdata = 1, m = 5) with reclamations
suspending the execution.  This benchmark replays a scripted availability
trace reproducing the same phenomena (bandwidth-limited communication phase,
suspension during RECLAIMED slots, synchronised computation) and renders the
Gantt chart; it also measures the engine cost of such a micro-instance.
"""

from __future__ import annotations
import pytest

from _config import write_result
from repro.application import Application, Configuration
from repro.availability import AvailabilityTrace, MarkovAvailabilityModel
from repro.platform import Platform, Processor
from repro.scheduling.base import Observation, Scheduler
from repro.simulation import SimulationEngine, render_gantt


class Figure1Scheduler(Scheduler):
    """Enrols P2/P3/P4 with the allocation of the paper's worked example."""

    name = "FIGURE1"

    def select(self, observation: Observation) -> Configuration:
        target = Configuration({1: 2, 2: 2, 3: 1})
        if all(observation.is_up(worker) for worker in target.workers):
            return target
        if not observation.failure and not observation.current_configuration.is_empty():
            return observation.current_configuration
        return Configuration.empty()


def build_setup():
    processors = [
        Processor(speed=i, capacity=5, availability=MarkovAvailabilityModel.always_up())
        for i in range(1, 6)
    ]
    platform = Platform(processors, ncom=2, tprog=2, tdata=1)
    application = Application(tasks_per_iteration=5, iterations=1)
    # Scripted availability: P3 reclaimed during part of the communication
    # phase, P2 then P3 reclaimed during the computation phase (as in Fig. 1).
    rows = [
        "uuuuuuuuuuuuuuuuuuuu",
        "uuuuuuuuuurruuuuuuuu",
        "uuurruuuuuuuruuuuuuu",
        "uuuuuuuuuuuuuuuuuuuu",
        "uuuuuuuuuuuuuuuuuuuu",
    ]
    trace = AvailabilityTrace(rows)
    return platform, application, trace


@pytest.mark.benchmark(group="figure1")
def test_figure1_worked_example(benchmark):
    platform, application, trace = build_setup()

    def run():
        engine = SimulationEngine(
            platform, application, Figure1Scheduler(), trace=trace, max_slots=20,
            record_activity=True, record_events=True,
        )
        return engine, engine.run()

    engine, result = benchmark.pedantic(run, rounds=3, iterations=1)

    assert result.success
    gantt = render_gantt(engine.activity_matrix, engine.state_matrix)
    report = (
        "Figure 1 reproduction — one iteration with m = 5 tasks on 5 processors\n"
        f"(w_i = i, ncom = 2, Tprog = 2, Tdata = 1); makespan = {result.makespan} slots,\n"
        f"{result.communication_slots} communication slots, {result.computation_slots} computation slots, "
        f"{result.idle_slots} suspended slots.\n\n" + gantt
    )
    print("\n" + report)
    write_result("figure1.txt", report)

    # Reclamations must have suspended the execution (idle slots > 0) without
    # losing any work (single iteration, no restart).
    assert result.idle_slots > 0
    assert result.total_restarts == 0
