"""Benchmarks of the off-line complexity artefacts (Section IV / Theorem 4.1).

The paper has no off-line experiment (the result is an NP-hardness proof),
so this benchmark exercises the constructive artefacts instead: the ENCD
reductions and the exact exponential-time solvers on small random instances,
plus the clairvoyant greedy oracle on a longer trace (useful as an upper
baseline in the examples).
"""

from __future__ import annotations

import pytest

from _config import write_result
from repro.availability import AvailabilityTrace
from repro.availability.generators import random_markov_models
from repro.offline import (
    ENCDInstance,
    OfflineProblem,
    encd_to_offline_mu1,
    encd_to_offline_mu_inf,
    greedy_oracle_iterations,
    solve_encd_bruteforce,
    solve_offline_mu1,
    solve_offline_mu_inf,
    upper_bound_iterations,
)


@pytest.mark.benchmark(group="offline")
def test_encd_reduction_and_exact_solvers(benchmark):
    """Exact feasibility of a 12x14 random ENCD instance via both reductions."""
    instance = ENCDInstance.random(12, 14, edge_probability=0.6, a=4, b=4, seed=42)

    def run():
        encd = solve_encd_bruteforce(instance) is not None
        mu1 = solve_offline_mu1(encd_to_offline_mu1(instance)) is not None
        mu_inf = solve_offline_mu_inf(encd_to_offline_mu_inf(instance)) is not None
        return encd, mu1, mu_inf

    encd, mu1, mu_inf = benchmark(run)
    # Theorem 4.1: the three answers must agree.
    assert encd == mu1 == mu_inf
    write_result(
        "offline_theorem41.txt",
        "Theorem 4.1 feasibility cross-check on a random 12x14 ENCD instance "
        f"(a=4, b=4): ENCD={encd}, OFF-LINE-COUPLED(mu=1)={mu1}, "
        f"OFF-LINE-COUPLED(mu=inf)={mu_inf}",
    )


@pytest.mark.benchmark(group="offline")
def test_clairvoyant_oracle_on_markov_trace(benchmark):
    """Greedy clairvoyant oracle vs upper bound on a 20-processor Markov trace."""
    models = random_markov_models(20, seed=9)
    trace = AvailabilityTrace.from_models(models, horizon=2_000, seed=10)
    problem = OfflineProblem(trace=trace, num_tasks=5, task_slots=4, capacity=1)

    def run():
        count, _ = greedy_oracle_iterations(problem)
        return count

    count = benchmark(run)
    bound = upper_bound_iterations(problem)
    assert 0 <= count <= bound
