"""Benchmark regenerating **Table I** of the paper (m = 5, all 17 heuristics).

The paper reports, for each heuristic, the number of failed instances, the
mean relative difference to the IE reference (%diff), the fraction of trials
won (%wins), the fraction within 30 % of IE (%wins30) and the standard
deviation over scenarios.  Expected qualitative shape (paper values are kept
in ``repro.experiments.tables.PAPER_TABLE1``):

* RANDOM is worse than every informed heuristic by an order of magnitude;
* the best heuristics are proactive (Y-IE, P-IE, E-IAY, E-IY beat IE);
* IE itself is the most robust passive heuristic.

Run with a larger grid via ``REPRO_BENCH_SCALE=reduced`` (or ``paper``).
"""

from __future__ import annotations

import pytest

from _config import BENCH_SCALE, campaign_scale, write_result
from repro.experiments.metrics import summarize_results
from repro.experiments.report import compare_with_paper, format_comparison
from repro.experiments.runner import run_campaign
from repro.experiments.tables import PAPER_TABLE1, format_summaries
from repro.scheduling.registry import ALL_HEURISTICS


@pytest.mark.benchmark(group="table1")
def test_table1_campaign(benchmark):
    """Run the Table I campaign and regenerate the table."""
    scale = campaign_scale(BENCH_SCALE)

    def run():
        campaign = run_campaign(
            5, heuristics=ALL_HEURISTICS, scale=scale, label="table1"
        )
        return summarize_results(campaign.results)

    summaries = benchmark.pedantic(run, rounds=1, iterations=1)

    text = format_summaries(
        summaries,
        title=f"Table I reproduction (m = 5, {scale.num_instances()} instances per heuristic)",
    )
    paper_rows = "\n".join(
        f"  {name:8s} fails={row[0]:>3d}  %diff={row[1]:>8.2f}  %wins={row[2]:>6.2f}  "
        f"%wins30={row[3]:>6.2f}  stdv={row[4]:>5.2f}"
        for name, row in PAPER_TABLE1.items()
    )
    comparison = format_comparison(compare_with_paper(summaries, PAPER_TABLE1))
    report = (
        f"{text}\n\nPaper-reported Table I (for comparison):\n{paper_rows}"
        f"\n\nShape comparison with the paper:\n{comparison}"
    )
    print("\n" + report)
    write_result("table1.txt", report)

    # Sanity checks on the qualitative shape.
    by_name = {summary.heuristic: summary for summary in summaries}
    assert set(by_name) == set(ALL_HEURISTICS)
    reference = by_name["IE"]
    assert reference.pct_diff == pytest.approx(0.0)
    random_summary = by_name["RANDOM"]
    if random_summary.pct_diff is not None:
        # RANDOM must be far worse than the reference whenever it completes.
        assert random_summary.pct_diff > 50.0
