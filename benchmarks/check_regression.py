"""CI benchmark-regression gate for the tracked benchmark reports.

Compares fresh benchmark reports against the committed baselines under
``benchmarks/results/`` and exits non-zero if a tracked throughput metric
dropped by more than the allowed fraction (default 25%) on any key present
in both reports.  The gate is benchmark-agnostic: every ``BENCH_*.json``
report declares its kind in a ``benchmark`` field, and the schema registry
below says which fields identify a run and which field is the throughput
metric.

Typical CI usage (measure first, so the JSONs are reusable as artifacts)::

    PYTHONPATH=src python benchmarks/bench_simulator.py --output bench_current.json
    PYTHONPATH=src python benchmarks/bench_analysis.py --output bench_analysis_current.json
    PYTHONPATH=src python benchmarks/check_regression.py \
        --pair benchmarks/results/BENCH_simulator.json bench_current.json \
        --pair benchmarks/results/BENCH_analysis.json bench_analysis_current.json \
        --summary "$GITHUB_STEP_SUMMARY"

The single-pair form ``--baseline X --current Y`` is still supported; run
with neither ``--current`` nor ``--pair`` to measure the simulator sweep
in-process (``--slots``/``--repeats`` control its size).  ``--max-drop``
takes a fraction, e.g. ``0.25``.  ``--summary PATH`` appends a markdown
delta table (baseline vs current, percent change) to *PATH* — pass
``$GITHUB_STEP_SUMMARY`` in CI.

The gate compares like with like — the per-key throughput of the same
workload — so it catches code regressions.  It cannot distinguish a slow
runner from slow code; if CI hardware changes class, refresh the baselines
by committing new ``BENCH_*.json`` files from that hardware.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

DEFAULT_BASELINE = Path(__file__).parent / "results" / "BENCH_simulator.json"
DEFAULT_MAX_DROP = 0.25

#: benchmark name -> (fields identifying one run, throughput metric field).
REPORT_SCHEMAS: Dict[str, Tuple[Tuple[str, ...], str]] = {
    "simulator_throughput": (("heuristic", "mode"), "slots_per_second"),
    "analysis_throughput": (("case", "variant"), "ops_per_second"),
    "traces_throughput": (("case",), "ops_per_second"),
}

#: benchmark name -> (discriminator field, discriminator values, metric field)
#: for *overhead* rows: percentages gated two-sided on absolute change, not
#: throughputs gated one-sided on relative drop.  An overhead that balloons
#: is a regression; one that collapses to nothing usually means the measured
#: feature silently stopped doing its work.
OVERHEAD_SCHEMAS: Dict[str, Tuple[str, Tuple[str, ...], str]] = {
    "simulator_throughput": (
        "mode",
        ("metrics_overhead", "telemetry_overhead"),
        "overhead_percent",
    ),
}


def _split_runs(report: dict) -> Tuple[List[dict], List[dict]]:
    """Partition ``runs`` into (throughput rows, overhead rows)."""
    schema = OVERHEAD_SCHEMAS.get(report.get("benchmark"))
    runs = report.get("runs", [])
    if schema is None:
        return list(runs), []
    field, values, _ = schema
    return (
        [run for run in runs if run.get(field) not in values],
        [run for run in runs if run.get(field) in values],
    )


def _schema(report: dict) -> Tuple[Tuple[str, ...], str]:
    kind = report.get("benchmark")
    try:
        return REPORT_SCHEMAS[kind]
    except KeyError:
        known = ", ".join(sorted(REPORT_SCHEMAS))
        raise ValueError(f"unknown benchmark report kind {kind!r} (known: {known})") from None


def _throughputs(report: dict) -> Dict[Tuple[str, ...], float]:
    """Map run-identity tuple -> throughput metric for any known report."""
    key_fields, metric = _schema(report)
    normal_runs, _ = _split_runs(report)
    return {
        tuple(str(run[field]) for field in key_fields): float(run[metric])
        for run in normal_runs
    }


def _overheads(report: dict) -> Dict[Tuple[str, ...], float]:
    """Map run-identity tuple -> overhead percentage for the report's overhead rows."""
    schema = OVERHEAD_SCHEMAS.get(report.get("benchmark"))
    if schema is None:
        return {}
    key_fields, _ = _schema(report)
    _, overhead_runs = _split_runs(report)
    metric = schema[2]
    return {
        tuple(str(run[field]) for field in key_fields): float(run[metric])
        for run in overhead_runs
        if metric in run
    }


def compare_reports(
    baseline: dict, current: dict, *, max_drop: float = DEFAULT_MAX_DROP
) -> Tuple[List[str], List[str]]:
    """Return ``(failures, lines)`` comparing *current* against *baseline*.

    ``failures`` lists every run key whose throughput dropped by more than
    ``max_drop`` (a fraction), plus every overhead row whose percentage moved
    by more than ``100 * max_drop`` percentage points in *either* direction;
    ``lines`` is the full human-readable comparison table.
    """
    if not (0.0 < max_drop < 1.0):
        raise ValueError(f"max_drop must be a fraction in (0, 1), got {max_drop}")
    if baseline.get("benchmark") != current.get("benchmark"):
        raise ValueError(
            f"cannot compare a {baseline.get('benchmark')!r} baseline against "
            f"a {current.get('benchmark')!r} report"
        )
    key_fields, metric = _schema(baseline)
    base = _throughputs(baseline)
    fresh = _throughputs(current)
    common = sorted(set(base) & set(fresh))
    base_overhead = _overheads(baseline)
    fresh_overhead = _overheads(current)
    common_overhead = sorted(set(base_overhead) & set(fresh_overhead))
    if not common and not common_overhead:
        raise ValueError("baseline and current reports share no run keys")
    key_width = max(
        10, *(len(" ".join(key)) for key in common + common_overhead)
    )
    failures: List[str] = []
    lines: List[str] = [
        f"[{baseline['benchmark']}] metric: {metric}",
        f"{' '.join(key_fields):<{key_width}} {'baseline':>12} {'current':>12} {'change':>8}",
    ]
    for key in common:
        reference = base[key]
        measured = fresh[key]
        change = (measured - reference) / reference
        verdict = ""
        if change < -max_drop:
            verdict = "  REGRESSION"
            failures.append(
                f"{'/'.join(key)}: {measured:.0f} {metric} is "
                f"{-100 * change:.1f}% below baseline {reference:.0f}"
            )
        lines.append(
            f"{' '.join(key):<{key_width}} {reference:>12.1f} {measured:>12.1f} "
            f"{100 * change:>+7.1f}%{verdict}"
        )
    max_shift = 100.0 * max_drop  # percentage points, two-sided
    for key in common_overhead:
        reference = base_overhead[key]
        measured = fresh_overhead[key]
        shift = measured - reference
        verdict = ""
        if abs(shift) > max_shift:
            verdict = "  REGRESSION"
            failures.append(
                f"{'/'.join(key)}: overhead {measured:+.2f}% moved "
                f"{shift:+.2f}pp from baseline {reference:+.2f}% "
                f"(two-sided limit {max_shift:.0f}pp)"
            )
        lines.append(
            f"{' '.join(key):<{key_width}} {reference:>11.2f}% {measured:>11.2f}% "
            f"{shift:>+6.2f}pp{verdict}"
        )
    return failures, lines


#: Fingerprint fields whose change makes throughput deltas hard to interpret.
FINGERPRINT_FIELDS = ("cpu_model", "cpu_count", "python", "numpy", "numba", "kernel_backend")


def fingerprint_warnings(baseline: dict, current: dict) -> List[str]:
    """Warnings (never failures) for machine-fingerprint mismatches.

    Reports embed a ``machine`` fingerprint (see
    ``bench_simulator.machine_fingerprint``).  When both sides carry one and
    they disagree on a significant field, the throughput comparison mixes a
    hardware/toolchain change into the code delta — worth flagging, but not
    a regression verdict, so the gate only warns.
    """
    base = baseline.get("machine")
    fresh = current.get("machine")
    if not isinstance(base, dict) or not isinstance(fresh, dict):
        return []
    warnings = []
    for field in FINGERPRINT_FIELDS:
        if field in base and field in fresh and base[field] != fresh[field]:
            warnings.append(
                f"machine fingerprint mismatch on {field!r}: baseline "
                f"{base[field]!r} vs current {fresh[field]!r} — throughput "
                "deltas may reflect the environment, not the code"
            )
    return warnings


def summary_table(baseline: dict, current: dict, *, max_drop: float) -> List[str]:
    """Markdown delta table for one report pair (``$GITHUB_STEP_SUMMARY``)."""
    key_fields, metric = _schema(baseline)
    base = _throughputs(baseline)
    fresh = _throughputs(current)
    common = sorted(set(base) & set(fresh))
    lines = [
        f"### {baseline['benchmark']} ({metric})",
        "",
        f"| {' '.join(key_fields)} | baseline | current | change |",
        "| --- | ---: | ---: | ---: |",
    ]
    for key in common:
        reference = base[key]
        measured = fresh[key]
        change = (measured - reference) / reference
        marker = " :warning:" if change < -max_drop else ""
        lines.append(
            f"| {' '.join(key)} | {reference:,.1f} | {measured:,.1f} "
            f"| {100 * change:+.1f}%{marker} |"
        )
    base_overhead = _overheads(baseline)
    fresh_overhead = _overheads(current)
    for key in sorted(set(base_overhead) & set(fresh_overhead)):
        reference = base_overhead[key]
        measured = fresh_overhead[key]
        shift = measured - reference
        marker = " :warning:" if abs(shift) > 100.0 * max_drop else ""
        lines.append(
            f"| {' '.join(key)} | {reference:+.2f}% | {measured:+.2f}% "
            f"| {shift:+.2f}pp{marker} |"
        )
    lines.append("")
    return lines


def _load(path: str) -> dict:
    return json.loads(Path(path).read_text())


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help=f"committed baseline report (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--current",
        default=None,
        help="fresh report to check; omit to measure the simulator in-process",
    )
    parser.add_argument(
        "--pair",
        nargs=2,
        action="append",
        default=[],
        metavar=("BASELINE", "CURRENT"),
        help="baseline/current report pair; repeatable, gates all pairs at once",
    )
    parser.add_argument(
        "--max-drop",
        type=float,
        default=DEFAULT_MAX_DROP,
        help=f"maximum tolerated fractional slowdown (default {DEFAULT_MAX_DROP})",
    )
    parser.add_argument(
        "--summary",
        default=None,
        help="append a markdown delta table to this file (e.g. $GITHUB_STEP_SUMMARY)",
    )
    parser.add_argument(
        "--slots",
        type=int,
        default=None,
        help="slots per run when measuring in-process (default: the full workload)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="best-of-N repeats when measuring in-process (default 3)",
    )
    args = parser.parse_args(argv)

    pairs: List[Tuple[dict, dict]] = []
    try:
        for baseline_path, current_path in args.pair:
            pairs.append((_load(baseline_path), _load(current_path)))
        if not args.pair:
            baseline = _load(args.baseline)
            if args.current is not None:
                current = _load(args.current)
            else:
                sys.path.insert(0, str(Path(__file__).parent))
                from bench_simulator import THROUGHPUT_SLOTS, measure_throughput

                current = measure_throughput(args.slots or THROUGHPUT_SLOTS, args.repeats)
            pairs.append((baseline, current))
    except (OSError, json.JSONDecodeError) as error:
        print(f"cannot read report: {error}", file=sys.stderr)
        return 2

    failures: List[str] = []
    summary_lines: List[str] = []
    for baseline, current in pairs:
        try:
            pair_failures, lines = compare_reports(baseline, current, max_drop=args.max_drop)
        except ValueError as error:
            print(f"cannot compare reports: {error}", file=sys.stderr)
            return 2
        failures.extend(pair_failures)
        print("\n".join(lines))
        for warning in fingerprint_warnings(baseline, current):
            print(f"WARNING: {warning}")
        print()
        if args.summary:
            summary_lines.extend(summary_table(baseline, current, max_drop=args.max_drop))

    if args.summary and summary_lines:
        with open(args.summary, "a") as handle:
            handle.write("\n".join(["## Benchmark regression gate", ""] + summary_lines))
            handle.write("\n")

    if failures:
        print(
            f"FAIL: {len(failures)} throughput regression(s) beyond {100 * args.max_drop:.0f}%:",
            file=sys.stderr,
        )
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"OK: no tracked run dropped more than {100 * args.max_drop:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
