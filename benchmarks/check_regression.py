"""CI benchmark-regression gate for the simulation engine.

Compares a fresh ``bench_simulator.py`` throughput report against the
committed baseline (``benchmarks/results/BENCH_simulator.json``) and exits
non-zero if slots/sec dropped by more than the allowed fraction (default
25%) on any (heuristic, mode) pair present in both reports.

Typical CI usage (two steps, so the measurement is reusable as an artifact)::

    PYTHONPATH=src python benchmarks/bench_simulator.py --output bench_current.json
    PYTHONPATH=src python benchmarks/check_regression.py --current bench_current.json

Run without ``--current`` to measure in-process (``--slots``/``--repeats``
control the sweep size).  ``--max-drop`` takes a fraction, e.g. ``0.25``.

The gate compares like with like — the per-(heuristic, mode) slots/sec of
the same workload — so it catches engine regressions.  It cannot distinguish
a slow runner from a slow engine; if CI hardware changes class, refresh the
baseline by committing a new ``BENCH_simulator.json`` from that hardware.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple

DEFAULT_BASELINE = Path(__file__).parent / "results" / "BENCH_simulator.json"
DEFAULT_MAX_DROP = 0.25


def _throughputs(report: dict) -> Dict[Tuple[str, str], float]:
    """Map (heuristic, mode) -> slots/sec from a bench_simulator report."""
    if report.get("benchmark") != "simulator_throughput":
        raise ValueError(f"not a simulator throughput report: {report.get('benchmark')!r}")
    return {
        (run["heuristic"], run["mode"]): float(run["slots_per_second"])
        for run in report.get("runs", [])
    }


def compare_reports(
    baseline: dict, current: dict, *, max_drop: float = DEFAULT_MAX_DROP
) -> Tuple[List[str], List[str]]:
    """Return ``(failures, lines)`` comparing *current* against *baseline*.

    ``failures`` lists every (heuristic, mode) pair whose throughput dropped
    by more than ``max_drop`` (a fraction); ``lines`` is the full
    human-readable comparison table.
    """
    if not (0.0 < max_drop < 1.0):
        raise ValueError(f"max_drop must be a fraction in (0, 1), got {max_drop}")
    base = _throughputs(baseline)
    fresh = _throughputs(current)
    common = sorted(set(base) & set(fresh))
    if not common:
        raise ValueError("baseline and current reports share no (heuristic, mode) pairs")
    failures: List[str] = []
    lines: List[str] = [
        f"{'heuristic':<10} {'mode':<8} {'baseline':>12} {'current':>12} {'change':>8}"
    ]
    for heuristic, mode in common:
        reference = base[(heuristic, mode)]
        measured = fresh[(heuristic, mode)]
        change = (measured - reference) / reference
        verdict = ""
        if change < -max_drop:
            verdict = "  REGRESSION"
            failures.append(
                f"{heuristic}/{mode}: {measured:.0f} slots/sec is "
                f"{-100 * change:.1f}% below baseline {reference:.0f}"
            )
        lines.append(
            f"{heuristic:<10} {mode:<8} {reference:>12.1f} {measured:>12.1f} "
            f"{100 * change:>+7.1f}%{verdict}"
        )
    return failures, lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default=str(DEFAULT_BASELINE),
        help=f"committed baseline report (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--current", default=None,
        help="fresh report to check; omit to measure in-process",
    )
    parser.add_argument(
        "--max-drop", type=float, default=DEFAULT_MAX_DROP,
        help=f"maximum tolerated fractional slowdown (default {DEFAULT_MAX_DROP})",
    )
    parser.add_argument(
        "--slots", type=int, default=None,
        help="slots per run when measuring in-process (default: the full workload)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="best-of-N repeats when measuring in-process (default 3)",
    )
    args = parser.parse_args(argv)

    try:
        baseline = json.loads(Path(args.baseline).read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"cannot read baseline {args.baseline}: {error}", file=sys.stderr)
        return 2

    if args.current is not None:
        try:
            current = json.loads(Path(args.current).read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"cannot read current report {args.current}: {error}", file=sys.stderr)
            return 2
    else:
        sys.path.insert(0, str(Path(__file__).parent))
        from bench_simulator import THROUGHPUT_SLOTS, measure_throughput

        current = measure_throughput(args.slots or THROUGHPUT_SLOTS, args.repeats)

    try:
        failures, lines = compare_reports(baseline, current, max_drop=args.max_drop)
    except ValueError as error:
        print(f"cannot compare reports: {error}", file=sys.stderr)
        return 2

    print("\n".join(lines))
    if failures:
        print(
            f"\nFAIL: {len(failures)} throughput regression(s) beyond "
            f"{100 * args.max_drop:.0f}%:",
            file=sys.stderr,
        )
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nOK: no (heuristic, mode) pair dropped more than {100 * args.max_drop:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
