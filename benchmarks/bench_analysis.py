"""Micro-benchmarks of the Theorem 5.1 analytical machinery.

These are not paper experiments but performance guards: the heuristics call
these primitives hundreds of times per simulated slot, so regressions here
translate directly into campaign wall-clock time.
"""

from __future__ import annotations

import pytest

from repro.analysis.cache import AnalysisContext
from repro.analysis.group import GroupAnalysis
from repro.analysis.single import WorkerAnalysis
from repro.application import Configuration
from repro.availability.generators import random_markov_models
from repro.platform import PlatformSpec, paper_platform


def make_platform(num_processors=20, wmin=2, seed=7):
    return paper_platform(
        PlatformSpec(num_processors=num_processors, ncom=10, wmin=wmin),
        num_tasks=10,
        seed=seed,
    )


@pytest.mark.benchmark(group="analysis")
def test_group_quantities_cold(benchmark):
    """Cost of computing Eu/A/P+/E_c for a fresh 8-worker set (no cache)."""
    models = random_markov_models(8, seed=3)
    workers = [WorkerAnalysis(model) for model in models]

    def run():
        analysis = GroupAnalysis(workers, epsilon=1e-6)
        return analysis.quantities(range(8))

    quantities = benchmark(run)
    assert 0.0 < quantities.p_plus < 1.0


@pytest.mark.benchmark(group="analysis")
def test_group_quantities_cached(benchmark):
    """Cost of a cache hit (the common case inside the heuristics)."""
    models = random_markov_models(8, seed=3)
    analysis = GroupAnalysis([WorkerAnalysis(model) for model in models], epsilon=1e-6)
    analysis.quantities(range(8))

    result = benchmark(analysis.quantities, range(8))
    assert result.horizon > 0


@pytest.mark.benchmark(group="analysis")
def test_configuration_evaluation(benchmark):
    """Cost of one full configuration estimate (comm + computation + yield)."""
    platform = make_platform()
    context = AnalysisContext(platform)
    configuration = Configuration({0: 2, 3: 2, 5: 3, 9: 2, 12: 1})

    def run():
        return context.evaluate(configuration, has_program=[0, 3], elapsed=11)

    estimate = benchmark(run)
    assert estimate.expected_time > 0


@pytest.mark.benchmark(group="analysis")
def test_incremental_allocation(benchmark):
    """Cost of one greedy m=10 allocation over 20 UP workers (the per-slot
    cost of a proactive heuristic's candidate construction)."""
    from repro.analysis.criteria import get_criterion
    from repro.scheduling.allocation import IncrementalAllocator

    platform = make_platform()
    context = AnalysisContext(platform)
    allocator = IncrementalAllocator(get_criterion("E"), context, platform, num_tasks=10)
    up_workers = list(range(platform.num_processors))

    configuration = benchmark(allocator.allocate, up_workers)
    assert configuration is not None
    assert configuration.total_tasks() == 10
